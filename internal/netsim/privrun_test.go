package netsim

import (
	"context"
	"testing"
)

// TestRunPrivE17 is the E17 acceptance run: every anonymous ring-signed
// provider query is granted and verifies, every adversarial query is
// denied, the server-side observer learns nothing beyond the ring, and
// every third-party ZK opening verifies against the gossiped seal.
func TestRunPrivE17(t *testing.T) {
	res, err := RunPriv(PrivConfig{Prefixes: 8, RingK: 3, Shards: 2, MaxLen: 12})
	if err != nil {
		t.Fatal(err)
	}
	if res.AnonQueries != 8*3 || res.AnonVerified != res.AnonQueries {
		t.Fatalf("anonymous grants: %d/%d verified", res.AnonVerified, res.AnonQueries)
	}
	if res.Denied != res.Adversarial || res.Adversarial == 0 {
		t.Fatalf("adversarial denials: %d/%d", res.Denied, res.Adversarial)
	}
	if res.WrongGrants != 0 || res.WrongDenials != 0 || res.VerifyFailures != 0 {
		t.Fatalf("correctness violated: wrongGrants=%d wrongDenials=%d verifyFailures=%d",
			res.WrongGrants, res.WrongDenials, res.VerifyFailures)
	}
	if res.ObserverPairs != 8 || res.DistinguishableViews != 0 {
		t.Fatalf("observer test: %d pairs, %d distinguishable", res.ObserverPairs, res.DistinguishableViews)
	}
	if res.AttributedServes != 0 {
		t.Fatalf("%d anonymous serves were attributed in the server's event log", res.AttributedServes)
	}
	if res.AuditorQueries != 8 || res.ProofsVerified != res.AuditorQueries {
		t.Fatalf("auditor openings: %d/%d verified", res.ProofsVerified, res.AuditorQueries)
	}
	if res.RingSigBytes == 0 || res.ProofBytes == 0 || res.CommitmentsBytes == 0 {
		t.Fatalf("sizes unmeasured: sig=%d proof=%d commitments=%d",
			res.RingSigBytes, res.ProofBytes, res.CommitmentsBytes)
	}
	if res.RingVerifyP50 <= 0 || res.ProofVerP50 <= 0 {
		t.Fatalf("latency quantiles unmeasured: ringVerify=%s proofVerify=%s",
			res.RingVerifyP50, res.ProofVerP50)
	}
}

func TestRunPrivContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunPrivContext(ctx, PrivConfig{Prefixes: 4, RingK: 2}); err == nil {
		t.Fatal("cancelled run reported no error")
	}
}
