package rfg

import (
	"errors"
	"testing"

	"pvr/internal/aspath"
)

func TestPromiseeRequirementsFig1(t *testing.T) {
	g, ins, outVar, err := Fig1(3)
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := PromiseeRequirements(g, ins, outVar)
	if err != nil {
		t.Fatal(err)
	}
	want := map[Requirement]bool{
		{outVar.Label(), CompData}:       true,
		{outVar.Label(), CompPreds}:      true,
		{OpID("min").Label(), CompData}:  true,
		{OpID("min").Label(), CompPreds}: true,
		{OpID("min").Label(), CompSuccs}: true,
	}
	if len(reqs) != len(want) {
		t.Fatalf("requirements = %v", reqs)
	}
	for _, r := range reqs {
		if !want[r] {
			t.Errorf("unexpected requirement %v", r)
		}
	}
	// Input variables are NOT required: their values stay protected.
	for _, r := range reqs {
		for _, in := range ins {
			if r.Label == in.Label() {
				t.Errorf("input %s wrongly required", in.Label())
			}
		}
	}
}

func TestPromiseeRequirementsFig2WalksIntermediates(t *testing.T) {
	g, ins, outVar, err := Fig2(4)
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := PromiseeRequirements(g, ins, outVar)
	if err != nil {
		t.Fatal(err)
	}
	has := func(label string, c Component) bool {
		for _, r := range reqs {
			if r.Label == label && r.Comp == c {
				return true
			}
		}
		return false
	}
	// Both operators must be fully visible.
	for _, op := range []OpID{"prefer", "exists"} {
		for _, c := range []Component{CompData, CompPreds, CompSuccs} {
			if !has(op.Label(), c) {
				t.Errorf("missing %s of %s", c, op.Label())
			}
		}
	}
	// The intermediate variable v needs edges but not data.
	if !has("var(v)", CompPreds) || !has("var(v)", CompSuccs) {
		t.Error("v's edges not required")
	}
	if has("var(v)", CompData) {
		t.Error("v's data wrongly required")
	}
}

func TestCheckSufficientAccess(t *testing.T) {
	g, ins, outVar, err := Fig1(3)
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := PromiseeRequirements(g, ins, outVar)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's Fig. 1 α is sufficient for B.
	providers := map[aspath.ASN]VarID{101: ins[0], 102: ins[1], 103: ins[2]}
	a := Fig1Access(providers, 200, outVar, "min")
	if err := CheckSufficientAccess(a, 200, reqs); err != nil {
		t.Errorf("Fig1 α insufficient: %v", err)
	}
	// An empty α is insufficient, and the error names what is missing.
	empty := NewAccess()
	err = CheckSufficientAccess(empty, 200, reqs)
	var ae *AccessError
	if !errors.As(err, &ae) {
		t.Fatalf("expected AccessError, got %v", err)
	}
	if len(ae.Missing) != len(reqs) {
		t.Errorf("missing %d, want all %d", len(ae.Missing), len(reqs))
	}
	if ae.Error() == "" || ae.Missing[0].String() == "" {
		t.Error("empty error rendering")
	}
	// GrantRequirements repairs it.
	GrantRequirements(empty, 200, reqs)
	if err := CheckSufficientAccess(empty, 200, reqs); err != nil {
		t.Errorf("after grant: %v", err)
	}
	// The trivial §4 example: a network that exports a route but hides the
	// operator that derived it — promises about that route are not
	// verifiable.
	hidden := NewAccess()
	hidden.AllowAll(200, outVar.Label())
	if err := CheckSufficientAccess(hidden, 200, reqs); err == nil {
		t.Error("hidden-operator α accepted")
	}
}
