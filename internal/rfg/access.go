package rfg

import (
	"fmt"
	"sort"

	"pvr/internal/aspath"
)

// Component is one independently disclosable part of a vertex's information
// I(x) (§3.7): the incoming-edge list, the outgoing-edge list, and the data
// (route value or operator type plus evidence).
type Component uint8

// Components of I(x).
const (
	CompPreds Component = iota // incoming edges (who produces my inputs)
	CompSuccs                  // outgoing edges (who consumes me)
	CompData                   // the route value / operator type + evidence
)

// String names the component.
func (c Component) String() string {
	switch c {
	case CompPreds:
		return "preds"
	case CompSuccs:
		return "succs"
	case CompData:
		return "data"
	}
	return fmt.Sprintf("component(%d)", uint8(c))
}

// Access is the paper's α: which networks may see which parts of which
// vertices (§2.2), refined per component (§3.7). The zero value denies
// everything; Access is not safe for concurrent mutation.
type Access struct {
	grants map[aspath.ASN]map[string]uint8 // vertex label -> component bitmask
}

// NewAccess returns an empty (deny-all) policy.
func NewAccess() *Access {
	return &Access{grants: make(map[aspath.ASN]map[string]uint8)}
}

// Allow grants network n the given components of the vertex with the given
// wire label.
func (a *Access) Allow(n aspath.ASN, label string, comps ...Component) {
	m, ok := a.grants[n]
	if !ok {
		m = make(map[string]uint8)
		a.grants[n] = m
	}
	for _, c := range comps {
		m[label] |= 1 << uint8(c)
	}
}

// AllowAll grants network n every component of a vertex.
func (a *Access) AllowAll(n aspath.ASN, label string) {
	a.Allow(n, label, CompPreds, CompSuccs, CompData)
}

// Can reports whether network n may see the given component of a vertex.
func (a *Access) Can(n aspath.ASN, label string, c Component) bool {
	return a.grants[n][label]&(1<<uint8(c)) != 0
}

// CanAny reports whether n may see any component of a vertex.
func (a *Access) CanAny(n aspath.ASN, label string) bool {
	return a.grants[n][label] != 0
}

// Visible returns the vertex labels of which n may see at least one
// component, sorted.
func (a *Access) Visible(n aspath.ASN) []string {
	var out []string
	for label, mask := range a.grants[n] {
		if mask != 0 {
			out = append(out, label)
		}
	}
	sort.Strings(out)
	return out
}

// Fig1Access builds the access policy of the paper's Fig. 1 scenario:
// α(Ni, ri) = α(B, ro) = TRUE, α(n, min) = TRUE for all n, FALSE otherwise.
// providers maps each Ni to its input variable.
func Fig1Access(providers map[aspath.ASN]VarID, promisee aspath.ASN, outVar VarID, minOp OpID) *Access {
	a := NewAccess()
	for n, v := range providers {
		a.AllowAll(n, v.Label())
	}
	a.AllowAll(promisee, outVar.Label())
	all := make([]aspath.ASN, 0, len(providers)+1)
	for n := range providers {
		all = append(all, n)
	}
	all = append(all, promisee)
	for _, n := range all {
		a.AllowAll(n, minOp.Label())
	}
	return a
}
