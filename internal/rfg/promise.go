package rfg

import (
	"fmt"

	"pvr/internal/route"
)

// Promise is a contract between an AS and a neighbor, understood as in §2:
// "for each set of input routes the AS might receive, some set of
// permissible routes that its output must be drawn from. A violation
// occurs whenever an AS emits a route that was not in its permitted set."
//
// Check returns nil when the output is permissible for the inputs.
type Promise interface {
	// Check validates one (inputs, output) pair. The output set is the
	// value of the promised output variable (empty = nothing exported).
	Check(inputs map[VarID][]route.Route, output []route.Route) error
	// String describes the promise in contract language.
	String() string
}

// Violation describes a broken promise, carrying enough context for logs
// and for wrapping into transferable evidence by the PVR layer.
type Violation struct {
	Promise string
	Detail  string
}

// Error implements error.
func (v *Violation) Error() string {
	return fmt.Sprintf("rfg: promise %q violated: %s", v.Promise, v.Detail)
}

func violatef(p Promise, format string, args ...any) error {
	return &Violation{Promise: p.String(), Detail: fmt.Sprintf(format, args...)}
}

func flatten(inputs map[VarID][]route.Route, vars []VarID) []route.Route {
	var all []route.Route
	for _, v := range vars {
		all = append(all, inputs[v]...)
	}
	return all
}

func shortest(rs []route.Route) (route.Route, bool) {
	if len(rs) == 0 {
		return route.Route{}, false
	}
	best := rs[0]
	for _, r := range rs[1:] {
		if CompareRoutes(r, best) < 0 {
			best = r
		}
	}
	return best, true
}

// ShortestOfSubset is promise #2 of §2: "I will give you the shortest route
// out of those received from a specific subset of neighbors." With Subset =
// all inputs it degenerates to promise #1 ("the shortest route I receive").
type ShortestOfSubset struct {
	Subset []VarID
}

// Check implements Promise: the output must be nonempty iff some subset
// input exists, and its path length must equal the subset minimum.
func (p ShortestOfSubset) Check(inputs map[VarID][]route.Route, output []route.Route) error {
	all := flatten(inputs, p.Subset)
	best, have := shortest(all)
	switch {
	case !have && len(output) == 0:
		return nil
	case !have && len(output) > 0:
		return violatef(p, "exported %s with no input routes", output[0].Prefix)
	case have && len(output) == 0:
		return violatef(p, "exported nothing although a length-%d route exists", best.PathLen())
	}
	if got, want := output[0].PathLen(), best.PathLen(); got != want {
		return violatef(p, "exported length %d, shortest available is %d", got, want)
	}
	return nil
}

// String implements Promise.
func (p ShortestOfSubset) String() string {
	return fmt.Sprintf("shortest route among inputs %v", p.Subset)
}

// ExistsFromSubset is the §3.2 promise: "export a route whenever at least
// one of the Ni provides one".
type ExistsFromSubset struct {
	Subset []VarID
}

// Check implements Promise.
func (p ExistsFromSubset) Check(inputs map[VarID][]route.Route, output []route.Route) error {
	have := len(flatten(inputs, p.Subset)) > 0
	switch {
	case have && len(output) == 0:
		return violatef(p, "an input route exists but nothing was exported")
	case !have && len(output) > 0:
		return violatef(p, "exported a route although no input exists")
	}
	return nil
}

// String implements Promise.
func (p ExistsFromSubset) String() string {
	return fmt.Sprintf("export iff any of %v provides a route", p.Subset)
}

// WithinSlack is promise #3 of §2: "I will give you a route no more than K
// hops longer than my best route." Nothing may be exported only when no
// input exists.
type WithinSlack struct {
	Subset []VarID
	K      int
}

// Check implements Promise.
func (p WithinSlack) Check(inputs map[VarID][]route.Route, output []route.Route) error {
	best, have := shortest(flatten(inputs, p.Subset))
	switch {
	case !have && len(output) == 0:
		return nil
	case !have:
		return violatef(p, "exported with no inputs")
	case len(output) == 0:
		return violatef(p, "exported nothing although inputs exist")
	}
	if got, max := output[0].PathLen(), best.PathLen()+p.K; got > max {
		return violatef(p, "exported length %d, more than %d hops over best %d", got, p.K, best.PathLen())
	}
	return nil
}

// String implements Promise.
func (p WithinSlack) String() string {
	return fmt.Sprintf("route at most %d hops longer than best of %v", p.K, p.Subset)
}

// NoLongerThanOthers is promise #4 of §2: "the route you get is no longer
// than what I tell anybody else." It compares one neighbor's output
// against the outputs given to all others.
type NoLongerThanOthers struct {
	Mine   VarID
	Others []VarID
}

// CheckOutputs validates the multi-output form; outputs maps each output
// variable to its exported value.
func (p NoLongerThanOthers) CheckOutputs(outputs map[VarID][]route.Route) error {
	mine := outputs[p.Mine]
	if len(mine) == 0 {
		// Receiving nothing while others receive something *is* a
		// violation of "no longer than": absence is infinitely long.
		for _, o := range p.Others {
			if len(outputs[o]) > 0 {
				return violatef(p, "I received nothing but %s received a route", o.Label())
			}
		}
		return nil
	}
	for _, o := range p.Others {
		for _, r := range outputs[o] {
			if r.PathLen() < mine[0].PathLen() {
				return violatef(p, "%s received length %d, I received %d", o.Label(), r.PathLen(), mine[0].PathLen())
			}
		}
	}
	return nil
}

// Check implements Promise by treating the single output as Mine and
// inputs as the exports to others (each input variable the route told to
// another neighbor). Prefer CheckOutputs where the full output map exists.
func (p NoLongerThanOthers) Check(inputs map[VarID][]route.Route, output []route.Route) error {
	outs := map[VarID][]route.Route{p.Mine: output}
	for _, o := range p.Others {
		outs[o] = inputs[o]
	}
	return p.CheckOutputs(outs)
}

// String implements Promise.
func (p NoLongerThanOthers) String() string {
	return fmt.Sprintf("%s no longer than outputs %v", p.Mine.Label(), p.Others)
}
