package rfg

import (
	"errors"
	"fmt"
	"sort"

	"pvr/internal/route"
)

// VarID names a variable vertex. By the paper's convention (§3.6) the wire
// label is "var(<id>)".
type VarID string

// OpID names an operator vertex; wire label "rule(<id>)".
type OpID string

// Label renders the prefix-free wire label of a variable vertex.
func (v VarID) Label() string { return fmt.Sprintf("var(%s)", string(v)) }

// Label renders the prefix-free wire label of an operator vertex.
func (o OpID) Label() string { return fmt.Sprintf("rule(%s)", string(o)) }

// Errors returned by graph construction and evaluation.
var (
	ErrDupVertex   = errors.New("rfg: duplicate vertex")
	ErrUnknownVar  = errors.New("rfg: unknown variable")
	ErrMultiSource = errors.New("rfg: variable already produced by another operator")
	ErrCycle       = errors.New("rfg: graph contains a cycle")
	ErrNotInput    = errors.New("rfg: value supplied for a computed variable")
)

// opNode is an operator vertex with its wiring.
type opNode struct {
	id  OpID
	op  Operator
	in  []VarID
	out VarID
}

// Graph is a route-flow graph: variables, operators, and the edges between
// them. Input variables (produced by no operator) are bound at Eval time;
// all others are computed. Graph is immutable after Freeze and not safe for
// concurrent mutation.
type Graph struct {
	vars     map[VarID]bool
	producer map[VarID]OpID
	readers  map[VarID][]OpID
	ops      map[OpID]*opNode
	frozen   bool
	order    []OpID // topological order, set by Freeze
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{
		vars:     make(map[VarID]bool),
		producer: make(map[VarID]OpID),
		readers:  make(map[VarID][]OpID),
		ops:      make(map[OpID]*opNode),
	}
}

// AddVar declares a variable vertex.
func (g *Graph) AddVar(id VarID) error {
	if g.frozen {
		return errors.New("rfg: graph is frozen")
	}
	if g.vars[id] {
		return fmt.Errorf("%w: %s", ErrDupVertex, id.Label())
	}
	g.vars[id] = true
	return nil
}

// AddOp declares an operator vertex reading the given variables and
// producing out. Every referenced variable must already be declared, and a
// variable may have at most one producer.
func (g *Graph) AddOp(id OpID, op Operator, in []VarID, out VarID) error {
	if g.frozen {
		return errors.New("rfg: graph is frozen")
	}
	if _, dup := g.ops[id]; dup {
		return fmt.Errorf("%w: %s", ErrDupVertex, id.Label())
	}
	for _, v := range append(append([]VarID{}, in...), out) {
		if !g.vars[v] {
			return fmt.Errorf("%w: %s", ErrUnknownVar, v.Label())
		}
	}
	if p, has := g.producer[out]; has {
		return fmt.Errorf("%w: %s by %s", ErrMultiSource, out.Label(), p.Label())
	}
	n := &opNode{id: id, op: op, in: append([]VarID(nil), in...), out: out}
	g.ops[id] = n
	g.producer[out] = id
	for _, v := range in {
		g.readers[v] = append(g.readers[v], id)
	}
	return nil
}

// Inputs returns the input variables (no producer), sorted.
func (g *Graph) Inputs() []VarID {
	var out []VarID
	for v := range g.vars {
		if _, has := g.producer[v]; !has {
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Outputs returns the sink variables (produced but read by no operator),
// sorted; these correspond to exported routes.
func (g *Graph) Outputs() []VarID {
	var out []VarID
	for v := range g.vars {
		_, produced := g.producer[v]
		if produced && len(g.readers[v]) == 0 {
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Vars returns all variable IDs, sorted.
func (g *Graph) Vars() []VarID {
	out := make([]VarID, 0, len(g.vars))
	for v := range g.vars {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Ops returns all operator IDs, sorted.
func (g *Graph) Ops() []OpID {
	out := make([]OpID, 0, len(g.ops))
	for o := range g.ops {
		out = append(out, o)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Op returns an operator vertex's operator, inputs, and output.
func (g *Graph) Op(id OpID) (Operator, []VarID, VarID, bool) {
	n, ok := g.ops[id]
	if !ok {
		return nil, nil, "", false
	}
	return n.op, append([]VarID(nil), n.in...), n.out, true
}

// Producer returns the operator producing a variable, if any.
func (g *Graph) Producer(v VarID) (OpID, bool) {
	o, ok := g.producer[v]
	return o, ok
}

// Readers returns the operators consuming a variable, sorted.
func (g *Graph) Readers(v VarID) []OpID {
	out := append([]OpID(nil), g.readers[v]...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Freeze validates acyclicity, computes the evaluation order, and makes the
// graph immutable. It must be called before Eval.
func (g *Graph) Freeze() error {
	if g.frozen {
		return nil
	}
	// Kahn's algorithm over operators: op X precedes op Y when X's output
	// is one of Y's inputs.
	indeg := make(map[OpID]int, len(g.ops))
	for id, n := range g.ops {
		for _, v := range n.in {
			if _, produced := g.producer[v]; produced {
				indeg[id]++
			}
		}
	}
	var queue []OpID
	for id := range g.ops {
		if indeg[id] == 0 {
			queue = append(queue, id)
		}
	}
	sort.Slice(queue, func(i, j int) bool { return queue[i] < queue[j] })
	var order []OpID
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		order = append(order, id)
		out := g.ops[id].out
		next := append([]OpID(nil), g.readers[out]...)
		sort.Slice(next, func(i, j int) bool { return next[i] < next[j] })
		for _, r := range next {
			indeg[r]--
			if indeg[r] == 0 {
				queue = append(queue, r)
			}
		}
	}
	if len(order) != len(g.ops) {
		return ErrCycle
	}
	g.order = order
	g.frozen = true
	return nil
}

// Eval binds the given input variable values and evaluates every operator
// in topological order, returning the value of every variable. Unbound
// inputs default to the empty set; binding a computed variable is an error.
func (g *Graph) Eval(inputs map[VarID][]route.Route) (map[VarID][]route.Route, error) {
	if !g.frozen {
		if err := g.Freeze(); err != nil {
			return nil, err
		}
	}
	vals := make(map[VarID][]route.Route, len(g.vars))
	for v, rs := range inputs {
		if !g.vars[v] {
			return nil, fmt.Errorf("%w: %s", ErrUnknownVar, v.Label())
		}
		if _, produced := g.producer[v]; produced {
			return nil, fmt.Errorf("%w: %s", ErrNotInput, v.Label())
		}
		vals[v] = append([]route.Route(nil), rs...)
	}
	for _, id := range g.order {
		n := g.ops[id]
		ins := make([][]route.Route, len(n.in))
		for i, v := range n.in {
			ins[i] = vals[v]
		}
		out, err := n.op.Eval(ins)
		if err != nil {
			return nil, fmt.Errorf("rfg: %s: %w", id.Label(), err)
		}
		vals[n.out] = out
	}
	return vals, nil
}

// Fig1 builds the paper's Figure 1 graph: input variables r1…rk feeding a
// single min operator that produces ro.
func Fig1(k int) (*Graph, []VarID, VarID, error) {
	g := NewGraph()
	ins := make([]VarID, k)
	for i := 0; i < k; i++ {
		ins[i] = VarID(fmt.Sprintf("r%d", i+1))
		if err := g.AddVar(ins[i]); err != nil {
			return nil, nil, "", err
		}
	}
	out := VarID("ro")
	if err := g.AddVar(out); err != nil {
		return nil, nil, "", err
	}
	if err := g.AddOp("min", Min{}, ins, out); err != nil {
		return nil, nil, "", err
	}
	if err := g.Freeze(); err != nil {
		return nil, nil, "", err
	}
	return g, ins, out, nil
}

// Fig2 builds the paper's Figure 2 graph: r2…rk feed an existential
// operator producing v; a preference operator combines v with r1 into ro,
// implementing "I will export some route via N2…Nk unless N1 provides a
// shorter route" (§3.5).
func Fig2(k int) (*Graph, []VarID, VarID, error) {
	if k < 2 {
		return nil, nil, "", fmt.Errorf("rfg: Fig2 needs k >= 2")
	}
	g := NewGraph()
	ins := make([]VarID, k)
	for i := 0; i < k; i++ {
		ins[i] = VarID(fmt.Sprintf("r%d", i+1))
		if err := g.AddVar(ins[i]); err != nil {
			return nil, nil, "", err
		}
	}
	for _, v := range []VarID{"v", "ro"} {
		if err := g.AddVar(v); err != nil {
			return nil, nil, "", err
		}
	}
	if err := g.AddOp("exists", Exists{}, ins[1:], "v"); err != nil {
		return nil, nil, "", err
	}
	if err := g.AddOp("prefer", PreferFirst{}, []VarID{"v", ins[0]}, "ro"); err != nil {
		return nil, nil, "", err
	}
	if err := g.Freeze(); err != nil {
		return nil, nil, "", err
	}
	return g, ins, "ro", nil
}
