package rfg

import (
	"errors"
	"math/rand"
	"net/netip"
	"testing"

	"pvr/internal/aspath"
	"pvr/internal/community"
	"pvr/internal/prefix"
	"pvr/internal/route"
)

func rt(t *testing.T, pathLen int, seed byte) route.Route {
	t.Helper()
	asns := make([]aspath.ASN, pathLen)
	for i := range asns {
		asns[i] = aspath.ASN(1000 + int(seed)*100 + i)
	}
	return route.Route{
		Prefix:    prefix.V4(203, 0, 113, 0, 24),
		Path:      aspath.New(asns...),
		NextHop:   netip.AddrFrom4([4]byte{10, 0, 0, seed}),
		LocalPref: 100,
		Origin:    route.OriginIGP,
	}
}

func TestMinOperator(t *testing.T) {
	short := rt(t, 1, 1)
	long := rt(t, 5, 2)
	out, err := Min{}.Eval([][]route.Route{{long}, {short}, nil})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || !out[0].Equal(short) {
		t.Errorf("min picked %v", out)
	}
	// Empty inputs → empty output.
	out, err = Min{}.Eval([][]route.Route{nil, nil})
	if err != nil || len(out) != 0 {
		t.Errorf("min of nothing = %v, %v", out, err)
	}
	// Deterministic tie-break.
	a, b := rt(t, 3, 1), rt(t, 3, 2)
	o1, _ := Min{}.Eval([][]route.Route{{a}, {b}})
	o2, _ := Min{}.Eval([][]route.Route{{b}, {a}})
	if !o1[0].Equal(o2[0]) {
		t.Error("min tie-break order-dependent")
	}
}

func TestExistsOperator(t *testing.T) {
	out, err := Exists{}.Eval([][]route.Route{nil, {rt(t, 4, 1)}})
	if err != nil || len(out) != 1 {
		t.Errorf("exists = %v, %v", out, err)
	}
	out, err = Exists{}.Eval([][]route.Route{nil, nil})
	if err != nil || len(out) != 0 {
		t.Errorf("exists of nothing = %v, %v", out, err)
	}
}

func TestUnionOperator(t *testing.T) {
	a, b := rt(t, 2, 1), rt(t, 3, 2)
	out, err := Union{}.Eval([][]route.Route{{a, b}, {a}}) // duplicate a
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Errorf("union size %d, want 2", len(out))
	}
	// Sorted by length first.
	if out[0].PathLen() > out[1].PathLen() {
		t.Error("union not sorted")
	}
}

func TestFilterPredicates(t *testing.T) {
	withC := rt(t, 2, 1).WithCommunity(community.Make(1, 1))
	longR := rt(t, 9, 2)
	via := rt(t, 2, 3)

	cases := []struct {
		pred Predicate
		in   route.Route
		want bool
	}{
		{MaxLen{3}, withC, true},
		{MaxLen{3}, longR, false},
		{HasCommunity{community.Make(1, 1)}, withC, true},
		{HasCommunity{community.Make(1, 1)}, longR, false},
		{LacksCommunity{community.Make(1, 1)}, longR, true},
		{LacksCommunity{community.Make(1, 1)}, withC, false},
		{AvoidsAS{2222}, withC, true}, // withC path is [1100 1101]
		{AvoidsAS{1100}, withC, false},
		{AvoidsAS{1101}, withC, false},
		{ViaAS{1300}, via, true},
		{ViaAS{9}, via, false},
	}
	for _, c := range cases {
		got := c.pred.Test(c.in)
		if got != c.want {
			t.Errorf("%s on %s = %v, want %v", c.pred.Name(), c.in.Path, got, c.want)
		}
		out, err := Filter{Pred: c.pred}.Eval([][]route.Route{{c.in}})
		if err != nil {
			t.Fatal(err)
		}
		if (len(out) == 1) != c.want {
			t.Errorf("filter %s inconsistent with predicate", c.pred.Name())
		}
	}
}

func TestPreferFirstOperator(t *testing.T) {
	pref := rt(t, 4, 1)
	shorter := rt(t, 2, 2)
	longer := rt(t, 6, 3)

	// Preferred wins when alternative is not shorter.
	out, err := PreferFirst{}.Eval([][]route.Route{{pref}, {longer}})
	if err != nil || len(out) != 1 || !out[0].Equal(pref) {
		t.Errorf("prefer kept %v, %v", out, err)
	}
	// Shorter alternative overrides.
	out, err = PreferFirst{}.Eval([][]route.Route{{pref}, {shorter}})
	if err != nil || len(out) != 1 || !out[0].Equal(shorter) {
		t.Errorf("override got %v, %v", out, err)
	}
	// Fallback when preferred empty.
	out, err = PreferFirst{}.Eval([][]route.Route{nil, {longer}})
	if err != nil || len(out) != 1 || !out[0].Equal(longer) {
		t.Errorf("fallback got %v, %v", out, err)
	}
	// Nothing at all.
	out, err = PreferFirst{}.Eval([][]route.Route{nil, nil})
	if err != nil || len(out) != 0 {
		t.Errorf("empty got %v, %v", out, err)
	}
	// Arity enforced.
	if _, err := (PreferFirst{}).Eval([][]route.Route{nil}); !errors.Is(err, ErrArity) {
		t.Errorf("arity: %v", err)
	}
}

func TestGraphBuildValidation(t *testing.T) {
	g := NewGraph()
	if err := g.AddVar("a"); err != nil {
		t.Fatal(err)
	}
	if err := g.AddVar("a"); !errors.Is(err, ErrDupVertex) {
		t.Errorf("dup var: %v", err)
	}
	if err := g.AddOp("op", Min{}, []VarID{"missing"}, "a"); !errors.Is(err, ErrUnknownVar) {
		t.Errorf("unknown var: %v", err)
	}
	if err := g.AddVar("b"); err != nil {
		t.Fatal(err)
	}
	if err := g.AddOp("op", Min{}, []VarID{"a"}, "b"); err != nil {
		t.Fatal(err)
	}
	if err := g.AddOp("op", Min{}, []VarID{"a"}, "b"); !errors.Is(err, ErrDupVertex) {
		t.Errorf("dup op: %v", err)
	}
	if err := g.AddOp("op2", Min{}, []VarID{"a"}, "b"); !errors.Is(err, ErrMultiSource) {
		t.Errorf("multi source: %v", err)
	}
}

func TestGraphCycleDetection(t *testing.T) {
	g := NewGraph()
	for _, v := range []VarID{"a", "b"} {
		if err := g.AddVar(v); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.AddOp("f", Min{}, []VarID{"a"}, "b"); err != nil {
		t.Fatal(err)
	}
	if err := g.AddOp("g", Min{}, []VarID{"b"}, "a"); err != nil {
		t.Fatal(err)
	}
	if err := g.Freeze(); !errors.Is(err, ErrCycle) {
		t.Errorf("cycle: %v", err)
	}
}

func TestGraphEvalPipeline(t *testing.T) {
	// r1, r2 -> union -> u; u -> filter(maxlen 3) -> f; f -> min -> out
	g := NewGraph()
	for _, v := range []VarID{"r1", "r2", "u", "f", "out"} {
		if err := g.AddVar(v); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.AddOp("u", Union{}, []VarID{"r1", "r2"}, "u"); err != nil {
		t.Fatal(err)
	}
	if err := g.AddOp("f", Filter{Pred: MaxLen{3}}, []VarID{"u"}, "f"); err != nil {
		t.Fatal(err)
	}
	if err := g.AddOp("m", Min{}, []VarID{"f"}, "out"); err != nil {
		t.Fatal(err)
	}
	short := rt(t, 2, 1)
	long := rt(t, 7, 2)
	vals, err := g.Eval(map[VarID][]route.Route{"r1": {long}, "r2": {short}})
	if err != nil {
		t.Fatal(err)
	}
	if len(vals["out"]) != 1 || !vals["out"][0].Equal(short) {
		t.Errorf("pipeline out = %v", vals["out"])
	}
	// The long route was filtered before min.
	if len(vals["f"]) != 1 {
		t.Errorf("filter kept %d", len(vals["f"]))
	}
	// Inputs/Outputs classification.
	ins := g.Inputs()
	if len(ins) != 2 || ins[0] != "r1" || ins[1] != "r2" {
		t.Errorf("Inputs = %v", ins)
	}
	outs := g.Outputs()
	if len(outs) != 1 || outs[0] != "out" {
		t.Errorf("Outputs = %v", outs)
	}
}

func TestGraphEvalRejectsBadBindings(t *testing.T) {
	g, _, outVar, err := Fig1(3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Eval(map[VarID][]route.Route{"nope": nil}); !errors.Is(err, ErrUnknownVar) {
		t.Errorf("unknown binding: %v", err)
	}
	if _, err := g.Eval(map[VarID][]route.Route{outVar: nil}); !errors.Is(err, ErrNotInput) {
		t.Errorf("computed binding: %v", err)
	}
}

func TestFig1GraphMatchesPromise(t *testing.T) {
	g, ins, outVar, err := Fig1(5)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckStructureShortest(g, ins, outVar); err != nil {
		t.Errorf("structural check: %v", err)
	}
	p := ShortestOfSubset{Subset: ins}
	if err := ModelCheck(g, p, ins, outVar, 300, rand.New(rand.NewSource(1))); err != nil {
		t.Errorf("model check: %v", err)
	}
}

func TestFig2GraphMatchesItsPromise(t *testing.T) {
	g, ins, outVar, err := Fig2(4)
	if err != nil {
		t.Fatal(err)
	}
	// Fig2 does NOT implement plain shortest-of-all: the structural check
	// must reject, and the model checker must find a counterexample.
	if err := CheckStructureShortest(g, ins, outVar); err == nil {
		t.Error("Fig2 structurally accepted as shortest-of-all")
	}
	// But it does implement "within slack" loosely? No — it can export a
	// longer route via N2..Nk when N1's is equal length. The honest promise
	// that holds: the output exists iff any input exists.
	p := ExistsFromSubset{Subset: ins}
	if err := ModelCheck(g, p, ins, outVar, 300, rand.New(rand.NewSource(2))); err != nil {
		t.Errorf("exists model check: %v", err)
	}
	// And shortest-of-all must produce a counterexample.
	bad := ShortestOfSubset{Subset: ins}
	if err := ModelCheck(g, bad, ins, outVar, 500, rand.New(rand.NewSource(3))); err == nil {
		t.Error("model check failed to find counterexample for wrong promise")
	}
}

func TestCheckStructureExists(t *testing.T) {
	g, ins, _, err := Fig2(4)
	if err != nil {
		t.Fatal(err)
	}
	// v is produced by exists over r2..rk.
	if err := CheckStructureExists(g, ins[1:], "v"); err != nil {
		t.Errorf("exists structure: %v", err)
	}
	if err := CheckStructureExists(g, ins, "v"); err == nil {
		t.Error("wrong subset accepted")
	}
	if err := CheckStructureExists(g, ins[1:], "ro"); err == nil {
		t.Error("wrong operator type accepted")
	}
}

func TestPromiseShortestOfSubset(t *testing.T) {
	p := ShortestOfSubset{Subset: []VarID{"r1", "r2"}}
	short := rt(t, 2, 1)
	long := rt(t, 5, 2)
	in := map[VarID][]route.Route{"r1": {long}, "r2": {short}}

	if err := p.Check(in, []route.Route{short}); err != nil {
		t.Errorf("honest: %v", err)
	}
	if err := p.Check(in, []route.Route{long}); err == nil {
		t.Error("long export accepted")
	}
	if err := p.Check(in, nil); err == nil {
		t.Error("suppression accepted")
	}
	if err := p.Check(map[VarID][]route.Route{}, nil); err != nil {
		t.Errorf("empty/empty: %v", err)
	}
	if err := p.Check(map[VarID][]route.Route{}, []route.Route{short}); err == nil {
		t.Error("fabricated export accepted")
	}
	// Same length but different route is permissible (promise is about length).
	alt := rt(t, 2, 9)
	if err := p.Check(in, []route.Route{alt}); err != nil {
		t.Errorf("equal-length alternative rejected: %v", err)
	}
}

func TestPromiseWithinSlack(t *testing.T) {
	p := WithinSlack{Subset: []VarID{"r1", "r2"}, K: 2}
	in := map[VarID][]route.Route{"r1": {rt(t, 2, 1)}, "r2": {rt(t, 9, 2)}}
	if err := p.Check(in, []route.Route{rt(t, 4, 3)}); err != nil {
		t.Errorf("within slack rejected: %v", err)
	}
	if err := p.Check(in, []route.Route{rt(t, 5, 3)}); err == nil {
		t.Error("over slack accepted")
	}
	if err := p.Check(in, nil); err == nil {
		t.Error("suppression accepted")
	}
}

func TestPromiseNoLongerThanOthers(t *testing.T) {
	p := NoLongerThanOthers{Mine: "oB", Others: []VarID{"oC", "oD"}}
	outs := map[VarID][]route.Route{
		"oB": {rt(t, 3, 1)},
		"oC": {rt(t, 3, 2)},
		"oD": {rt(t, 5, 3)},
	}
	if err := p.CheckOutputs(outs); err != nil {
		t.Errorf("honest: %v", err)
	}
	outs["oC"] = []route.Route{rt(t, 2, 4)} // someone else got shorter
	if err := p.CheckOutputs(outs); err == nil {
		t.Error("favoritism accepted")
	}
	// Nothing for me while others get routes.
	outs = map[VarID][]route.Route{"oB": nil, "oC": {rt(t, 4, 5)}, "oD": nil}
	if err := p.CheckOutputs(outs); err == nil {
		t.Error("starvation accepted")
	}
	// Nothing anywhere is fine.
	outs = map[VarID][]route.Route{"oB": nil, "oC": nil, "oD": nil}
	if err := p.CheckOutputs(outs); err != nil {
		t.Errorf("all-empty: %v", err)
	}
}

func TestAccessPolicy(t *testing.T) {
	a := NewAccess()
	a.Allow(1, "var(r1)", CompData)
	a.AllowAll(2, "rule(min)")

	if !a.Can(1, "var(r1)", CompData) {
		t.Error("granted component denied")
	}
	if a.Can(1, "var(r1)", CompPreds) {
		t.Error("ungranted component allowed")
	}
	if a.Can(3, "var(r1)", CompData) {
		t.Error("stranger allowed")
	}
	if !a.CanAny(2, "rule(min)") || a.CanAny(2, "var(r1)") {
		t.Error("CanAny wrong")
	}
	vis := a.Visible(2)
	if len(vis) != 1 || vis[0] != "rule(min)" {
		t.Errorf("Visible = %v", vis)
	}
}

func TestFig1Access(t *testing.T) {
	providers := map[aspath.ASN]VarID{101: "r1", 102: "r2"}
	a := Fig1Access(providers, 200, "ro", "min")
	// Each Ni sees its own variable and the operator, not the output.
	if !a.Can(101, VarID("r1").Label(), CompData) {
		t.Error("N1 cannot see r1")
	}
	if a.CanAny(101, VarID("r2").Label()) {
		t.Error("N1 sees N2's variable")
	}
	if a.CanAny(101, VarID("ro").Label()) {
		t.Error("N1 sees the output")
	}
	if !a.Can(101, OpID("min").Label(), CompData) {
		t.Error("N1 cannot see the operator")
	}
	// B sees ro and min but no inputs.
	if !a.Can(200, VarID("ro").Label(), CompData) || !a.Can(200, OpID("min").Label(), CompData) {
		t.Error("B's grants missing")
	}
	if a.CanAny(200, VarID("r1").Label()) {
		t.Error("B sees an input")
	}
}

func TestComponentString(t *testing.T) {
	if CompPreds.String() != "preds" || CompSuccs.String() != "succs" || CompData.String() != "data" {
		t.Error("component names wrong")
	}
	if Component(9).String() == "" {
		t.Error("unknown component empty")
	}
	if VarID("x").Label() != "var(x)" || OpID("y").Label() != "rule(y)" {
		t.Error("labels wrong")
	}
}
