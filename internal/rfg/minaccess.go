package rfg

import (
	"fmt"

	"pvr/internal/aspath"
)

// This file addresses the paper's §4 "Minimum access" challenge: "A
// practical PVR system must have a way for a network's neighbors to tell
// whether a) the visible route-flow graph implements a given promise and
// b) the access privileges granted by the network are sufficient to verify
// that promise."
//
// Part (a) is CheckStructure*/ModelCheck (check.go). Part (b) is
// implemented here: given a promise, we compute the vertex components a
// verifier necessarily needs, and test a concrete α against them.

// Requirement is one (vertex label, component) pair a verifier must see.
type Requirement struct {
	Label string
	Comp  Component
}

// String renders "component of label".
func (r Requirement) String() string { return fmt.Sprintf("%s of %s", r.Comp, r.Label) }

// AccessError reports which requirements α fails to grant.
type AccessError struct {
	Viewer  aspath.ASN
	Missing []Requirement
}

// Error implements error.
func (e *AccessError) Error() string {
	return fmt.Sprintf("rfg: α grants %s insufficient access: missing %v", e.Viewer, e.Missing)
}

// PromiseeRequirements returns what the promisee B must be able to see to
// verify a promise about outVar: the output's data, plus — walking
// backward from the output to the promise's input subset — every
// intermediate operator's type and edge structure, and the edge structure
// of intermediate variables. Input variables themselves need not be
// visible (their values are protected by the commitment protocol), but B
// must be able to confirm *which* inputs feed the computation, so the
// operators reading them must expose their predecessor lists.
func PromiseeRequirements(g *Graph, subset []VarID, outVar VarID) ([]Requirement, error) {
	if err := g.Freeze(); err != nil {
		return nil, err
	}
	inSubset := make(map[VarID]bool, len(subset))
	for _, v := range subset {
		inSubset[v] = true
	}
	var reqs []Requirement
	reqs = append(reqs, Requirement{outVar.Label(), CompData}, Requirement{outVar.Label(), CompPreds})

	seenOps := map[OpID]bool{}
	seenVars := map[VarID]bool{outVar: true}
	queue := []VarID{outVar}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		opID, produced := g.Producer(v)
		if !produced {
			continue // an input: protected, nothing more to require
		}
		if seenOps[opID] {
			continue
		}
		seenOps[opID] = true
		// The operator's type and wiring must be visible.
		reqs = append(reqs,
			Requirement{opID.Label(), CompData},
			Requirement{opID.Label(), CompPreds},
			Requirement{opID.Label(), CompSuccs},
		)
		_, ins, _, _ := g.Op(opID)
		for _, in := range ins {
			if seenVars[in] {
				continue
			}
			seenVars[in] = true
			if inSubset[in] {
				continue // protected input
			}
			// Intermediate variable: its wiring (not its value) must be
			// navigable.
			reqs = append(reqs,
				Requirement{in.Label(), CompPreds},
				Requirement{in.Label(), CompSuccs},
			)
			queue = append(queue, in)
		}
	}
	return reqs, nil
}

// CheckSufficientAccess verifies that α grants the viewer every
// requirement; it returns an *AccessError listing what is missing.
func CheckSufficientAccess(a *Access, viewer aspath.ASN, reqs []Requirement) error {
	var missing []Requirement
	for _, r := range reqs {
		if !a.Can(viewer, r.Label, r.Comp) {
			missing = append(missing, r)
		}
	}
	if len(missing) > 0 {
		return &AccessError{Viewer: viewer, Missing: missing}
	}
	return nil
}

// GrantRequirements extends α so the viewer satisfies the requirements —
// the constructive form a network uses when negotiating a new promise.
func GrantRequirements(a *Access, viewer aspath.ASN, reqs []Requirement) {
	for _, r := range reqs {
		a.Allow(viewer, r.Label, r.Comp)
	}
}
