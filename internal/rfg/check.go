package rfg

import (
	"fmt"
	"math/rand"
	"net/netip"

	"pvr/internal/aspath"
	"pvr/internal/prefix"
	"pvr/internal/route"
)

// This file implements §2.2's static verification: "A network may be able
// to tell, given the rules to which it has access, whether particular
// promises made to it will be kept... based purely on static inspection of
// the route-flow graph." Two checkers are provided: a structural pattern
// matcher for the promises whose implementing shapes are known, and a
// behavioural model checker that drives the visible graph with synthetic
// inputs and checks the promise on every evaluation.

// CheckStructureShortest verifies structurally that outVar is produced by a
// single Min operator reading exactly the subset variables: the shape that
// implements ShortestOfSubset.
func CheckStructureShortest(g *Graph, subset []VarID, outVar VarID) error {
	opID, ok := g.Producer(outVar)
	if !ok {
		return fmt.Errorf("rfg: %s has no producer", outVar.Label())
	}
	op, in, out, _ := g.Op(opID)
	if op.Type() != "min" {
		return fmt.Errorf("rfg: %s computed by %q, want min", outVar.Label(), op.Type())
	}
	if out != outVar {
		return fmt.Errorf("rfg: producer output mismatch")
	}
	if err := sameVarSet(in, subset); err != nil {
		return fmt.Errorf("rfg: min inputs: %w", err)
	}
	return nil
}

// CheckStructureExists verifies that outVar is produced by an Exists
// operator over exactly the subset variables.
func CheckStructureExists(g *Graph, subset []VarID, outVar VarID) error {
	opID, ok := g.Producer(outVar)
	if !ok {
		return fmt.Errorf("rfg: %s has no producer", outVar.Label())
	}
	op, in, _, _ := g.Op(opID)
	if op.Type() != "exists" {
		return fmt.Errorf("rfg: %s computed by %q, want exists", outVar.Label(), op.Type())
	}
	if err := sameVarSet(in, subset); err != nil {
		return fmt.Errorf("rfg: exists inputs: %w", err)
	}
	return nil
}

func sameVarSet(a, b []VarID) error {
	if len(a) != len(b) {
		return fmt.Errorf("have %d vars, want %d", len(a), len(b))
	}
	set := make(map[VarID]bool, len(a))
	for _, v := range a {
		set[v] = true
	}
	for _, v := range b {
		if !set[v] {
			return fmt.Errorf("missing %s", v.Label())
		}
	}
	return nil
}

// ModelCheck drives the graph with trials random input bindings (from the
// seeded rng) plus the all-empty and single-route corner cases, evaluating
// the promise on each. It returns the first counterexample found, nil if
// the graph appears to implement the promise.
//
// This is a bounded behavioural check, not a proof; it corresponds to the
// recipient's offline vetting of the declared rules before trusting them.
func ModelCheck(g *Graph, p Promise, inVars []VarID, outVar VarID, trials int, rng *rand.Rand) error {
	// Corner case: all inputs empty.
	if err := evalAndCheck(g, p, map[VarID][]route.Route{}, outVar); err != nil {
		return err
	}
	// Corner cases: exactly one input bound, length 1 and length MaxLength/2.
	for _, v := range inVars {
		for _, l := range []int{1, 8} {
			in := map[VarID][]route.Route{v: {synthRoute(rng, l)}}
			if err := evalAndCheck(g, p, in, outVar); err != nil {
				return err
			}
		}
	}
	for t := 0; t < trials; t++ {
		in := map[VarID][]route.Route{}
		for _, v := range inVars {
			switch rng.Intn(3) {
			case 0: // absent
			case 1:
				in[v] = []route.Route{synthRoute(rng, 1+rng.Intn(10))}
			case 2:
				in[v] = []route.Route{
					synthRoute(rng, 1+rng.Intn(10)),
					synthRoute(rng, 1+rng.Intn(10)),
				}
			}
		}
		if err := evalAndCheck(g, p, in, outVar); err != nil {
			return err
		}
	}
	return nil
}

func evalAndCheck(g *Graph, p Promise, in map[VarID][]route.Route, outVar VarID) error {
	vals, err := g.Eval(in)
	if err != nil {
		return err
	}
	if err := p.Check(in, vals[outVar]); err != nil {
		return fmt.Errorf("counterexample with %d bound inputs: %w", len(in), err)
	}
	return nil
}

// synthRoute builds a random route with the requested AS-path length.
func synthRoute(rng *rand.Rand, pathLen int) route.Route {
	asns := make([]aspath.ASN, pathLen)
	for i := range asns {
		asns[i] = aspath.ASN(64500 + rng.Intn(1000))
	}
	var oct [4]byte
	rng.Read(oct[:])
	oct[0] = 203 // keep prefixes inside a documentation-ish range
	pfx, err := prefix.From(netip.AddrFrom4(oct), 24)
	if err != nil {
		panic(err)
	}
	return route.Route{
		Prefix:    pfx,
		Path:      aspath.New(asns...),
		NextHop:   netip.AddrFrom4([4]byte{192, 0, 2, byte(rng.Intn(256))}),
		LocalPref: 100,
		Origin:    route.OriginIGP,
	}
}
