// Package rfg implements the paper's route-flow graphs (§2.1): routing
// policy decomposed into operator vertices and variable vertices whose
// visibility is governed by an access-control policy α (§2.2). A graph can
// be evaluated (what the router actually does), statically checked against
// a promise (what the recipient verifies, §2.2 "based purely on static
// inspection"), and committed/disclosed through the PVR core.
package rfg

import (
	"errors"
	"fmt"
	"sort"

	"pvr/internal/aspath"
	"pvr/internal/community"
	"pvr/internal/route"
)

// Operator is a rule vertex: it consumes the values of its input variables
// (each a set of routes — possibly empty, possibly singleton) and produces
// an output set. "A rule is an operation that takes some set of input
// routes and emits a set of output routes (which may be a single route, or
// no route at all)" (§2.1).
type Operator interface {
	// Type is the operator's wire name, e.g. "min"; it is what α may
	// authorize a neighbor to learn about the vertex.
	Type() string
	// Eval computes the output set from the input sets, in input order.
	Eval(inputs [][]route.Route) ([]route.Route, error)
}

// ErrArity is returned when an operator receives the wrong input count.
var ErrArity = errors.New("rfg: wrong number of operator inputs")

// CompareRoutes orders routes for the Min operator: by AS-path length, then
// by canonical encoding for a deterministic tie-break. Returns -1/0/1.
func CompareRoutes(a, b route.Route) int {
	if la, lb := a.PathLen(), b.PathLen(); la != lb {
		if la < lb {
			return -1
		}
		return 1
	}
	ab, _ := a.MarshalBinary()
	bb, _ := b.MarshalBinary()
	switch {
	case string(ab) < string(bb):
		return -1
	case string(ab) > string(bb):
		return 1
	}
	return 0
}

// Min selects the shortest route (by AS-path length) from the union of its
// inputs: the paper's minimum operator (§3.3, Fig. 1). Ties break
// deterministically via CompareRoutes.
type Min struct{}

// Type implements Operator.
func (Min) Type() string { return "min" }

// Eval implements Operator.
func (Min) Eval(inputs [][]route.Route) ([]route.Route, error) {
	var best *route.Route
	for _, set := range inputs {
		for _, r := range set {
			r := r
			if best == nil || CompareRoutes(r, *best) < 0 {
				best = &r
			}
		}
	}
	if best == nil {
		return nil, nil
	}
	return []route.Route{*best}, nil
}

// Exists emits one route whenever any input is nonempty: the paper's
// existential operator (§3.2). The representative is chosen
// deterministically (first input set with a route, CompareRoutes-minimal
// within it), but the promise it implements only concerns existence.
type Exists struct{}

// Type implements Operator.
func (Exists) Type() string { return "exists" }

// Eval implements Operator.
func (Exists) Eval(inputs [][]route.Route) ([]route.Route, error) {
	for _, set := range inputs {
		if len(set) == 0 {
			continue
		}
		best := set[0]
		for _, r := range set[1:] {
			if CompareRoutes(r, best) < 0 {
				best = r
			}
		}
		return []route.Route{best}, nil
	}
	return nil, nil
}

// Union merges all inputs into one set (deterministic order, duplicates by
// full attribute equality removed).
type Union struct{}

// Type implements Operator.
func (Union) Type() string { return "union" }

// Eval implements Operator.
func (Union) Eval(inputs [][]route.Route) ([]route.Route, error) {
	var out []route.Route
	for _, set := range inputs {
		for _, r := range set {
			dup := false
			for _, o := range out {
				if o.Equal(r) {
					dup = true
					break
				}
			}
			if !dup {
				out = append(out, r)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return CompareRoutes(out[i], out[j]) < 0 })
	return out, nil
}

// Filter keeps routes satisfying a predicate; the predicate kinds cover the
// "more operators" the paper calls for in §4 (communities, AS presence,
// path-length caps).
type Filter struct {
	Pred Predicate
}

// Predicate is a named route predicate usable in Filter.
type Predicate interface {
	Name() string
	Test(route.Route) bool
}

// Type implements Operator.
func (f Filter) Type() string { return "filter:" + f.Pred.Name() }

// Eval implements Operator.
func (f Filter) Eval(inputs [][]route.Route) ([]route.Route, error) {
	var out []route.Route
	for _, set := range inputs {
		for _, r := range set {
			if f.Pred.Test(r) {
				out = append(out, r)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return CompareRoutes(out[i], out[j]) < 0 })
	return out, nil
}

// MaxLen passes routes with AS-path length ≤ N.
type MaxLen struct{ N int }

// Name implements Predicate.
func (p MaxLen) Name() string { return fmt.Sprintf("maxlen<=%d", p.N) }

// Test implements Predicate.
func (p MaxLen) Test(r route.Route) bool { return r.PathLen() <= p.N }

// HasCommunity passes routes carrying a community (§4: "operators that
// evaluate communities").
type HasCommunity struct{ C community.Community }

// Name implements Predicate.
func (p HasCommunity) Name() string { return "community=" + p.C.String() }

// Test implements Predicate.
func (p HasCommunity) Test(r route.Route) bool { return r.Communities.Has(p.C) }

// LacksCommunity passes routes not carrying a community.
type LacksCommunity struct{ C community.Community }

// Name implements Predicate.
func (p LacksCommunity) Name() string { return "no-community=" + p.C.String() }

// Test implements Predicate.
func (p LacksCommunity) Test(r route.Route) bool { return !r.Communities.Has(p.C) }

// AvoidsAS passes routes that do not traverse the given AS (§4: "check for
// the presence of particular ASes on the path").
type AvoidsAS struct{ ASN aspath.ASN }

// Name implements Predicate.
func (p AvoidsAS) Name() string { return fmt.Sprintf("avoids-%s", p.ASN) }

// Test implements Predicate.
func (p AvoidsAS) Test(r route.Route) bool { return !r.Path.Contains(p.ASN) }

// ViaAS passes routes whose first hop is the given AS.
type ViaAS struct{ ASN aspath.ASN }

// Name implements Predicate.
func (p ViaAS) Name() string { return fmt.Sprintf("via-%s", p.ASN) }

// Test implements Predicate.
func (p ViaAS) Test(r route.Route) bool {
	f, ok := r.Path.First()
	return ok && f == p.ASN
}

// PreferFirst emits the Min of its first nonempty input *only if* it is not
// beaten by a shorter route in a later input; otherwise the later route
// wins. With inputs (v, r1) it implements Fig. 2's policy "export some
// route via N2…Nk unless N1 provides a shorter route" when composed as
// PreferFirst(Exists(r2…rk), r1).
type PreferFirst struct{}

// Type implements Operator.
func (PreferFirst) Type() string { return "prefer-first" }

// Eval implements Operator.
func (PreferFirst) Eval(inputs [][]route.Route) ([]route.Route, error) {
	if len(inputs) != 2 {
		return nil, fmt.Errorf("%w: prefer-first wants 2, got %d", ErrArity, len(inputs))
	}
	pref, _ := Min{}.Eval(inputs[:1])
	alt, _ := Min{}.Eval(inputs[1:])
	switch {
	case len(pref) == 0:
		return alt, nil
	case len(alt) == 0:
		return pref, nil
	case alt[0].PathLen() < pref[0].PathLen():
		return alt, nil
	default:
		return pref, nil
	}
}
