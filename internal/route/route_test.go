package route

import (
	"math/rand"
	"net/netip"
	"testing"

	"pvr/internal/aspath"
	"pvr/internal/community"
	"pvr/internal/prefix"
)

func sample() Route {
	return Route{
		Prefix:      prefix.MustParse("203.0.113.0/24"),
		Path:        aspath.New(64500, 64501),
		NextHop:     netip.MustParseAddr("192.0.2.1"),
		LocalPref:   100,
		MED:         5,
		Origin:      OriginIGP,
		Communities: community.NewSet(community.Make(64500, 1)),
	}
}

func TestValid(t *testing.T) {
	r := sample()
	if !r.Valid() {
		t.Fatal("sample should be valid")
	}
	var zero Route
	if zero.Valid() {
		t.Error("zero route should be invalid")
	}
	bad := sample()
	bad.NextHop = netip.Addr{}
	if bad.Valid() {
		t.Error("missing next hop should be invalid")
	}
}

func TestWithPrepended(t *testing.T) {
	r := sample()
	r2, err := r.WithPrepended(64999)
	if err != nil {
		t.Fatal(err)
	}
	if r2.PathLen() != r.PathLen()+1 {
		t.Errorf("PathLen = %d", r2.PathLen())
	}
	if f, _ := r2.Path.First(); f != 64999 {
		t.Errorf("First = %v", f)
	}
	// Immutable: original unchanged.
	if r.PathLen() != 2 {
		t.Error("original mutated")
	}
}

func TestMutatorsPersistent(t *testing.T) {
	r := sample()
	r2 := r.WithLocalPref(999).WithCommunity(community.NoExport)
	if r2.LocalPref != 999 || !r2.Communities.Has(community.NoExport) {
		t.Error("mutators did not apply")
	}
	if r.LocalPref != 100 || r.Communities.Has(community.NoExport) {
		t.Error("original mutated")
	}
}

func TestEqual(t *testing.T) {
	a, b := sample(), sample()
	if !a.Equal(b) {
		t.Fatal("identical routes unequal")
	}
	mods := []func(*Route){
		func(r *Route) { r.Prefix = prefix.MustParse("10.0.0.0/8") },
		func(r *Route) { r.Path = aspath.New(1) },
		func(r *Route) { r.NextHop = netip.MustParseAddr("192.0.2.99") },
		func(r *Route) { r.LocalPref = 0 },
		func(r *Route) { r.MED = 77 },
		func(r *Route) { r.Origin = OriginIncomplete },
		func(r *Route) { r.Communities = community.NewSet() },
	}
	for i, m := range mods {
		c := sample()
		m(&c)
		if a.Equal(c) {
			t.Errorf("mod %d: routes still equal", i)
		}
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	cases := []Route{
		sample(),
		{
			Prefix:  prefix.MustParse("0.0.0.0/0"),
			Path:    aspath.Path{},
			NextHop: netip.MustParseAddr("10.0.0.1"),
			Origin:  OriginIncomplete,
		},
		{
			Prefix:  prefix.MustParse("2001:db8::/32"),
			Path:    aspath.New(1, 2, 3, 4, 5),
			NextHop: netip.MustParseAddr("2001:db8::1"),
			MED:     4294967295,
			Origin:  OriginEGP,
			Communities: community.NewSet(
				community.NoExport, community.Make(1, 1), community.Make(2, 2)),
		},
	}
	for i, r := range cases {
		b, err := r.MarshalBinary()
		if err != nil {
			t.Fatalf("case %d marshal: %v", i, err)
		}
		var u Route
		if err := u.UnmarshalBinary(b); err != nil {
			t.Fatalf("case %d unmarshal: %v", i, err)
		}
		if !u.Equal(r) {
			t.Errorf("case %d round trip:\n  in  %s\n  out %s", i, r, u)
		}
	}
}

func TestMarshalInvalid(t *testing.T) {
	var zero Route
	if _, err := zero.MarshalBinary(); err == nil {
		t.Error("marshal of invalid route succeeded")
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	good, err := sample().MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var r Route
	// Truncations at every boundary must fail, never panic.
	for n := 0; n < len(good); n++ {
		if err := r.UnmarshalBinary(good[:n]); err == nil {
			t.Errorf("truncation to %d bytes accepted", n)
		}
	}
	// Trailing garbage.
	if err := r.UnmarshalBinary(append(append([]byte{}, good...), 0xFF)); err == nil {
		t.Error("trailing byte accepted")
	}
	// Bad origin.
	bad := append([]byte{}, good...)
	// Origin sits 9 bytes before the trailing communities field (u16 len + 4 bytes).
	bad[len(bad)-7] = 9
	if err := r.UnmarshalBinary(bad); err == nil {
		t.Error("bad origin accepted")
	}
}

// TestQuickRoundTrip round-trips randomized routes: encoding must be total
// and injective over valid routes.
func TestQuickRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 500; i++ {
		var oct [4]byte
		rng.Read(oct[:])
		pfx, err := prefix.From(netip.AddrFrom4(oct), rng.Intn(33))
		if err != nil {
			t.Fatal(err)
		}
		n := rng.Intn(10)
		asns := make([]aspath.ASN, n)
		for j := range asns {
			asns[j] = aspath.ASN(rng.Uint32())
		}
		var comms []community.Community
		for j := 0; j < rng.Intn(5); j++ {
			comms = append(comms, community.Community(rng.Uint32()))
		}
		rng.Read(oct[:])
		r := Route{
			Prefix:      pfx,
			Path:        aspath.New(asns...),
			NextHop:     netip.AddrFrom4(oct),
			LocalPref:   rng.Uint32(),
			MED:         rng.Uint32(),
			Origin:      Origin(rng.Intn(3)),
			Communities: community.NewSet(comms...),
		}
		b, err := r.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		var u Route
		if err := u.UnmarshalBinary(b); err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
		if !u.Equal(r) {
			t.Fatalf("round %d mismatch", i)
		}
		// Injectivity spot check: re-marshal equals original bytes.
		b2, err := u.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if string(b) != string(b2) {
			t.Fatalf("round %d: non-canonical encoding", i)
		}
	}
}
