// Package route defines the BGP route: a destination prefix plus its path
// attributes. Routes are the values flowing through route-flow graphs and
// the objects that PVR commits to, signs, and selectively discloses, so the
// package provides a canonical, unique binary encoding.
package route

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"

	"pvr/internal/aspath"
	"pvr/internal/community"
	"pvr/internal/prefix"
)

// Origin is the BGP ORIGIN attribute (RFC 4271 §4.3).
type Origin uint8

// Origin codes; lower is preferred in the decision process.
const (
	OriginIGP        Origin = 0
	OriginEGP        Origin = 1
	OriginIncomplete Origin = 2
)

// String names the origin code as in router show output.
func (o Origin) String() string {
	switch o {
	case OriginIGP:
		return "IGP"
	case OriginEGP:
		return "EGP"
	case OriginIncomplete:
		return "incomplete"
	}
	return fmt.Sprintf("origin(%d)", uint8(o))
}

// ErrBadRoute is returned for malformed route encodings.
var ErrBadRoute = errors.New("route: malformed route")

// Route is one BGP route: a prefix and its attributes. Routes are treated
// as immutable values; mutators return copies. The zero value is invalid.
type Route struct {
	// Prefix is the destination (NLRI).
	Prefix prefix.Prefix
	// Path is the AS_PATH; its leftmost AS is the neighbor the route was
	// learned from (after that neighbor prepended itself).
	Path aspath.Path
	// NextHop is the NEXT_HOP attribute.
	NextHop netip.Addr
	// LocalPref is the LOCAL_PREF attribute (meaningful inside one AS).
	LocalPref uint32
	// MED is the MULTI_EXIT_DISC attribute.
	MED uint32
	// Origin is the ORIGIN attribute.
	Origin Origin
	// Communities are the RFC 1997 tags attached to the route.
	Communities community.Set
}

// Valid reports whether the route has a valid prefix and next hop.
func (r Route) Valid() bool { return r.Prefix.IsValid() && r.NextHop.IsValid() }

// PathLen returns the AS-path length used by the decision process and by
// PVR's minimum operator.
func (r Route) PathLen() int { return r.Path.Length() }

// WithPrepended returns a copy of r whose path has asn prepended once, the
// transformation applied when an AS exports the route.
func (r Route) WithPrepended(asn aspath.ASN) (Route, error) {
	p, err := r.Path.Prepend(asn, 1)
	if err != nil {
		return Route{}, err
	}
	r.Path = p
	return r, nil
}

// WithLocalPref returns a copy with LOCAL_PREF set.
func (r Route) WithLocalPref(lp uint32) Route { r.LocalPref = lp; return r }

// WithCommunity returns a copy with community c added.
func (r Route) WithCommunity(c community.Community) Route {
	r.Communities = r.Communities.Add(c)
	return r
}

// Equal reports full attribute equality.
func (r Route) Equal(o Route) bool {
	return r.Prefix == o.Prefix &&
		r.Path.Equal(o.Path) &&
		r.NextHop == o.NextHop &&
		r.LocalPref == o.LocalPref &&
		r.MED == o.MED &&
		r.Origin == o.Origin &&
		r.Communities.Equal(o.Communities)
}

// String renders a looking-glass-style one-liner.
func (r Route) String() string {
	return fmt.Sprintf("%s via %s path [%s] lp=%d med=%d origin=%s comm=%s",
		r.Prefix, r.NextHop, r.Path, r.LocalPref, r.MED, r.Origin, r.Communities)
}

// MarshalBinary produces the canonical encoding:
//
//	prefix  : u16 length-prefixed prefix.MarshalBinary
//	path    : u16 length-prefixed aspath.MarshalBinary
//	nexthop : u8 length + address bytes
//	localpref, med : u32 big-endian
//	origin  : u8
//	comms   : u16 length-prefixed community.Set.MarshalBinary
//
// The encoding is unique for a given route (all components are canonical),
// so hashing it yields a well-defined commitment.
func (r Route) MarshalBinary() ([]byte, error) {
	if !r.Valid() {
		return nil, fmt.Errorf("%w: invalid prefix or next hop", ErrBadRoute)
	}
	var buf bytes.Buffer
	pb, err := r.Prefix.MarshalBinary()
	if err != nil {
		return nil, err
	}
	appendU16Bytes(&buf, pb)
	ab, err := r.Path.MarshalBinary()
	if err != nil {
		return nil, err
	}
	appendU16Bytes(&buf, ab)
	nh := r.NextHop.AsSlice()
	buf.WriteByte(byte(len(nh)))
	buf.Write(nh)
	var u32 [4]byte
	binary.BigEndian.PutUint32(u32[:], r.LocalPref)
	buf.Write(u32[:])
	binary.BigEndian.PutUint32(u32[:], r.MED)
	buf.Write(u32[:])
	buf.WriteByte(byte(r.Origin))
	cb, err := r.Communities.MarshalBinary()
	if err != nil {
		return nil, err
	}
	appendU16Bytes(&buf, cb)
	return buf.Bytes(), nil
}

// UnmarshalBinary decodes the MarshalBinary encoding.
func (r *Route) UnmarshalBinary(b []byte) error {
	var out Route
	pb, rest, err := takeU16Bytes(b)
	if err != nil {
		return fmt.Errorf("%w: prefix: %v", ErrBadRoute, err)
	}
	if err := out.Prefix.UnmarshalBinary(pb); err != nil {
		return err
	}
	ab, rest, err := takeU16Bytes(rest)
	if err != nil {
		return fmt.Errorf("%w: path: %v", ErrBadRoute, err)
	}
	if err := out.Path.UnmarshalBinary(ab); err != nil {
		return err
	}
	if len(rest) < 1 {
		return fmt.Errorf("%w: missing next hop", ErrBadRoute)
	}
	nhLen := int(rest[0])
	rest = rest[1:]
	if nhLen != 4 && nhLen != 16 {
		return fmt.Errorf("%w: next hop length %d", ErrBadRoute, nhLen)
	}
	if len(rest) < nhLen {
		return fmt.Errorf("%w: truncated next hop", ErrBadRoute)
	}
	nh, ok := netip.AddrFromSlice(rest[:nhLen])
	if !ok {
		return fmt.Errorf("%w: bad next hop", ErrBadRoute)
	}
	out.NextHop = nh
	rest = rest[nhLen:]
	if len(rest) < 9 {
		return fmt.Errorf("%w: truncated attributes", ErrBadRoute)
	}
	out.LocalPref = binary.BigEndian.Uint32(rest)
	out.MED = binary.BigEndian.Uint32(rest[4:])
	out.Origin = Origin(rest[8])
	if out.Origin > OriginIncomplete {
		return fmt.Errorf("%w: origin %d", ErrBadRoute, out.Origin)
	}
	rest = rest[9:]
	cb, rest, err := takeU16Bytes(rest)
	if err != nil {
		return fmt.Errorf("%w: communities: %v", ErrBadRoute, err)
	}
	if err := out.Communities.UnmarshalBinary(cb); err != nil {
		return err
	}
	if len(rest) != 0 {
		return fmt.Errorf("%w: %d trailing bytes", ErrBadRoute, len(rest))
	}
	*r = out
	return nil
}

func appendU16Bytes(buf *bytes.Buffer, b []byte) {
	var l [2]byte
	binary.BigEndian.PutUint16(l[:], uint16(len(b)))
	buf.Write(l[:])
	buf.Write(b)
}

func takeU16Bytes(b []byte) (field, rest []byte, err error) {
	if len(b) < 2 {
		return nil, nil, errors.New("short length")
	}
	n := int(binary.BigEndian.Uint16(b))
	b = b[2:]
	if len(b) < n {
		return nil, nil, errors.New("short field")
	}
	return b[:n], b[n:], nil
}
