package netx

import "sync"

// Pooled frame buffers. Every plane in the repository (BGP sessions, the
// audit anti-entropy exchange, the disclosure query plane) sends framed
// messages at high rate; allocating a fresh header+payload buffer per
// frame makes the garbage collector a hidden per-message cost. The pool
// hands out size-classed buffers that the framing layer (WriteFrame) and
// the encoders (via GetBuf/SendPooled) recycle instead.
//
// Ownership discipline: a buffer obtained from GetBuf is the caller's
// until it is passed to PutBuf or SendPooled — after that it must not be
// touched. Nothing handed to callers by the read path (ReadFrame, Recv)
// ever comes from the pool, so received payloads can be retained freely;
// the FuzzFramePoolAliasing fuzzer pins that invariant.

// bufClasses are the pooled capacities, smallest first. The top class
// covers a maximum frame plus its 5-byte header so even the largest
// reconciliation payload gets a single pooled write buffer.
var bufClasses = [...]int{512, 8 << 10, 128 << 10, MaxFrame + 5}

var bufPools [len(bufClasses)]sync.Pool

func init() {
	for i := range bufPools {
		size := bufClasses[i]
		bufPools[i].New = func() any {
			poolNews.Add(1)
			b := make([]byte, 0, size)
			return &b
		}
	}
}

// classFor returns the index of the smallest class with capacity >= n,
// or -1 when n exceeds every class.
func classFor(n int) int {
	for i, size := range bufClasses {
		if n <= size {
			return i
		}
	}
	return -1
}

// GetBuf returns a buffer with length 0 and capacity at least n, pooled
// when n fits a size class (requests beyond MaxFrame+5 fall back to a
// plain allocation). Append into it, then release it with PutBuf — or
// hand it to SendPooled, which releases it after the send.
func GetBuf(n int) []byte {
	ci := classFor(n)
	if ci < 0 {
		return make([]byte, 0, n)
	}
	poolGets.Add(1)
	return (*bufPools[ci].Get().(*[]byte))[:0]
}

// PutBuf recycles a buffer obtained from GetBuf. The caller must not use
// b (or anything aliasing it) afterwards. Buffers whose capacity matches
// no size class are dropped for the garbage collector, so PutBuf is safe
// to call on any buffer whose ownership ends here.
func PutBuf(b []byte) {
	if b == nil {
		return
	}
	for i, size := range bufClasses {
		if cap(b) == size {
			b = b[:0]
			bufPools[i].Put(&b)
			return
		}
	}
}

// AppendFrame appends f's full wire encoding — u32 length of
// (type ‖ payload), type byte, payload — to b and returns the result:
// the append-style form of WriteFrame for callers that batch several
// frames into one buffer or one write.
func AppendFrame(b []byte, f Frame) ([]byte, error) {
	if len(f.Payload) > MaxFrame {
		return b, ErrFrameTooBig
	}
	b = AppendU32(b, uint32(1+len(f.Payload)))
	b = append(b, f.Type)
	return append(b, f.Payload...), nil
}

// FrameSender is the minimal surface SendPooled needs; netx.FrameConn and
// the per-plane connection interfaces (auditnet, discplane) all satisfy it.
type FrameSender interface {
	Send(Frame) error
}

// SendPooled sends (t, payload) over c and recycles payload, which must
// have been obtained from GetBuf and must not be used afterwards. This
// relies on the FrameConn contract that Send does not retain the payload
// past its return.
func SendPooled(c FrameSender, t uint8, payload []byte) error {
	err := c.Send(Frame{Type: t, Payload: payload})
	PutBuf(payload)
	return err
}
