package netx

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	frames := []Frame{
		{Type: 1, Payload: []byte("hello")},
		{Type: 0, Payload: nil},
		{Type: 255, Payload: bytes.Repeat([]byte{0xAB}, 1000)},
	}
	for _, f := range frames {
		if err := WriteFrame(&buf, f); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range frames {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.Type != want.Type || !bytes.Equal(got.Payload, want.Payload) {
			t.Errorf("frame %d mismatch", i)
		}
	}
	// EOF on empty buffer maps to ErrClosed.
	if _, err := ReadFrame(&buf); !errors.Is(err, ErrClosed) {
		t.Errorf("empty read: %v", err)
	}
}

func TestFrameTooBig(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, Frame{Payload: make([]byte, MaxFrame+1)}); !errors.Is(err, ErrFrameTooBig) {
		t.Errorf("oversize write: %v", err)
	}
	// A hostile length prefix is rejected before allocation.
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	if _, err := ReadFrame(&buf); !errors.Is(err, ErrFrameTooBig) {
		t.Errorf("hostile length: %v", err)
	}
	// Zero length is invalid (frames always carry a type byte).
	buf.Reset()
	buf.Write([]byte{0, 0, 0, 0})
	if _, err := ReadFrame(&buf); err == nil {
		t.Error("zero-length frame accepted")
	}
}

func TestFrameTruncatedPayload(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0, 0, 0, 10, 1, 2, 3}) // claims 10, has 3
	if _, err := ReadFrame(&buf); err == nil {
		t.Error("truncated payload accepted")
	}
}

func TestConnOverPipe(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	done := make(chan error, 1)
	go func() {
		f, err := b.Recv()
		if err != nil {
			done <- err
			return
		}
		done <- b.Send(Frame{Type: f.Type + 1, Payload: f.Payload})
	}()
	if err := a.Send(Frame{Type: 7, Payload: []byte("ping")}); err != nil {
		t.Fatal(err)
	}
	f, err := a.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != 8 || string(f.Payload) != "ping" {
		t.Errorf("echo = %d %q", f.Type, f.Payload)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestConnConcurrentWriters(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	const n = 50
	var recvWG sync.WaitGroup
	recvWG.Add(1)
	counts := make(map[uint8]int)
	go func() {
		defer recvWG.Done()
		for i := 0; i < 4*n; i++ {
			f, err := b.Recv()
			if err != nil {
				t.Errorf("recv: %v", err)
				return
			}
			counts[f.Type]++
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(id uint8) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				if err := a.Send(Frame{Type: id, Payload: []byte{byte(i)}}); err != nil {
					t.Errorf("send: %v", err)
					return
				}
			}
		}(uint8(w))
	}
	wg.Wait()
	recvWG.Wait()
	for w := 0; w < 4; w++ {
		if counts[uint8(w)] != n {
			t.Errorf("writer %d: %d frames", w, counts[uint8(w)])
		}
	}
}

func TestLinkSendRecv(t *testing.T) {
	l, ea, eb := NewLink(8)
	defer l.Close()
	payload := []byte("data")
	if err := ea.Send(Frame{Type: 3, Payload: payload}); err != nil {
		t.Fatal(err)
	}
	// Mutating the caller's buffer must not affect the queued frame.
	payload[0] = 'X'
	f, err := eb.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if string(f.Payload) != "data" {
		t.Errorf("payload aliased: %q", f.Payload)
	}
	// Other direction.
	if err := eb.Send(Frame{Type: 4}); err != nil {
		t.Fatal(err)
	}
	if f, err := ea.Recv(); err != nil || f.Type != 4 {
		t.Errorf("reverse: %v %v", f, err)
	}
}

func TestLinkTryRecv(t *testing.T) {
	l, ea, eb := NewLink(2)
	defer l.Close()
	if _, ok := eb.TryRecv(); ok {
		t.Error("TryRecv on empty link returned a frame")
	}
	if err := ea.Send(Frame{Type: 9}); err != nil {
		t.Fatal(err)
	}
	if f, ok := eb.TryRecv(); !ok || f.Type != 9 {
		t.Errorf("TryRecv = %v %v", f, ok)
	}
}

func TestLinkCloseUnblocksAndDrains(t *testing.T) {
	l, ea, eb := NewLink(4)
	if err := ea.Send(Frame{Type: 1}); err != nil {
		t.Fatal(err)
	}
	l.Close()
	// Queued frame still deliverable after close.
	if f, err := eb.Recv(); err != nil || f.Type != 1 {
		t.Errorf("drain after close: %v %v", f, err)
	}
	// Then closed.
	if _, err := eb.Recv(); !errors.Is(err, ErrClosed) {
		t.Errorf("recv after drain: %v", err)
	}
	if err := ea.Send(Frame{Type: 2}); !errors.Is(err, ErrClosed) {
		t.Errorf("send after close: %v", err)
	}
	l.Close() // double close is safe
}

func TestTCPListenDial(t *testing.T) {
	got := make(chan Frame, 1)
	addr, closer, err := Listen("127.0.0.1:0", func(c *Conn) {
		defer c.Close()
		f, err := c.Recv()
		if err != nil {
			return
		}
		got <- f
		_ = c.Send(Frame{Type: 99, Payload: []byte("ack")})
	})
	if err != nil {
		t.Fatal(err)
	}
	defer closer.Close()

	c, err := Dial(addr.String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Send(Frame{Type: 5, Payload: []byte("over tcp")}); err != nil {
		t.Fatal(err)
	}
	select {
	case f := <-got:
		if f.Type != 5 || string(f.Payload) != "over tcp" {
			t.Errorf("server got %v", f)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("server did not receive frame")
	}
	f, err := c.Recv()
	if err != nil || f.Type != 99 {
		t.Errorf("ack = %v %v", f, err)
	}
}

func TestDialFailure(t *testing.T) {
	if _, err := Dial("127.0.0.1:1", 100*time.Millisecond); err == nil {
		t.Error("dial to closed port succeeded")
	}
}
