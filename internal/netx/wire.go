package netx

import (
	"encoding/binary"
	"errors"
)

// Shared frame-payload encoding helpers: the big-endian, length-prefixed
// idiom every wire protocol in this repository (the audit anti-entropy
// exchange, the disclosure query plane) builds its payloads from. One
// implementation keeps the bounds discipline — counts sanity-checked
// against bytes remaining, exact-length decodes — identical everywhere.

// ErrMalformedPayload is wrapped by every payload decoding error.
var ErrMalformedPayload = errors.New("netx: malformed frame payload")

// AppendU32 appends v big-endian.
func AppendU32(b []byte, v uint32) []byte {
	var u [4]byte
	binary.BigEndian.PutUint32(u[:], v)
	return append(b, u[:]...)
}

// AppendU64 appends v big-endian.
func AppendU64(b []byte, v uint64) []byte {
	var u [8]byte
	binary.BigEndian.PutUint64(u[:], v)
	return append(b, u[:]...)
}

// AppendBytes appends p with a u32 length prefix.
func AppendBytes(b, p []byte) []byte {
	b = AppendU32(b, uint32(len(p)))
	return append(b, p...)
}

// PayloadReader consumes a frame payload front to back. Every method
// returns ErrMalformedPayload (possibly wrapped) when the remaining
// bytes cannot satisfy the read; Done asserts the payload was consumed
// exactly.
type PayloadReader struct {
	B []byte
}

// Take consumes the next n bytes (aliasing the payload, not copying).
func (r *PayloadReader) Take(n int) ([]byte, error) {
	if n < 0 || len(r.B) < n {
		return nil, ErrMalformedPayload
	}
	out := r.B[:n]
	r.B = r.B[n:]
	return out, nil
}

// U8 consumes one byte.
func (r *PayloadReader) U8() (uint8, error) {
	b, err := r.Take(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

// U32 consumes a big-endian uint32.
func (r *PayloadReader) U32() (uint32, error) {
	b, err := r.Take(4)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint32(b), nil
}

// U64 consumes a big-endian uint64.
func (r *PayloadReader) U64() (uint64, error) {
	b, err := r.Take(8)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint64(b), nil
}

// Bytes consumes a u32-length-prefixed byte string (see AppendBytes).
func (r *PayloadReader) Bytes() ([]byte, error) {
	n, err := r.U32()
	if err != nil {
		return nil, err
	}
	return r.Take(int(n))
}

// Count reads a u32 element count and sanity-bounds it against the bytes
// remaining, given a minimum encoded size per element, so a corrupt count
// cannot force a huge allocation.
func (r *PayloadReader) Count(minPer int) (int, error) {
	n, err := r.U32()
	if err != nil {
		return 0, err
	}
	if minPer > 0 && int(n) > len(r.B)/minPer {
		return 0, ErrMalformedPayload
	}
	return int(n), nil
}

// Done reports an error unless the payload was consumed exactly.
func (r *PayloadReader) Done() error {
	if len(r.B) != 0 {
		return ErrMalformedPayload
	}
	return nil
}

// Remaining returns the number of unconsumed payload bytes.
func (r *PayloadReader) Remaining() int { return len(r.B) }

// ---------------------------------------------------------------------------
// Trailing extensions
//
// Versioned optional fields ride after a message's fixed encoding as a
// sequence of (tag u8, u32-length-prefixed body) blocks running to the end
// of the payload. Old decoders predating extensions fail their exact-length
// Done() check on extended frames, so extension-aware decoders call
// ReadExts between the fixed fields and Done; a decoder that recognises no
// tags still skips every block, which is what makes unknown (future)
// extensions safe to ignore.

// Extension tags. Tag values are shared across every plane's framing so a
// trace context looks the same in an audit STATEMENTS frame and a
// disclosure VIEW.
const (
	// ExtTrace carries a distributed trace context
	// (obs.TraceContext.AppendWire, 24 bytes).
	ExtTrace uint8 = 0x01
	// ExtTraceList carries trace contexts for a frame whose elements are
	// concatenated without per-element framing: a u32 pair count followed
	// by (u32 element index, trace context) pairs.
	ExtTraceList uint8 = 0x02
)

// AppendExt appends one trailing extension block.
func AppendExt(b []byte, tag uint8, body []byte) []byte {
	b = append(b, tag)
	return AppendBytes(b, body)
}

// ReadExts consumes every trailing extension block, calling fn for each.
// Unknown tags must be ignored by fn (it simply returns nil); bodies alias
// the payload. fn errors abort the scan.
func ReadExts(r *PayloadReader, fn func(tag uint8, body []byte) error) error {
	for r.Remaining() > 0 {
		tag, err := r.U8()
		if err != nil {
			return err
		}
		body, err := r.Bytes()
		if err != nil {
			return err
		}
		if fn != nil {
			if err := fn(tag, body); err != nil {
				return err
			}
		}
	}
	return nil
}
