package netx

import (
	"bytes"
	"io"
	"testing"
)

func TestGetBufPutBufClasses(t *testing.T) {
	for _, n := range []int{0, 1, 511, 512, 513, 8 << 10, 100 << 10, MaxFrame + 5} {
		b := GetBuf(n)
		if len(b) != 0 {
			t.Fatalf("GetBuf(%d): len %d, want 0", n, len(b))
		}
		if cap(b) < n {
			t.Fatalf("GetBuf(%d): cap %d < requested", n, cap(b))
		}
		PutBuf(b)
	}
	// Oversized requests fall back to plain allocation and PutBuf drops
	// them (capacity matches no class) without blowing up.
	big := GetBuf(MaxFrame + 6)
	if cap(big) < MaxFrame+6 {
		t.Fatalf("oversized GetBuf cap %d", cap(big))
	}
	PutBuf(big)
	PutBuf(nil)
	// A foreign buffer whose capacity matches no class is silently dropped.
	PutBuf(make([]byte, 0, 777))
}

// countingWriter counts Write calls, to pin the single-write framing
// property that keeps concurrent writers on one stream from interleaving.
type countingWriter struct {
	bytes.Buffer
	calls int
}

func (w *countingWriter) Write(p []byte) (int, error) {
	w.calls++
	return w.Buffer.Write(p)
}

func TestWriteFrameSingleWrite(t *testing.T) {
	var w countingWriter
	payload := bytes.Repeat([]byte{0xAB}, 1000)
	if err := WriteFrame(&w, Frame{Type: 7, Payload: payload}); err != nil {
		t.Fatal(err)
	}
	if w.calls != 1 {
		t.Fatalf("WriteFrame issued %d writes, want 1", w.calls)
	}
	f, err := ReadFrame(&w.Buffer)
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != 7 || !bytes.Equal(f.Payload, payload) {
		t.Fatal("round trip mismatch")
	}
}

func TestAppendFrameMatchesWriteFrame(t *testing.T) {
	payload := []byte("the quick brown fox")
	var buf bytes.Buffer
	if err := WriteFrame(&buf, Frame{Type: 3, Payload: payload}); err != nil {
		t.Fatal(err)
	}
	ab, err := AppendFrame(nil, Frame{Type: 3, Payload: payload})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ab, buf.Bytes()) {
		t.Fatalf("AppendFrame %x != WriteFrame %x", ab, buf.Bytes())
	}
	if _, err := AppendFrame(nil, Frame{Payload: make([]byte, MaxFrame+1)}); err == nil {
		t.Fatal("oversized AppendFrame accepted")
	}
}

// poisonPools cycles a buffer through every size class, filling its full
// capacity with junk. If any live slice aliases pooled memory, its bytes
// change underneath it.
func poisonPools() {
	for _, size := range bufClasses {
		b := GetBuf(size)
		b = b[:cap(b)]
		for i := range b {
			b[i] = 0xDB
		}
		PutBuf(b[:0])
	}
}

func TestSendPooledRecyclesAfterCopy(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	payload := GetBuf(64)
	payload = append(payload, bytes.Repeat([]byte{0x5C}, 64)...)
	want := append([]byte(nil), payload...)
	done := make(chan Frame, 1)
	go func() {
		f, err := b.Recv()
		if err != nil {
			close(done)
			return
		}
		done <- f
	}()
	if err := SendPooled(a, 9, payload); err != nil {
		t.Fatal(err)
	}
	f, ok := <-done
	if !ok {
		t.Fatal("recv failed")
	}
	poisonPools()
	if f.Type != 9 || !bytes.Equal(f.Payload, want) {
		t.Fatal("received frame corrupted by buffer recycling")
	}
}

// FuzzFramePoolAliasing is the codec round-trip fuzzer: a frame encoded
// through the pooled writer and decoded back must survive aggressive
// reuse of every pool class — i.e. ReadFrame's result never aliases
// pooled memory, the invariant that makes SendPooled safe system-wide.
func FuzzFramePoolAliasing(f *testing.F) {
	f.Add(uint8(1), []byte(nil))
	f.Add(uint8(2), []byte("hello"))
	f.Add(uint8(0x41), bytes.Repeat([]byte{0xA5}, 600))
	f.Add(uint8(0xFF), bytes.Repeat([]byte{0x00}, 9000))
	f.Fuzz(func(t *testing.T, typ uint8, payload []byte) {
		if len(payload) > MaxFrame {
			t.Skip()
		}
		// Encode via the pooled path, both through WriteFrame and through
		// AppendFrame into an explicitly pooled buffer.
		var stream bytes.Buffer
		if err := WriteFrame(&stream, Frame{Type: typ, Payload: payload}); err != nil {
			t.Fatal(err)
		}
		enc, err := AppendFrame(GetBuf(5+len(payload)), Frame{Type: typ, Payload: payload})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc, stream.Bytes()) {
			t.Fatal("AppendFrame and WriteFrame disagree")
		}

		got, err := ReadFrame(&stream)
		if err != nil {
			t.Fatal(err)
		}
		got2, err := ReadFrame(bytes.NewReader(enc))
		if err != nil {
			t.Fatal(err)
		}
		PutBuf(enc) // enc's ownership ends; got2 must not care

		snapshot := append([]byte(nil), payload...)
		// Hammer every pool class with poison, plus extra frame traffic
		// that reuses whatever buffers the reads might have leaked.
		poisonPools()
		junk := bytes.Repeat([]byte{0xEE}, len(payload)+32)
		if err := WriteFrame(io.Discard, Frame{Type: ^typ, Payload: junk}); err != nil {
			t.Fatal(err)
		}
		poisonPools()

		if got.Type != typ || !bytes.Equal(got.Payload, snapshot) {
			t.Fatal("ReadFrame payload aliases pooled memory (WriteFrame path)")
		}
		if got2.Type != typ || !bytes.Equal(got2.Payload, snapshot) {
			t.Fatal("ReadFrame payload aliases pooled memory (AppendFrame path)")
		}
	})
}
