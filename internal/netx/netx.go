// Package netx provides the transport layer shared by the BGP substrate and
// the PVR daemon: length-prefixed message framing over any net.Conn, an
// in-process duplex link for simulations, and small TCP helpers. Framing is
// explicit binary (4-byte big-endian length, type byte, payload) so the
// same bytes interoperate between in-memory simulations and cmd/pvrd over
// real sockets.
package netx

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// MaxFrame bounds a frame payload; larger frames are rejected to keep a
// malicious peer from forcing unbounded allocations.
const MaxFrame = 1 << 22 // 4 MiB

// Frame is one wire message: an application-defined type and its payload.
type Frame struct {
	Type    uint8
	Payload []byte
}

// Errors returned by framing.
var (
	ErrFrameTooBig = errors.New("netx: frame exceeds MaxFrame")
	ErrClosed      = errors.New("netx: connection closed")
)

// WriteFrame writes one frame: u32 length of (type ‖ payload), then bytes.
// Header and payload go out in a single pooled write, so a frame costs no
// allocation and writers sharing a stream never interleave partial frames.
func WriteFrame(w io.Writer, f Frame) error {
	if len(f.Payload) > MaxFrame {
		return ErrFrameTooBig
	}
	buf := GetBuf(5 + len(f.Payload))
	buf, _ = AppendFrame(buf, f)
	framesOut.Add(1)
	bytesOut.Add(uint64(len(buf)))
	_, err := w.Write(buf)
	// io.Writer must not retain the slice past Write, so the buffer can go
	// straight back to the pool.
	PutBuf(buf)
	if err != nil {
		return fmt.Errorf("netx: write frame: %w", err)
	}
	return nil
}

// ReadFrame reads one frame written by WriteFrame.
func ReadFrame(r io.Reader) (Frame, error) {
	var lb [4]byte
	if _, err := io.ReadFull(r, lb[:]); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return Frame{}, ErrClosed
		}
		return Frame{}, fmt.Errorf("netx: read length: %w", err)
	}
	n := binary.BigEndian.Uint32(lb[:])
	if n == 0 || n > MaxFrame+1 {
		return Frame{}, ErrFrameTooBig
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return Frame{}, fmt.Errorf("netx: read payload: %w", err)
	}
	framesIn.Add(1)
	bytesIn.Add(uint64(4 + n))
	return Frame{Type: buf[0], Payload: buf[1:]}, nil
}

// FrameConn is the abstract framed connection the higher layers (the BGP
// session FSM, the audit exchange, pvr.Transport) run over: *Conn (TCP or
// net.Pipe) is the canonical implementation, and in-memory transports
// provide their own. SetDeadline interrupts a blocked Recv, which is how
// hold timers and context cancellation reach a stuck peer.
//
// Contract: Send must not retain f.Payload after it returns (it copies or
// finishes writing first), so callers may recycle payload buffers
// immediately — that is what SendPooled does. Recv hands ownership of the
// returned payload to the caller: it never aliases pooled memory.
type FrameConn interface {
	Send(Frame) error
	Recv() (Frame, error)
	SetDeadline(t time.Time) error
	Close() error
	RemoteAddr() net.Addr
}

// Conn is a framed, mutex-protected connection: safe for one concurrent
// reader plus any number of writers, the usage pattern of a BGP session
// (one receive loop, sends from the decision process and keepalive timer).
type Conn struct {
	raw net.Conn
	wmu sync.Mutex
	rmu sync.Mutex
}

// NewConn wraps a net.Conn with framing.
func NewConn(raw net.Conn) *Conn { return &Conn{raw: raw} }

// Send writes one frame.
func (c *Conn) Send(f Frame) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	return WriteFrame(c.raw, f)
}

// Recv reads one frame, blocking until available.
func (c *Conn) Recv() (Frame, error) {
	c.rmu.Lock()
	defer c.rmu.Unlock()
	return ReadFrame(c.raw)
}

// SetDeadline applies to subsequent reads and writes.
func (c *Conn) SetDeadline(t time.Time) error { return c.raw.SetDeadline(t) }

// Close closes the underlying connection; a blocked Recv returns ErrClosed.
func (c *Conn) Close() error { return c.raw.Close() }

// RemoteAddr exposes the peer address for logs.
func (c *Conn) RemoteAddr() net.Addr { return c.raw.RemoteAddr() }

// Pipe returns two framed connections joined by an in-process link, the
// transport used between simulated ASes. It is built on net.Pipe, so sends
// are synchronous rendezvous; Link (below) adds buffering.
func Pipe() (*Conn, *Conn) {
	a, b := net.Pipe()
	return NewConn(a), NewConn(b)
}

// Link is a buffered, bidirectional in-memory message link with optional
// delivery delay, used by the simulator where thousands of messages flow
// between goroutine-actors without rendezvous stalls.
type Link struct {
	a2b chan Frame
	b2a chan Frame

	mu     sync.Mutex
	closed bool
	done   chan struct{}
}

// Endpoint is one side of a Link.
type Endpoint struct {
	link *Link
	out  chan<- Frame
	in   <-chan Frame
}

// NewLink builds a link whose endpoints buffer up to depth frames each way.
func NewLink(depth int) (*Link, *Endpoint, *Endpoint) {
	if depth < 1 {
		depth = 1
	}
	l := &Link{
		a2b:  make(chan Frame, depth),
		b2a:  make(chan Frame, depth),
		done: make(chan struct{}),
	}
	ea := &Endpoint{link: l, out: l.a2b, in: l.b2a}
	eb := &Endpoint{link: l, out: l.b2a, in: l.a2b}
	return l, ea, eb
}

// Close tears the link down; blocked operations return ErrClosed.
func (l *Link) Close() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.closed {
		l.closed = true
		close(l.done)
	}
}

// Send enqueues a frame, blocking if the buffer is full. A copy of the
// payload is made so callers may reuse their buffers.
func (e *Endpoint) Send(f Frame) error {
	// Closed-state check takes priority over an available buffer slot.
	select {
	case <-e.link.done:
		return ErrClosed
	default:
	}
	cp := Frame{Type: f.Type, Payload: append([]byte(nil), f.Payload...)}
	select {
	case <-e.link.done:
		return ErrClosed
	case e.out <- cp:
		return nil
	}
}

// Recv dequeues the next frame, blocking until one arrives or the link
// closes.
func (e *Endpoint) Recv() (Frame, error) {
	select {
	case <-e.link.done:
		// Drain anything already queued before reporting closure.
		select {
		case f := <-e.in:
			return f, nil
		default:
			return Frame{}, ErrClosed
		}
	case f := <-e.in:
		return f, nil
	}
}

// TryRecv dequeues a frame without blocking.
func (e *Endpoint) TryRecv() (Frame, bool) {
	select {
	case f := <-e.in:
		return f, true
	default:
		return Frame{}, false
	}
}

// Listen starts a TCP listener and hands each accepted framed connection to
// handle on its own goroutine, until the listener is closed. It returns the
// bound address.
func Listen(addr string, handle func(*Conn)) (net.Addr, io.Closer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, fmt.Errorf("netx: listen %s: %w", addr, err)
	}
	go func() {
		for {
			raw, err := ln.Accept()
			if err != nil {
				return // listener closed
			}
			go handle(NewConn(raw))
		}
	}()
	return ln.Addr(), ln, nil
}

// Dial connects to a framed TCP endpoint.
func Dial(addr string, timeout time.Duration) (*Conn, error) {
	raw, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("netx: dial %s: %w", addr, err)
	}
	return NewConn(raw), nil
}
