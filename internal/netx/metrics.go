package netx

import (
	"sync/atomic"

	"pvr/internal/obs"
)

// Transport counters are process-global: the buffer pool and the framing
// functions are package state shared by every connection in the process,
// so their totals are too. RegisterMetrics exports them into a registry as
// callback metrics; multiple registries may observe the same totals.
var (
	framesOut atomic.Uint64
	bytesOut  atomic.Uint64
	framesIn  atomic.Uint64
	bytesIn   atomic.Uint64
	poolGets  atomic.Uint64
	poolNews  atomic.Uint64
)

// IOStats is a snapshot of the process-global transport counters.
type IOStats struct {
	FramesOut, BytesOut uint64
	FramesIn, BytesIn   uint64
	// PoolGets counts GetBuf calls served from a size class; PoolNews
	// counts the subset that had to allocate because the pool was empty.
	// The pool hit rate is (PoolGets-PoolNews)/PoolGets.
	PoolGets, PoolNews uint64
}

// ReadIOStats snapshots the transport counters.
func ReadIOStats() IOStats {
	return IOStats{
		FramesOut: framesOut.Load(), BytesOut: bytesOut.Load(),
		FramesIn: framesIn.Load(), BytesIn: bytesIn.Load(),
		PoolGets: poolGets.Load(), PoolNews: poolNews.Load(),
	}
}

// RegisterMetrics exports the process-global transport counters into r.
func RegisterMetrics(r *obs.Registry) {
	reg := func(name, help string, src *atomic.Uint64) {
		obs.NewCounterFunc(r, name, help, func() float64 { return float64(src.Load()) })
	}
	reg("pvr_netx_frames_out_total", "frames written by WriteFrame (process-wide)", &framesOut)
	reg("pvr_netx_frame_bytes_out_total", "frame bytes written, headers included (process-wide)", &bytesOut)
	reg("pvr_netx_frames_in_total", "frames read by ReadFrame (process-wide)", &framesIn)
	reg("pvr_netx_frame_bytes_in_total", "frame bytes read, headers included (process-wide)", &bytesIn)
	reg("pvr_netx_pool_gets_total", "pooled buffer requests served from a size class (process-wide)", &poolGets)
	reg("pvr_netx_pool_misses_total", "pooled buffer requests that allocated because the class pool was empty (process-wide)", &poolNews)
}
