package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sync"
	"sync/atomic"
	"time"
)

// WAL framing. Each segment starts with a 16-byte header (magic + the
// sequence number of its first record); each record is
//
//	u32 length | u8 type | data | u32 CRC-32C(type ‖ data)
//
// with length = 1 + len(data). Records are identified by a global
// sequence number implicit in their position: segment files are named
// wal-%016x.log by the sequence of their first record, and recovery
// counts forward from there. A record whose frame is incomplete or whose
// CRC fails is a torn tail: recovery keeps everything before it and
// ignores the rest. Segments are never appended to after a reopen — the
// log rolls a fresh one — so a torn tail can only ever sit at the very
// end of the newest segment.
const (
	walMagic  = "pvrwal1\n"
	snapMagic = "pvrsnap1"
	hdrSize   = 16
	// MaxRecord bounds one record's data bytes.
	MaxRecord = 4 << 20
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Record is one WAL entry: an application-defined type byte and opaque
// data.
type Record struct {
	Type uint8
	Data []byte
}

// Options parameterizes a Log or Store.
type Options struct {
	// FlushEvery is the group-commit window: an Append becomes durable
	// at most this long after it is enqueued, and every record that
	// arrives while the flush leader is waiting rides the same fsync.
	// Zero flushes immediately — concurrent appenders still batch behind
	// the in-flight fsync, which is the classic group-commit shape.
	FlushEvery time.Duration
	// MaxBatch flushes early once this many records are pending
	// (default 64).
	MaxBatch int
	// SegmentBytes rolls the active segment once it grows past this
	// (default 4 MiB).
	SegmentBytes int64
	// SnapshotEvery (Store only) is how many appended records arm
	// SnapshotDue (default 256; the Store never snapshots on its own —
	// the owner serializes state and calls Snapshot).
	SnapshotEvery int
	// Metrics receives the pvr_store_* accounting; nil means detached
	// (counted but unexported) handles.
	Metrics *Metrics
}

func (o Options) withDefaults() Options {
	if o.MaxBatch <= 0 {
		o.MaxBatch = 64
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.SnapshotEvery <= 0 {
		o.SnapshotEvery = 256
	}
	if o.Metrics == nil {
		o.Metrics = NewMetrics(nil)
	}
	return o
}

// Recovery reports what opening a Log or Store found.
type Recovery struct {
	// Snapshot is the latest durable snapshot payload (Store only; nil
	// when none or when opening a bare Log).
	Snapshot []byte
	// SnapshotSeq is the sequence the snapshot covers up to, exclusive.
	SnapshotSeq uint64
	// Records are the committed WAL records after the snapshot, oldest
	// first.
	Records []Record
	// TornBytes counts trailing bytes dropped as a torn tail.
	TornBytes int
	// Segments is how many live segment files were scanned.
	Segments int
	// Elapsed is the recovery wall time.
	Elapsed time.Duration
}

// Log is a segmented write-ahead log with group commit. Append blocks
// until its record is durable (one fsync covers every record that
// queued behind the same flush); AppendAsync enqueues without waiting.
// Safe for concurrent use.
type Log struct {
	b   Backend
	opt Options
	met *Metrics

	// seq is the sequence number the next record will get (1-based).
	seq atomic.Uint64

	// mu guards the pending queue and leader election.
	mu     sync.Mutex
	pend   []pendingRec
	leader bool
	failed error
	closed bool
	kick   chan struct{}

	// wmu serializes batch writes (and freezes them during snapshots);
	// the active segment handle is guarded by it.
	wmu      sync.Mutex
	f        File
	size     int64
	segCount int
}

type pendingRec struct {
	frame []byte // nil for a Sync marker
	done  chan error
}

func appendFrame(b []byte, t uint8, data []byte) []byte {
	b = binary.BigEndian.AppendUint32(b, uint32(1+len(data)))
	crc := crc32.Update(0, crcTable, []byte{t})
	crc = crc32.Update(crc, crcTable, data)
	b = append(b, t)
	b = append(b, data...)
	return binary.BigEndian.AppendUint32(b, crc)
}

func segName(seq uint64) string  { return fmt.Sprintf("wal-%016x.log", seq) }
func snapName(seq uint64) string { return fmt.Sprintf("snap-%016x.snap", seq) }

// OpenLog opens (creating if needed) a bare log on b and replays every
// committed record. Bare logs never compact — the evidence ledger's
// append-only contract — so Records is the full history.
func OpenLog(b Backend, opt Options) (*Log, *Recovery, error) {
	t0 := time.Now()
	l, rec, err := openLog(b, opt, 0)
	if err != nil {
		return nil, nil, err
	}
	rec.Elapsed = time.Since(t0)
	l.met.recSec.Observe(rec.Elapsed.Seconds())
	return l, rec, nil
}

// openLog scans the segments and builds the Log; records with sequence
// < skipBefore (a snapshot boundary) are dropped from the replay.
func openLog(b Backend, opt Options, skipBefore uint64) (*Log, *Recovery, error) {
	opt = opt.withDefaults()
	l := &Log{b: b, opt: opt, met: opt.Metrics, kick: make(chan struct{}, 1)}
	names, err := b.List()
	if err != nil {
		return nil, nil, fmt.Errorf("store: list: %w", err)
	}
	type seg struct {
		name string
		seq  uint64
	}
	var segs []seg
	for _, name := range names {
		var s uint64
		if n, err := fmt.Sscanf(name, "wal-%016x.log", &s); err == nil && n == 1 && name == segName(s) {
			segs = append(segs, seg{name, s})
		}
	}
	// List is sorted and the names are fixed-width hex, so segs ascend.
	rec := &Recovery{Segments: len(segs), SnapshotSeq: skipBefore}
	next := uint64(1)
	if len(segs) > 0 {
		next = segs[0].seq
	}
	for i, s := range segs {
		last := i == len(segs)-1
		if s.seq != next {
			return nil, nil, fmt.Errorf("store: segment %s breaks the sequence (want %d)", s.name, next)
		}
		data, err := b.ReadFile(s.name)
		if err != nil {
			return nil, nil, fmt.Errorf("store: read %s: %w", s.name, err)
		}
		recs, torn, err := parseSegment(data, s.seq, last)
		if err != nil {
			return nil, nil, fmt.Errorf("store: %s: %w", s.name, err)
		}
		for _, r := range recs {
			if next >= skipBefore {
				rec.Records = append(rec.Records, r)
			}
			next++
		}
		if torn > 0 {
			rec.TornBytes += torn
			l.met.tornTails.Inc()
		}
	}
	if skipBefore > next {
		next = skipBefore
	}
	l.seq.Store(next)
	l.segCount = len(segs)
	l.met.segments.Set(int64(l.segCount))
	l.met.recRecs.Add(uint64(len(rec.Records)))
	return l, rec, nil
}

// parseSegment decodes one segment's records. A malformed header or
// record is tolerated as a torn tail only on the newest segment (last);
// anywhere else it is corruption, because older segments were sealed by
// a successful flush before the next one was created.
func parseSegment(data []byte, firstSeq uint64, last bool) ([]Record, int, error) {
	bad := func(off int, format string, args ...any) ([]Record, int, error) {
		if last {
			return nil, len(data) - off, nil
		}
		return nil, 0, fmt.Errorf(format, args...)
	}
	if len(data) < hdrSize {
		r, t, err := bad(0, "truncated header (%d bytes)", len(data))
		return r, t, err
	}
	if string(data[:len(walMagic)]) != walMagic {
		return nil, 0, fmt.Errorf("bad segment magic")
	}
	if got := binary.BigEndian.Uint64(data[len(walMagic):hdrSize]); got != firstSeq {
		return nil, 0, fmt.Errorf("header sequence %d does not match name (%d)", got, firstSeq)
	}
	var recs []Record
	off := hdrSize
	for off < len(data) {
		if len(data)-off < 4 {
			_, t, err := bad(off, "trailing %d bytes", len(data)-off)
			return recs, t, err
		}
		n := int(binary.BigEndian.Uint32(data[off:]))
		if n < 1 || n > MaxRecord+1 {
			_, t, err := bad(off, "record length %d out of range", n)
			return recs, t, err
		}
		if len(data)-off < 4+n+4 {
			_, t, err := bad(off, "record torn at %d bytes", len(data)-off)
			return recs, t, err
		}
		body := data[off+4 : off+4+n]
		want := binary.BigEndian.Uint32(data[off+4+n:])
		if crc32.Checksum(body, crcTable) != want {
			_, t, err := bad(off, "record CRC mismatch at offset %d", off)
			return recs, t, err
		}
		recs = append(recs, Record{Type: body[0], Data: append([]byte(nil), body[1:]...)})
		off += 4 + n + 4
	}
	return recs, 0, nil
}

// NextSeq returns the sequence number the next appended record will
// get. Only stable while appends are quiesced (e.g. under Snapshot).
func (l *Log) NextSeq() uint64 { return l.seq.Load() }

// Append durably appends one record: it returns once the record (and
// everything queued with it) has been fsynced.
func (l *Log) Append(t uint8, data []byte) error {
	return l.append(t, data, true)
}

// AppendAsync enqueues a record without waiting for durability; it rides
// the next group commit. A flush failure surfaces on the next
// synchronous Append or Sync (the log wedges with the error).
func (l *Log) AppendAsync(t uint8, data []byte) {
	_ = l.append(t, data, false)
}

func (l *Log) append(t uint8, data []byte, wait bool) error {
	if len(data) > MaxRecord {
		return fmt.Errorf("store: record of %d bytes exceeds MaxRecord", len(data))
	}
	var done chan error
	if wait {
		done = make(chan error, 1)
	}
	frame := appendFrame(nil, t, data)
	l.mu.Lock()
	if err := l.gateLocked(); err != nil {
		l.mu.Unlock()
		return err
	}
	l.pend = append(l.pend, pendingRec{frame: frame, done: done})
	n := len(l.pend)
	lead := !l.leader
	if lead {
		l.leader = true
	}
	l.mu.Unlock()
	l.met.appends.Inc()
	if lead {
		// The elected leader waits out the group-commit window and then
		// flushes for everyone. An async append must not block its caller
		// on that, so it leads from a goroutine.
		if wait {
			l.lead(n)
		} else {
			go l.lead(n)
		}
	} else if n >= l.opt.MaxBatch {
		l.kickLeader()
	}
	if done != nil {
		return <-done
	}
	return nil
}

// lead runs the flush leader's duty: wait out the group-commit window
// (cut short by a kick) and flush the batch. n is the pending count at
// election time.
func (l *Log) lead(n int) {
	if l.opt.FlushEvery > 0 && n < l.opt.MaxBatch {
		timer := time.NewTimer(l.opt.FlushEvery)
		select {
		case <-timer.C:
		case <-l.kick:
			timer.Stop()
		}
	}
	l.flush()
}

// Sync flushes everything pending and returns once it is durable.
func (l *Log) Sync() error {
	l.mu.Lock()
	if err := l.gateLocked(); err != nil {
		l.mu.Unlock()
		return err
	}
	if len(l.pend) == 0 && !l.leader {
		l.mu.Unlock()
		// A flush that already took its batch (leader cleared) may still
		// be writing under wmu; wait it out so Sync's promise covers async
		// appends that just left the queue, then surface its error.
		l.wmu.Lock()
		l.wmu.Unlock() //nolint:staticcheck // barrier, not a critical section
		l.mu.Lock()
		err := l.failed
		l.mu.Unlock()
		return err
	}
	done := make(chan error, 1)
	l.pend = append(l.pend, pendingRec{done: done})
	lead := !l.leader
	if lead {
		l.leader = true
	}
	l.mu.Unlock()
	if lead {
		l.flush()
	} else {
		l.kickLeader()
	}
	return <-done
}

func (l *Log) gateLocked() error {
	if l.failed != nil {
		return l.failed
	}
	if l.closed {
		return ErrClosed
	}
	return nil
}

func (l *Log) kickLeader() {
	select {
	case l.kick <- struct{}{}:
	default:
	}
}

// flush is run by the elected leader: it takes the pending batch (in
// arrival order, serialized by wmu so batches land in election order),
// writes it in one Write, fsyncs once, and wakes every waiter.
func (l *Log) flush() {
	l.wmu.Lock()
	l.mu.Lock()
	batch := l.pend
	l.pend = nil
	l.leader = false
	l.mu.Unlock()
	select {
	case <-l.kick: // drop a stale kick meant for this round
	default:
	}
	err := l.writeBatch(batch)
	if err != nil {
		// Wedge before releasing wmu so a concurrent Sync barrier cannot
		// observe the write lock free but the failure not yet recorded.
		l.mu.Lock()
		if l.failed == nil {
			l.failed = err
		}
		l.mu.Unlock()
		l.met.errs.Inc()
	}
	l.wmu.Unlock()
	for _, p := range batch {
		if p.done != nil {
			p.done <- err
		}
	}
}

// writeBatch appends the batch to the active segment (creating one when
// needed) and fsyncs. Caller holds wmu.
func (l *Log) writeBatch(batch []pendingRec) error {
	var buf []byte
	count := 0
	for _, p := range batch {
		if p.frame != nil {
			buf = append(buf, p.frame...)
			count++
		}
	}
	if count == 0 {
		return nil // only Sync markers: prior flushes already synced
	}
	t0 := time.Now()
	if l.f == nil {
		if err := l.createSegmentLocked(); err != nil {
			return err
		}
	}
	if _, err := l.f.Write(buf); err != nil {
		return fmt.Errorf("store: segment write: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("store: segment fsync: %w", err)
	}
	l.size += int64(len(buf))
	l.seq.Add(uint64(count))
	l.met.commits.Inc()
	l.met.walBytes.Add(uint64(len(buf)))
	l.met.batchRecs.Observe(float64(count))
	l.met.commitSec.ObserveSince(t0)
	if l.size >= l.opt.SegmentBytes {
		l.rollLocked()
	}
	return nil
}

// createSegmentLocked starts the segment whose first record is the next
// sequence number. Caller holds wmu. The header rides the first batch's
// fsync.
func (l *Log) createSegmentLocked() error {
	f, err := l.b.Create(segName(l.seq.Load()))
	if err != nil {
		return fmt.Errorf("store: create segment: %w", err)
	}
	hdr := append([]byte(walMagic), 0, 0, 0, 0, 0, 0, 0, 0)
	binary.BigEndian.PutUint64(hdr[len(walMagic):], l.seq.Load())
	if _, err := f.Write(hdr); err != nil {
		_ = f.Close()
		return fmt.Errorf("store: segment header: %w", err)
	}
	l.f = f
	l.size = hdrSize
	l.segCount++
	l.met.segments.Set(int64(l.segCount))
	return nil
}

// rollLocked closes the active segment; the next flush starts a fresh
// one. Caller holds wmu.
func (l *Log) rollLocked() {
	if l.f != nil {
		_ = l.f.Close()
		l.f = nil
		l.size = 0
	}
}

// Close flushes whatever is pending and closes the active segment.
// Idempotent; returns the flush error, if any.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.mu.Unlock()
	err := l.Sync()
	l.mu.Lock()
	l.closed = true
	l.mu.Unlock()
	l.wmu.Lock()
	l.rollLocked()
	l.wmu.Unlock()
	return err
}
