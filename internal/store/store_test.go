package store

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestStoreSnapshotRecoveryAndCompaction(t *testing.T) {
	m := NewMem()
	s, rec, err := Open(m, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Snapshot != nil || len(rec.Records) != 0 {
		t.Fatal("fresh store recovered state")
	}
	for i := 0; i < 40; i++ {
		if err := s.Append(1, []byte(fmt.Sprintf("pre-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Snapshot([]byte("state@40")); err != nil {
		t.Fatal(err)
	}
	// Compaction must have deleted the pre-snapshot segments.
	names, _ := m.List()
	for _, name := range names {
		if strings.HasPrefix(name, "wal-") && name < segName(41) {
			t.Fatalf("segment %s survived compaction behind the snapshot", name)
		}
	}
	for i := 0; i < 7; i++ {
		if err := s.Append(2, []byte(fmt.Sprintf("post-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	_, rec, err = Open(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rec.Snapshot, []byte("state@40")) {
		t.Fatalf("snapshot payload = %q", rec.Snapshot)
	}
	if rec.SnapshotSeq != 41 {
		t.Fatalf("snapshot seq = %d, want 41", rec.SnapshotSeq)
	}
	if len(rec.Records) != 7 {
		t.Fatalf("replayed %d post-snapshot records, want 7", len(rec.Records))
	}
	for i, r := range rec.Records {
		if r.Type != 2 || string(r.Data) != fmt.Sprintf("post-%d", i) {
			t.Fatalf("record %d = %v", i, r)
		}
	}
}

func TestStoreCleanCloseNeedsNoReplay(t *testing.T) {
	m := NewMem()
	s, _, err := Open(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := s.Append(1, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// The owner's clean-shutdown discipline: snapshot, then close.
	if err := s.Snapshot([]byte("final")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	_, rec, err := Open(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Records) != 0 {
		t.Fatalf("clean close still required replaying %d records", len(rec.Records))
	}
	if !bytes.Equal(rec.Snapshot, []byte("final")) {
		t.Fatalf("snapshot = %q", rec.Snapshot)
	}
}

func TestStoreOlderSnapshotWinsWhenNewestIsCorrupt(t *testing.T) {
	m := NewMem()
	s, _, err := Open(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(1, []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := s.Snapshot([]byte("good")); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(1, []byte("b")); err != nil {
		t.Fatal(err)
	}
	s.Close()
	// Plant a corrupt newer snapshot, as a crashed writer might if rename
	// atomicity were ever violated; recovery must fall back, and the
	// records after the good snapshot must still replay.
	f, _ := m.Create(snapName(99))
	f.Write([]byte("garbage that is long enough to parse past the length check"))
	f.Close()
	_, rec, err := Open(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rec.Snapshot, []byte("good")) {
		t.Fatalf("snapshot = %q, want the older good one", rec.Snapshot)
	}
	if len(rec.Records) != 1 || string(rec.Records[0].Data) != "b" {
		t.Fatalf("records = %v, want the one after the good snapshot", rec.Records)
	}
}

func TestStoreSnapshotDueCadence(t *testing.T) {
	m := NewMem()
	s, _, err := Open(m, Options{SnapshotEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := s.Append(1, []byte{1}); err != nil {
			t.Fatal(err)
		}
		if s.SnapshotDue() {
			t.Fatalf("due after %d < 4 records", i+1)
		}
	}
	if err := s.Append(1, []byte{1}); err != nil {
		t.Fatal(err)
	}
	if !s.SnapshotDue() {
		t.Fatal("not due after SnapshotEvery records")
	}
	if err := s.Snapshot(nil); err != nil {
		t.Fatal(err)
	}
	if s.SnapshotDue() {
		t.Fatal("still due right after a snapshot")
	}
	s.Close()
}

func TestStoreFileBackendSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	b, err := NewFileBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	s, _, err := Open(b, Options{FlushEvery: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := s.Append(1, []byte(fmt.Sprintf("disk-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Snapshot([]byte("disk state")); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(2, []byte("tail")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	b2, err := NewFileBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, rec, err := Open(b2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rec.Snapshot, []byte("disk state")) {
		t.Fatalf("snapshot = %q", rec.Snapshot)
	}
	if len(rec.Records) != 1 || string(rec.Records[0].Data) != "tail" {
		t.Fatalf("records = %v", rec.Records)
	}
}

func TestSubBackendIsolatesNamespaces(t *testing.T) {
	m := NewMem()
	a, b := Sub(m, "state"), Sub(m, "ledger")
	la, _, err := OpenLog(a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	lb, _, err := OpenLog(b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := la.Append(1, []byte("A")); err != nil {
		t.Fatal(err)
	}
	if err := lb.Append(1, []byte("B")); err != nil {
		t.Fatal(err)
	}
	la.Close()
	lb.Close()
	_, ra, err := OpenLog(Sub(m, "state"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, rb, err := OpenLog(Sub(m, "ledger"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ra.Records) != 1 || string(ra.Records[0].Data) != "A" {
		t.Fatalf("state namespace replayed %v", ra.Records)
	}
	if len(rb.Records) != 1 || string(rb.Records[0].Data) != "B" {
		t.Fatalf("ledger namespace replayed %v", rb.Records)
	}
}
