package store

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func mustAppend(t *testing.T, l *Log, typ uint8, data []byte) {
	t.Helper()
	if err := l.Append(typ, data); err != nil {
		t.Fatalf("append: %v", err)
	}
}

func TestLogAppendReplayRoundTrip(t *testing.T) {
	m := NewMem()
	l, rec, err := OpenLog(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Records) != 0 {
		t.Fatalf("fresh log replayed %d records", len(rec.Records))
	}
	var want []Record
	for i := 0; i < 100; i++ {
		r := Record{Type: uint8(i%3 + 1), Data: []byte(fmt.Sprintf("record-%03d", i))}
		mustAppend(t, l, r.Type, r.Data)
		want = append(want, r)
	}
	if got := l.NextSeq(); got != 101 {
		t.Fatalf("NextSeq = %d, want 101", got)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, rec, err = OpenLog(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Records) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(rec.Records), len(want))
	}
	for i, r := range rec.Records {
		if r.Type != want[i].Type || !bytes.Equal(r.Data, want[i].Data) {
			t.Fatalf("record %d: got %v, want %v", i, r, want[i])
		}
	}
}

func TestLogSegmentsRollAndStaySequential(t *testing.T) {
	m := NewMem()
	l, _, err := OpenLog(m, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		mustAppend(t, l, 1, bytes.Repeat([]byte{byte(i)}, 32))
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	names, _ := m.List()
	if len(names) < 3 {
		t.Fatalf("want >= 3 segments at SegmentBytes=256, got %v", names)
	}
	l2, rec, err := OpenLog(m, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Records) != 50 {
		t.Fatalf("replayed %d, want 50", len(rec.Records))
	}
	// A reopened log never appends to a recovered segment: the next
	// record starts a fresh one named by its sequence.
	mustAppend(t, l2, 1, []byte("after reopen"))
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := m.ReadFile(segName(51)); err != nil {
		t.Fatalf("expected fresh segment %s after reopen: %v", segName(51), err)
	}
	_, rec, err = OpenLog(m, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Records) != 51 {
		t.Fatalf("replayed %d after reopen-append, want 51", len(rec.Records))
	}
}

func TestLogTornTailTruncated(t *testing.T) {
	m := NewMem()
	l, _, err := OpenLog(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		mustAppend(t, l, 1, []byte(fmt.Sprintf("rec-%d", i)))
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the tail: append half a frame to the (only) segment.
	f, err := m.Append(segName(1))
	if err != nil {
		t.Fatal(err)
	}
	torn := appendFrame(nil, 1, []byte("never committed"))
	if _, err := f.Write(torn[:len(torn)/2]); err != nil {
		t.Fatal(err)
	}
	f.Close()
	_, rec, err := OpenLog(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Records) != 10 {
		t.Fatalf("replayed %d, want the 10 committed", len(rec.Records))
	}
	if rec.TornBytes == 0 {
		t.Fatal("torn tail not reported")
	}
}

func TestLogCorruptMiddleSegmentFailsLoudly(t *testing.T) {
	m := NewMem()
	l, _, err := OpenLog(m, Options{SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		mustAppend(t, l, 1, bytes.Repeat([]byte{byte(i)}, 24))
	}
	l.Close()
	names, _ := m.List()
	if len(names) < 2 {
		t.Fatalf("need >= 2 segments, got %v", names)
	}
	// Flip a byte in the FIRST segment: that is corruption, not a torn
	// tail (only the newest segment can be torn), and must refuse to open.
	data, _ := m.ReadFile(names[0])
	data[len(data)-3] ^= 0xff
	f, _ := m.Create(names[0])
	f.Write(data)
	f.Close()
	if _, _, err := OpenLog(m, Options{}); err == nil {
		t.Fatal("corrupt non-final segment opened silently")
	}
}

func TestLogGroupCommitBatchesConcurrentAppends(t *testing.T) {
	m := NewMem()
	met := NewMetrics(nil)
	l, _, err := OpenLog(m, Options{FlushEvery: 2 * time.Millisecond, Metrics: met})
	if err != nil {
		t.Fatal(err)
	}
	const appenders, per = 8, 25
	var wg sync.WaitGroup
	for a := 0; a < appenders; a++ {
		wg.Add(1)
		go func(a int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := l.Append(1, []byte(fmt.Sprintf("a%d-%d", a, i))); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(a)
	}
	wg.Wait()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	apps, commits := met.appends.Value(), met.commits.Value()
	if apps != appenders*per {
		t.Fatalf("appends = %d, want %d", apps, appenders*per)
	}
	// The whole point of group commit: far fewer fsyncs than appends.
	if commits >= apps {
		t.Fatalf("commits %d not batched below appends %d", commits, apps)
	}
	_, rec, err := OpenLog(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Records) != appenders*per {
		t.Fatalf("replayed %d, want %d", len(rec.Records), appenders*per)
	}
}

func TestLogMaxBatchKicksEarly(t *testing.T) {
	m := NewMem()
	l, _, err := OpenLog(m, Options{FlushEvery: time.Hour, MaxBatch: 4})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func() { done <- l.Append(1, []byte("x")) }()
	}
	for i := 0; i < 8; i++ {
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("append never flushed despite MaxBatch overflow")
		}
	}
	l.Close()
}

func TestLogAppendAsyncDurableAfterSync(t *testing.T) {
	m := NewMem()
	l, _, err := OpenLog(m, Options{FlushEvery: time.Hour, MaxBatch: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		l.AppendAsync(2, []byte{byte(i)})
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	m.Crash() // power loss: only synced bytes survive
	_, rec, err := OpenLog(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Records) != 5 {
		t.Fatalf("replayed %d async records after sync+powerloss, want 5", len(rec.Records))
	}
}

func TestLogClosedAndOversizeErrors(t *testing.T) {
	m := NewMem()
	l, _, err := OpenLog(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(1, make([]byte, MaxRecord+1)); err == nil {
		t.Fatal("oversize record accepted")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal("second close not idempotent:", err)
	}
	if err := l.Append(1, []byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close: %v, want ErrClosed", err)
	}
}
