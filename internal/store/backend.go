// Package store is the durability subsystem: a segmented write-ahead log
// with group commit (batched fsync), CRC-framed records with torn-tail
// tolerance, snapshots of materialized state with log compaction behind
// them, pluggable backends (file, mem), and a fault-injection wrapper
// that simulates torn writes, short writes, fsync failures, and kills at
// arbitrary byte offsets. The auditnet evidence ledger and a
// Participant's durable state (sealed window sequence, trust-on-first-use
// pins, disclosure nonce high-water marks) are both built on it.
package store

import (
	"errors"
	"io"
	"sort"
	"strings"
)

// File is one writable backend file. Writes are sequential; Sync makes
// everything written so far durable.
type File interface {
	io.Writer
	io.Closer
	Sync() error
}

// Backend is a flat namespace of named files — the only filesystem
// surface the WAL and snapshot layers use, and therefore the only thing
// a fault injector has to wrap. Names are slash-separated relative
// paths. Implementations must be safe for concurrent use.
type Backend interface {
	// Create creates (or truncates) name for writing.
	Create(name string) (File, error)
	// Append opens name for appending, creating it when absent.
	Append(name string) (File, error)
	// ReadFile returns the entire contents of name.
	ReadFile(name string) ([]byte, error)
	// List returns every file name in the backend, sorted.
	List() ([]string, error)
	// Remove deletes name.
	Remove(name string) error
	// Rename atomically replaces newname with oldname's contents.
	Rename(oldname, newname string) error
}

// ErrClosed is returned by operations on a closed Log or Store.
var ErrClosed = errors.New("store: closed")

// Sub returns a view of b rooted at dir: every name is transparently
// prefixed with dir+"/", so independent logs (a participant's state
// store and its evidence ledger) can share one backend without their
// segment names colliding.
func Sub(b Backend, dir string) Backend {
	return &subBackend{b: b, prefix: dir + "/"}
}

type subBackend struct {
	b      Backend
	prefix string
}

func (s *subBackend) Create(name string) (File, error) { return s.b.Create(s.prefix + name) }
func (s *subBackend) Append(name string) (File, error) { return s.b.Append(s.prefix + name) }
func (s *subBackend) ReadFile(name string) ([]byte, error) {
	return s.b.ReadFile(s.prefix + name)
}
func (s *subBackend) Remove(name string) error { return s.b.Remove(s.prefix + name) }
func (s *subBackend) Rename(oldname, newname string) error {
	return s.b.Rename(s.prefix+oldname, s.prefix+newname)
}

func (s *subBackend) List() ([]string, error) {
	all, err := s.b.List()
	if err != nil {
		return nil, err
	}
	var out []string
	for _, name := range all {
		if strings.HasPrefix(name, s.prefix) {
			out = append(out, strings.TrimPrefix(name, s.prefix))
		}
	}
	sort.Strings(out)
	return out, nil
}
