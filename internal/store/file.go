package store

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// fileBackend stores files under one root directory on the real
// filesystem. Durability follows the textbook discipline: file contents
// are made durable by File.Sync, and the directory entry of a created or
// renamed file is made durable by fsyncing its parent directory (an
// fsync on the file alone does not cover its own dir entry).
type fileBackend struct {
	root string
}

// NewFileBackend opens (creating if needed) a backend rooted at dir.
func NewFileBackend(dir string) (Backend, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty backend dir")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return &fileBackend{root: dir}, nil
}

func (b *fileBackend) path(name string) string {
	return filepath.Join(b.root, filepath.FromSlash(name))
}

// syncDir best-effort-fsyncs the directory holding path, making its
// entries durable. Errors are ignored: not every platform supports
// directory fsync, and the file-content sync already happened.
func syncDir(path string) {
	d, err := os.Open(filepath.Dir(path))
	if err != nil {
		return
	}
	_ = d.Sync()
	_ = d.Close()
}

type osFile struct {
	f    *os.File
	path string
}

func (f *osFile) Write(p []byte) (int, error) { return f.f.Write(p) }
func (f *osFile) Close() error                { return f.f.Close() }
func (f *osFile) Sync() error                 { return f.f.Sync() }

func (b *fileBackend) open(name string, flag int) (File, error) {
	path := b.path(name)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	f, err := os.OpenFile(path, flag, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	syncDir(path)
	return &osFile{f: f, path: path}, nil
}

func (b *fileBackend) Create(name string) (File, error) {
	return b.open(name, os.O_RDWR|os.O_CREATE|os.O_TRUNC)
}

func (b *fileBackend) Append(name string) (File, error) {
	return b.open(name, os.O_WRONLY|os.O_CREATE|os.O_APPEND)
}

func (b *fileBackend) ReadFile(name string) ([]byte, error) {
	return os.ReadFile(b.path(name))
}

func (b *fileBackend) List() ([]string, error) {
	var out []string
	err := filepath.WalkDir(b.root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			return nil
		}
		rel, err := filepath.Rel(b.root, path)
		if err != nil {
			return err
		}
		out = append(out, strings.ReplaceAll(rel, string(filepath.Separator), "/"))
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	sort.Strings(out)
	return out, nil
}

func (b *fileBackend) Remove(name string) error {
	return os.Remove(b.path(name))
}

func (b *fileBackend) Rename(oldname, newname string) error {
	to := b.path(newname)
	if err := os.MkdirAll(filepath.Dir(to), 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(b.path(oldname), to); err != nil {
		return err
	}
	syncDir(to)
	return nil
}
