package store

import (
	"bytes"
	"fmt"
	"testing"
)

// FuzzWALRecovery corrupts or truncates a WAL at arbitrary byte offsets
// and asserts the three recovery invariants: no record that was not
// fully committed is ever returned, no committed record before the
// damage is dropped, and recovery never panics. The fuzzer controls the
// damage point, the damage kind, and how the log was populated.
func FuzzWALRecovery(f *testing.F) {
	f.Add(uint16(0), uint8(0), uint8(5))
	f.Add(uint16(40), uint8(1), uint8(12))
	f.Add(uint16(999), uint8(2), uint8(1))
	f.Add(uint16(17), uint8(3), uint8(30))
	f.Fuzz(func(t *testing.T, off uint16, kind uint8, count uint8) {
		m := NewMem()
		l, _, err := OpenLog(m, Options{})
		if err != nil {
			t.Fatal(err)
		}
		want := make([][]byte, 0, int(count))
		for i := 0; i < int(count); i++ {
			data := []byte(fmt.Sprintf("committed-%03d", i))
			if err := l.Append(uint8(i%7+1), data); err != nil {
				t.Fatal(err)
			}
			want = append(want, data)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		data, err := m.ReadFile(segName(1))
		if err != nil {
			t.Skip("no segment (zero records)")
		}
		offset := int(off) % (len(data) + 1)
		switch kind % 3 {
		case 0: // truncate at offset
			data = data[:offset]
		case 1: // flip a byte
			if offset == len(data) {
				t.Skip("flip past end is a no-op")
			}
			data[offset] ^= 0x5a
		case 2: // truncate, then append garbage
			data = append(data[:offset], 0xde, 0xad, 0xbe, 0xef)
		}
		w, err := m.Create(segName(1))
		if err != nil {
			t.Fatal(err)
		}
		w.Write(data)
		w.Close()

		_, rec, err := OpenLog(m, Options{}) // must not panic
		if err != nil {
			// A single segment is always "newest", so damage reads as a
			// torn tail and recovery must tolerate it. Only a mangled
			// header may refuse the open.
			if offset >= hdrSize && kind%3 != 0 {
				// Corruption strictly inside the record area of the last
				// segment must be tolerated as a torn tail.
				t.Fatalf("recovery refused a torn last segment: %v", err)
			}
			return
		}
		// Never fabricate: every recovered record must be one that was
		// committed, in order, as a prefix of the appends.
		if len(rec.Records) > len(want) {
			t.Fatalf("recovered %d records, only %d were committed", len(rec.Records), len(want))
		}
		for i, r := range rec.Records {
			if !bytes.Equal(r.Data, want[i]) {
				t.Fatalf("record %d = %q, want %q: recovery fabricated or reordered data", i, r.Data, want[i])
			}
		}
		// Never drop: every damage kind here (truncation, byte flip,
		// garbage tail) leaves frames wholly before the damage offset
		// intact on disk, so recovery must return at least those.
		intact := 0
		pos := hdrSize
		for i := range want {
			fl := len(appendFrame(nil, uint8(i%7+1), want[i]))
			if pos+fl > offset {
				break
			}
			pos += fl
			intact++
		}
		if len(rec.Records) < intact {
			t.Fatalf("recovered %d records but %d frames lie wholly before the damage at offset %d", len(rec.Records), intact, offset)
		}
	})
}
