package store

import "pvr/internal/obs"

// Metrics is the subsystem's pvr_store_* family set. A nil registry
// yields working detached handles, so every code path can count
// unconditionally; one Metrics value may be shared by several logs in
// the same registry (a participant's state store and its ledger).
type Metrics struct {
	appends   *obs.Counter
	commits   *obs.Counter
	walBytes  *obs.Counter
	batchRecs *obs.Histogram
	commitSec *obs.Histogram
	segments  *obs.Gauge
	snapshots *obs.Counter
	compacted *obs.Counter
	recSec    *obs.Histogram
	recRecs   *obs.Counter
	tornTails *obs.Counter
	errs      *obs.Counter
}

// NewMetrics registers the pvr_store_* families into r (nil for
// detached handles).
func NewMetrics(r *obs.Registry) *Metrics {
	return &Metrics{
		appends:   obs.NewCounter(r, "pvr_store_appends_total", "WAL records appended (sync and async)"),
		commits:   obs.NewCounter(r, "pvr_store_commits_total", "group commits — one fsync each, however many records rode it"),
		walBytes:  obs.NewCounter(r, "pvr_store_wal_bytes_total", "bytes written to WAL segments"),
		batchRecs: obs.NewHistogram(r, "pvr_store_commit_batch_records", "records per group commit", obs.SizeBuckets(1<<12)),
		commitSec: obs.NewHistogram(r, "pvr_store_commit_seconds", "group-commit latency: batch write + fsync", nil),
		segments:  obs.NewGauge(r, "pvr_store_segments", "live WAL segment files"),
		snapshots: obs.NewCounter(r, "pvr_store_snapshots_total", "state snapshots written"),
		compacted: obs.NewCounter(r, "pvr_store_compacted_segments_total", "WAL segments deleted behind snapshots"),
		recSec:    obs.NewHistogram(r, "pvr_store_recovery_seconds", "open-time recovery: snapshot load + WAL replay", nil),
		recRecs:   obs.NewCounter(r, "pvr_store_recovered_records_total", "WAL records replayed at open"),
		tornTails: obs.NewCounter(r, "pvr_store_torn_tails_total", "torn WAL tails truncated at recovery"),
		errs:      obs.NewCounter(r, "pvr_store_errors_total", "WAL flush and snapshot errors"),
	}
}
