package store

import (
	"errors"
	"fmt"
	"testing"
)

// appendUntilCrash appends records until the injected kill trips,
// returning how many were acknowledged as durable.
func appendUntilCrash(t *testing.T, l *Log, limit int) int {
	t.Helper()
	acked := 0
	for i := 0; i < limit; i++ {
		if err := l.Append(1, []byte(fmt.Sprintf("rec-%04d", i))); err != nil {
			if !errors.Is(err, ErrCrashed) {
				t.Fatalf("append failed with %v, want ErrCrashed", err)
			}
			return acked
		}
		acked++
	}
	t.Fatalf("crash never tripped within %d appends", limit)
	return acked
}

func TestFaultKillAtArbitraryOffsetNeverLosesAckedRecords(t *testing.T) {
	// Sweep the kill point across record boundaries: wherever the write
	// is cut, every acknowledged (fsynced) record must replay, and
	// nothing fabricated may appear.
	for offset := int64(0); offset < 600; offset += 37 {
		m := NewMem()
		fault := NewFault()
		l, _, err := OpenLog(fault.Bind(m), Options{})
		if err != nil {
			t.Fatal(err)
		}
		fault.CrashAfterBytes(offset)
		acked := appendUntilCrash(t, l, 1000)
		if !fault.Crashed() {
			t.Fatal("fault reports not crashed")
		}
		// "Restart": reopen the underlying backend directly.
		_, rec, err := OpenLog(m, Options{})
		if err != nil {
			t.Fatalf("offset %d: recovery failed: %v", offset, err)
		}
		if len(rec.Records) < acked {
			t.Fatalf("offset %d: %d acked records, only %d recovered", offset, acked, len(rec.Records))
		}
		// At most the one in-flight record beyond the acked ones may
		// surface (its frame may have fully landed before the cut).
		if len(rec.Records) > acked+1 {
			t.Fatalf("offset %d: recovered %d records, only %d were ever appended before the crash",
				offset, len(rec.Records), acked+1)
		}
		for i, r := range rec.Records {
			if want := fmt.Sprintf("rec-%04d", i); string(r.Data) != want {
				t.Fatalf("offset %d: record %d = %q, want %q", offset, i, r.Data, want)
			}
		}
	}
}

func TestFaultPowerLossDropsUnsyncedTail(t *testing.T) {
	m := NewMem()
	l, _, err := OpenLog(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(1, []byte("durable")); err != nil {
		t.Fatal(err)
	}
	// A complete, CRC-valid frame that reached the OS but was never
	// fsynced — exactly what a power cut leaves behind.
	f, err := m.Append(segName(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(appendFrame(nil, 1, []byte("in page cache only"))); err != nil {
		t.Fatal(err)
	}
	f.Close()
	m.Crash() // power loss before any sync of the tail
	_, rec, err := OpenLog(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Records) != 1 || string(rec.Records[0].Data) != "durable" {
		t.Fatalf("recovered %v, want exactly the synced record", rec.Records)
	}
}

func TestFaultTornWriteRecoversCommittedPrefix(t *testing.T) {
	m := NewMem()
	fault := NewFault()
	l, _, err := OpenLog(fault.Bind(m), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := l.Append(1, []byte(fmt.Sprintf("ok-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	fault.TearNextWrite()
	if err := l.Append(1, []byte("torn away")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("torn append returned %v, want ErrCrashed", err)
	}
	_, rec, err := OpenLog(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Records) != 5 {
		t.Fatalf("recovered %d records, want the 5 committed", len(rec.Records))
	}
	if rec.TornBytes == 0 {
		t.Fatal("torn tail not reported")
	}
}

func TestFaultShortWriteWedgesButDoesNotKill(t *testing.T) {
	m := NewMem()
	fault := NewFault()
	l, _, err := OpenLog(fault.Bind(m), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(1, []byte("before")); err != nil {
		t.Fatal(err)
	}
	fault.ShortNextWrite()
	if err := l.Append(1, []byte("short")); err == nil {
		t.Fatal("short write not surfaced")
	}
	// The log wedges (durability is unknown past the failure) but the
	// backend is alive: a reopen recovers the committed prefix.
	if err := l.Append(1, []byte("after")); err == nil {
		t.Fatal("append accepted on a wedged log")
	}
	if fault.Crashed() {
		t.Fatal("short write must not read as a kill")
	}
	_, rec, err := OpenLog(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Records) != 1 || string(rec.Records[0].Data) != "before" {
		t.Fatalf("recovered %v", rec.Records)
	}
}

func TestFaultFsyncFailureWedgesTheLog(t *testing.T) {
	m := NewMem()
	fault := NewFault()
	l, _, err := OpenLog(fault.Bind(m), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(1, []byte("before")); err != nil {
		t.Fatal(err)
	}
	fault.FailSyncs(true)
	if err := l.Append(1, []byte("unsynced")); !errors.Is(err, ErrInjectedSync) {
		t.Fatalf("append under failing fsync returned %v", err)
	}
	// fsync failure means durability is unknowable; the log must refuse
	// further work rather than ack records it cannot promise.
	fault.FailSyncs(false)
	if err := l.Append(1, []byte("after")); err == nil {
		t.Fatal("log accepted appends after an fsync failure")
	}
	_, rec, err := OpenLog(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Records) < 1 || string(rec.Records[0].Data) != "before" {
		t.Fatalf("recovered %v", rec.Records)
	}
}

func TestFaultSnapshotCrashKeepsOldSnapshot(t *testing.T) {
	m := NewMem()
	fault := NewFault()
	s, _, err := Open(fault.Bind(m), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(1, []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := s.Snapshot([]byte("old")); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(1, []byte("b")); err != nil {
		t.Fatal(err)
	}
	fault.CrashAfterBytes(4) // dies inside the snapshot temp-file write
	if err := s.Snapshot([]byte("new, never durable")); err == nil {
		t.Fatal("snapshot survived the injected crash")
	}
	_, rec, err := Open(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if string(rec.Snapshot) != "old" {
		t.Fatalf("snapshot = %q, want the old durable one", rec.Snapshot)
	}
	if len(rec.Records) != 1 || string(rec.Records[0].Data) != "b" {
		t.Fatalf("records = %v", rec.Records)
	}
}
