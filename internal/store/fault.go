package store

import (
	"errors"
	"sync"
)

// Fault errors, distinguishable so tests can assert which injected
// failure a path actually hit.
var (
	// ErrCrashed is returned by every operation after a simulated kill:
	// the process that owned this backend is gone, and only a reopen of
	// the underlying backend (a "restart") recovers.
	ErrCrashed = errors.New("store: simulated crash")
	// ErrInjectedSync is the injected fsync failure.
	ErrInjectedSync = errors.New("store: injected fsync failure")
	// ErrInjectedShortWrite is the injected transient short write.
	ErrInjectedShortWrite = errors.New("store: injected short write")
)

// Fault is an error- and crash-injecting Backend wrapper: torn writes
// (half the bytes land, then the process dies), short writes (half the
// bytes land, the write errors, the process lives), fsync failures, and
// kill-at-arbitrary-byte-offset. After a crash trips, every operation
// returns ErrCrashed until the scenario reopens the underlying backend
// directly — exactly a process restart. Safe for concurrent use.
type Fault struct {
	mu          sync.Mutex
	inner       Backend
	crashed     bool
	crashBudget int64 // bytes until simulated kill; <0 = disarmed
	armedBudget bool
	syncFail    bool
	tornNext    bool
	shortNext   bool
}

// NewFault returns a fault injector with no faults armed; Bind attaches
// it to the backend it wraps.
func NewFault() *Fault { return &Fault{crashBudget: -1} }

// Bind attaches the injector to inner and returns the wrapped backend.
// Rebinding (e.g. to the same Mem after a simulated restart) clears the
// crashed state but keeps armed faults.
func (f *Fault) Bind(inner Backend) Backend {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.inner = inner
	f.crashed = false
	return f
}

// CrashAfterBytes arms a kill n written bytes from now: the write that
// crosses the budget persists only the bytes that fit, then the backend
// behaves dead (ErrCrashed everywhere). n = 0 kills on the next write.
func (f *Fault) CrashAfterBytes(n int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.crashBudget, f.armedBudget = n, true
}

// FailSyncs makes every subsequent Sync return ErrInjectedSync (until
// called again with false).
func (f *Fault) FailSyncs(fail bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.syncFail = fail
}

// TearNextWrite makes the next write persist only its first half and
// then kill the backend — a torn write.
func (f *Fault) TearNextWrite() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.tornNext = true
}

// ShortNextWrite makes the next write persist only its first half and
// return ErrInjectedShortWrite, with the backend staying alive.
func (f *Fault) ShortNextWrite() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.shortNext = true
}

// Crashed reports whether a simulated kill has tripped.
func (f *Fault) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// gate returns the inner backend, or ErrCrashed after a kill.
func (f *Fault) gate() (Backend, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.inner == nil {
		return nil, errors.New("store: fault injector not bound to a backend")
	}
	if f.crashed {
		return nil, ErrCrashed
	}
	return f.inner, nil
}

func (f *Fault) Create(name string) (File, error) {
	inner, err := f.gate()
	if err != nil {
		return nil, err
	}
	file, err := inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{f: f, file: file}, nil
}

func (f *Fault) Append(name string) (File, error) {
	inner, err := f.gate()
	if err != nil {
		return nil, err
	}
	file, err := inner.Append(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{f: f, file: file}, nil
}

func (f *Fault) ReadFile(name string) ([]byte, error) {
	inner, err := f.gate()
	if err != nil {
		return nil, err
	}
	return inner.ReadFile(name)
}

func (f *Fault) List() ([]string, error) {
	inner, err := f.gate()
	if err != nil {
		return nil, err
	}
	return inner.List()
}

func (f *Fault) Remove(name string) error {
	inner, err := f.gate()
	if err != nil {
		return err
	}
	return inner.Remove(name)
}

func (f *Fault) Rename(oldname, newname string) error {
	inner, err := f.gate()
	if err != nil {
		return err
	}
	return inner.Rename(oldname, newname)
}

type faultFile struct {
	f    *Fault
	file File
}

// plan decides, under the injector's lock, how many of n bytes the next
// write may persist and which error (if any) follows.
func (ff *faultFile) plan(n int) (persist int, err error) {
	f := ff.f
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return 0, ErrCrashed
	}
	if f.tornNext {
		f.tornNext = false
		f.crashed = true
		return n / 2, ErrCrashed
	}
	if f.shortNext {
		f.shortNext = false
		return n / 2, ErrInjectedShortWrite
	}
	if f.armedBudget {
		if int64(n) > f.crashBudget {
			persist = int(f.crashBudget)
			f.crashBudget, f.armedBudget = -1, false
			f.crashed = true
			return persist, ErrCrashed
		}
		f.crashBudget -= int64(n)
	}
	return n, nil
}

func (ff *faultFile) Write(p []byte) (int, error) {
	persist, ferr := ff.plan(len(p))
	n := 0
	if persist > 0 {
		var err error
		n, err = ff.file.Write(p[:persist])
		if err != nil {
			return n, err
		}
	}
	if ferr != nil {
		return n, ferr
	}
	return n, nil
}

func (ff *faultFile) Sync() error {
	f := ff.f
	f.mu.Lock()
	crashed, syncFail := f.crashed, f.syncFail
	f.mu.Unlock()
	if crashed {
		return ErrCrashed
	}
	if syncFail {
		return ErrInjectedSync
	}
	return ff.file.Sync()
}

func (ff *faultFile) Close() error { return ff.file.Close() }
