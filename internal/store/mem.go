package store

import (
	"fmt"
	"io/fs"
	"sort"
	"sync"
)

// Mem is an in-memory Backend. Contents survive Log/Store reopens for as
// long as the Mem value is shared, which is what lets tests and the
// netsim fault matrix model a process restart without touching disk. It
// also models durability honestly: each file tracks how many of its
// bytes have been Synced, and Crash reverts every file to that durable
// prefix — the power-loss (as opposed to process-kill) failure mode.
type Mem struct {
	mu    sync.Mutex
	files map[string]*memData
}

type memData struct {
	data    []byte
	durable int
}

// NewMem returns an empty in-memory backend.
func NewMem() *Mem {
	return &Mem{files: make(map[string]*memData)}
}

// Crash simulates power loss: every file reverts to its last synced
// length, and files never synced disappear entirely.
func (m *Mem) Crash() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for name, f := range m.files {
		if f.durable == 0 {
			delete(m.files, name)
			continue
		}
		f.data = f.data[:f.durable]
	}
}

type memFile struct {
	m    *Mem
	name string

	mu     sync.Mutex
	closed bool
}

func (f *memFile) Write(p []byte) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return 0, fmt.Errorf("store: write to closed mem file %s", f.name)
	}
	f.m.mu.Lock()
	defer f.m.mu.Unlock()
	d, ok := f.m.files[f.name]
	if !ok {
		return 0, fmt.Errorf("store: mem file %s removed under an open handle", f.name)
	}
	d.data = append(d.data, p...)
	return len(p), nil
}

func (f *memFile) Sync() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return fmt.Errorf("store: sync of closed mem file %s", f.name)
	}
	f.m.mu.Lock()
	defer f.m.mu.Unlock()
	if d, ok := f.m.files[f.name]; ok {
		d.durable = len(d.data)
	}
	return nil
}

func (f *memFile) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.closed = true
	return nil
}

func (m *Mem) Create(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.files[name] = &memData{}
	return &memFile{m: m, name: name}, nil
}

func (m *Mem) Append(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[name]; !ok {
		m.files[name] = &memData{}
	}
	return &memFile{m: m, name: name}, nil
}

func (m *Mem) ReadFile(name string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	d, ok := m.files[name]
	if !ok {
		return nil, &fs.PathError{Op: "open", Path: name, Err: fs.ErrNotExist}
	}
	return append([]byte(nil), d.data...), nil
}

func (m *Mem) List() ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.files))
	for name := range m.files {
		out = append(out, name)
	}
	sort.Strings(out)
	return out, nil
}

func (m *Mem) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[name]; !ok {
		return &fs.PathError{Op: "remove", Path: name, Err: fs.ErrNotExist}
	}
	delete(m.files, name)
	return nil
}

func (m *Mem) Rename(oldname, newname string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	d, ok := m.files[oldname]
	if !ok {
		return &fs.PathError{Op: "rename", Path: oldname, Err: fs.ErrNotExist}
	}
	delete(m.files, oldname)
	m.files[newname] = d
	return nil
}
