package store

import (
	"fmt"
	"testing"
)

// The baseline every durability argument is made against: one fsync per
// record, single appender — the discipline the evidence ledger used
// before it was rebased on the group-commit WAL.
func BenchmarkWALAppendFsyncPerRecord(b *testing.B) {
	be, err := NewFileBackend(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	l, _, err := OpenLog(be, Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	payload := make([]byte, 128)
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := l.Append(1, payload); err != nil {
			b.Fatal(err)
		}
	}
}

// Group commit under concurrent appenders: while the leader's fsync is
// in flight, every arriving record queues and rides the next one.
func BenchmarkWALAppendGroupCommit(b *testing.B) {
	for _, par := range []int{8, 32} {
		b.Run(fmt.Sprintf("appenders-%d", par), func(b *testing.B) {
			be, err := NewFileBackend(b.TempDir())
			if err != nil {
				b.Fatal(err)
			}
			l, _, err := OpenLog(be, Options{})
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			payload := make([]byte, 128)
			b.SetBytes(int64(len(payload)))
			b.SetParallelism(par)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if err := l.Append(1, payload); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

// Recovery cost as a function of log size: open-time scan + replay.
func BenchmarkWALRecovery(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		b.Run(fmt.Sprintf("records-%d", n), func(b *testing.B) {
			m := NewMem()
			l, _, err := OpenLog(m, Options{FlushEvery: 0, MaxBatch: 256})
			if err != nil {
				b.Fatal(err)
			}
			payload := make([]byte, 128)
			for i := 0; i < n; i++ {
				l.AppendAsync(1, payload)
			}
			if err := l.Close(); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, rec, err := OpenLog(m, Options{})
				if err != nil {
					b.Fatal(err)
				}
				if len(rec.Records) != n {
					b.Fatalf("recovered %d, want %d", len(rec.Records), n)
				}
			}
		})
	}
}
