package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Store is a Log plus snapshots and compaction: the owner periodically
// serializes its materialized state and calls Snapshot, which makes the
// snapshot durable (temp file, fsync, atomic rename), rolls the active
// segment, and deletes every segment and older snapshot the new one
// covers. Open recovers the latest durable snapshot and replays only
// the records after it. Safe for concurrent use.
//
// Snapshot files are snap-%016x.snap, named and stamped with the
// sequence number they cover up to (exclusive):
//
//	snapMagic | u64 seq | u32 length | payload | u32 CRC-32C(payload)
//
// A crash at any point leaves either the old snapshot or the new one
// durable, never neither: the temp file is invisible to recovery until
// the rename, and compaction runs only after the rename is on disk.
type Store struct {
	log *Log
	b   Backend
	met *Metrics

	// sinceSnap counts records appended since the last snapshot; the
	// owner polls SnapshotDue at its own cadence.
	sinceSnap atomic.Int64

	// snapMu serializes snapshots against each other and Close.
	snapMu sync.Mutex
	closed bool
}

// Open opens (creating if needed) a store on b: the latest durable
// snapshot is loaded, the WAL after it is replayed, and the returned
// Recovery carries both for the owner to fold together.
func Open(b Backend, opt Options) (*Store, *Recovery, error) {
	t0 := time.Now()
	opt = opt.withDefaults()
	names, err := b.List()
	if err != nil {
		return nil, nil, fmt.Errorf("store: list: %w", err)
	}
	// Newest durable snapshot wins; torn or corrupt ones (a crash during
	// the temp-file write never renames, but a corrupt backend is still
	// handled) are skipped in favor of the next older. Leftover temp
	// files are swept.
	var (
		snapPayload []byte
		snapSeq     uint64
	)
	var snaps []string
	for _, name := range names {
		if strings.HasSuffix(name, ".tmp") {
			_ = b.Remove(name)
			continue
		}
		var s uint64
		if n, err := fmt.Sscanf(name, "snap-%016x.snap", &s); err == nil && n == 1 && name == snapName(s) {
			snaps = append(snaps, name)
		}
	}
	for i := len(snaps) - 1; i >= 0; i-- {
		data, err := b.ReadFile(snaps[i])
		if err != nil {
			continue
		}
		payload, seq, err := parseSnapshot(data)
		if err != nil {
			continue
		}
		snapPayload, snapSeq = payload, seq
		break
	}
	log, rec, err := openLog(b, opt, snapSeq)
	if err != nil {
		return nil, nil, err
	}
	rec.Snapshot, rec.SnapshotSeq = snapPayload, snapSeq
	rec.Elapsed = time.Since(t0)
	log.met.recSec.Observe(rec.Elapsed.Seconds())
	s := &Store{log: log, b: b, met: log.met}
	s.sinceSnap.Store(int64(len(rec.Records)))
	return s, rec, nil
}

func parseSnapshot(data []byte) ([]byte, uint64, error) {
	if len(data) < len(snapMagic)+8+4+4 {
		return nil, 0, fmt.Errorf("store: snapshot truncated")
	}
	if string(data[:len(snapMagic)]) != snapMagic {
		return nil, 0, fmt.Errorf("store: bad snapshot magic")
	}
	seq := binary.BigEndian.Uint64(data[len(snapMagic):])
	n := int(binary.BigEndian.Uint32(data[len(snapMagic)+8:]))
	body := data[len(snapMagic)+12:]
	if len(body) != n+4 {
		return nil, 0, fmt.Errorf("store: snapshot length mismatch")
	}
	payload := body[:n]
	if crc32.Checksum(payload, crcTable) != binary.BigEndian.Uint32(body[n:]) {
		return nil, 0, fmt.Errorf("store: snapshot CRC mismatch")
	}
	return append([]byte(nil), payload...), seq, nil
}

// Append durably appends one record (see Log.Append).
func (s *Store) Append(t uint8, data []byte) error {
	err := s.log.Append(t, data)
	if err == nil {
		s.sinceSnap.Add(1)
	}
	return err
}

// AppendAsync enqueues a record without waiting (see Log.AppendAsync).
func (s *Store) AppendAsync(t uint8, data []byte) {
	s.log.AppendAsync(t, data)
	s.sinceSnap.Add(1)
}

// Sync flushes everything pending.
func (s *Store) Sync() error { return s.log.Sync() }

// SnapshotDue reports whether SnapshotEvery records have accumulated
// since the last snapshot.
func (s *Store) SnapshotDue() bool {
	return s.sinceSnap.Load() >= int64(s.log.opt.SnapshotEvery)
}

// Snapshot makes state durable and compacts the WAL behind it: every
// record appended before this call is superseded by the snapshot, and
// the segments holding them are deleted. Appends that race this call
// simply land after the boundary and survive replay.
func (s *Store) Snapshot(state []byte) error {
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if err := s.log.Sync(); err != nil {
		return err
	}
	// Freeze flushes so the boundary sequence is exact: pending appends
	// queue behind wmu and commit after the snapshot, with seq >= boundary.
	l := s.log
	l.wmu.Lock()
	defer l.wmu.Unlock()
	seq := l.seq.Load()
	final, tmp := snapName(seq), snapName(seq)+".tmp"
	buf := append([]byte(snapMagic), 0, 0, 0, 0, 0, 0, 0, 0)
	binary.BigEndian.PutUint64(buf[len(snapMagic):], seq)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(state)))
	buf = append(buf, state...)
	buf = binary.BigEndian.AppendUint32(buf, crc32.Checksum(state, crcTable))
	f, err := s.b.Create(tmp)
	if err != nil {
		s.met.errs.Inc()
		return fmt.Errorf("store: snapshot create: %w", err)
	}
	if _, err := f.Write(buf); err != nil {
		_ = f.Close()
		s.met.errs.Inc()
		return fmt.Errorf("store: snapshot write: %w", err)
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		s.met.errs.Inc()
		return fmt.Errorf("store: snapshot fsync: %w", err)
	}
	if err := f.Close(); err != nil {
		s.met.errs.Inc()
		return fmt.Errorf("store: snapshot close: %w", err)
	}
	if err := s.b.Rename(tmp, final); err != nil {
		s.met.errs.Inc()
		return fmt.Errorf("store: snapshot rename: %w", err)
	}
	s.met.snapshots.Inc()
	// The snapshot is durable; everything before seq is dead weight.
	// Roll the active segment so it is deletable too, then sweep.
	l.rollLocked()
	names, err := s.b.List()
	if err != nil {
		return nil
	}
	var compacted uint64
	for _, name := range names {
		var old uint64
		if n, err := fmt.Sscanf(name, "wal-%016x.log", &old); err == nil && n == 1 && name == segName(old) && old < seq {
			if s.b.Remove(name) == nil {
				compacted++
				l.segCount--
			}
		}
		if n, err := fmt.Sscanf(name, "snap-%016x.snap", &old); err == nil && n == 1 && name == snapName(old) && old < seq {
			_ = s.b.Remove(name)
		}
	}
	l.met.segments.Set(int64(l.segCount))
	s.met.compacted.Add(compacted)
	s.sinceSnap.Store(0)
	return nil
}

// Log exposes the underlying write-ahead log.
func (s *Store) Log() *Log { return s.log }

// Close flushes and closes the log. The owner snapshots first when it
// wants a replay-free next boot; Close itself never discards records.
func (s *Store) Close() error {
	s.snapMu.Lock()
	s.closed = true
	s.snapMu.Unlock()
	return s.log.Close()
}
