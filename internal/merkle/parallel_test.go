package merkle

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"testing"
)

// refBatchRoot is an independent, deliberately naive reimplementation
// of the batch-tree construction; the optimized NewBatch must produce
// bit-identical roots for every size, including non-powers of two that
// exercise the padding rule.
func refBatchRoot(msgs [][]byte) Root {
	level := make([][HashSize]byte, len(msgs))
	for i, m := range msgs {
		h := sha256.New()
		h.Write([]byte{tagLeaf})
		var ib [4]byte
		binary.BigEndian.PutUint32(ib[:], uint32(i))
		h.Write(ib[:])
		h.Write(m)
		h.Sum(level[i][:0])
	}
	for len(level)&(len(level)-1) != 0 {
		level = append(level, level[len(level)-1])
	}
	for len(level) > 1 {
		next := make([][HashSize]byte, len(level)/2)
		for i := range next {
			h := sha256.New()
			h.Write([]byte{tagInner})
			h.Write(level[2*i][:])
			h.Write(level[2*i+1][:])
			h.Sum(next[i][:0])
		}
		level = next
	}
	return Root(level[0])
}

func TestNewBatchMatchesReferenceRoots(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8, 17, 100, 513, 1000, 2048} {
		ms := make([][]byte, n)
		for i := range ms {
			ms[i] = []byte(fmt.Sprintf("leaf payload %d with some body", i))
		}
		b, err := NewBatch(ms)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := b.Root(), refBatchRoot(ms); got != want {
			t.Fatalf("n=%d: optimized root %x != reference %x", n, got, want)
		}
		// Every index must still prove against the flat-allocated levels.
		for _, i := range []int{0, n / 2, n - 1} {
			p, err := b.Prove(i)
			if err != nil {
				t.Fatal(err)
			}
			if err := VerifyBatch(b.Root(), ms[i], p); err != nil {
				t.Fatalf("n=%d i=%d: %v", n, i, err)
			}
		}
	}
}

func BenchmarkNewBatch1000(b *testing.B) {
	ms := make([][]byte, 1000)
	for i := range ms {
		ms[i] = []byte(fmt.Sprintf("commitment leaf %d abcdefghijklmnopqrstuvwxyz0123456789", i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewBatch(ms); err != nil {
			b.Fatal(err)
		}
	}
}
