package merkle

import (
	"fmt"
	"testing"
	"testing/quick"
)

func msgs(n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = []byte(fmt.Sprintf("update-%d", i))
	}
	return out
}

func TestBatchProveVerifyAll(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 16, 33, 100} {
		ms := msgs(n)
		b, err := NewBatch(ms)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if b.Len() != n {
			t.Fatalf("n=%d: Len=%d", n, b.Len())
		}
		root := b.Root()
		for i := 0; i < n; i++ {
			p, err := b.Prove(i)
			if err != nil {
				t.Fatalf("n=%d i=%d: %v", n, i, err)
			}
			if err := VerifyBatch(root, ms[i], p); err != nil {
				t.Errorf("n=%d i=%d: %v", n, i, err)
			}
		}
	}
}

func TestBatchRejects(t *testing.T) {
	if _, err := NewBatch(nil); err != ErrEmptyTree {
		t.Errorf("empty batch: %v", err)
	}
	ms := msgs(8)
	b, err := NewBatch(ms)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Prove(-1); err == nil {
		t.Error("negative index accepted")
	}
	if _, err := b.Prove(8); err == nil {
		t.Error("out-of-range index accepted")
	}
	root := b.Root()
	p, err := b.Prove(3)
	if err != nil {
		t.Fatal(err)
	}
	// Wrong message.
	if VerifyBatch(root, []byte("other"), p) == nil {
		t.Error("wrong message accepted")
	}
	// Same message claimed at a different index fails: index is in the leaf.
	bad := *p
	bad.Index = 4
	if VerifyBatch(root, ms[3], &bad) == nil {
		t.Error("index substitution accepted")
	}
	// Duplicate message at two indexes still position-bound.
	dup, err := NewBatch([][]byte{[]byte("same"), []byte("same")})
	if err != nil {
		t.Fatal(err)
	}
	p0, err := dup.Prove(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyBatch(dup.Root(), []byte("same"), p0); err != nil {
		t.Errorf("dup proof rejected: %v", err)
	}
}

func TestBatchPaddingNotProvable(t *testing.T) {
	// n=5 pads to 8; the padded leaves must not be addressable.
	b, err := NewBatch(msgs(5))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Prove(5); err == nil {
		t.Error("padding leaf provable")
	}
}

func TestBatchProofMarshalRoundTrip(t *testing.T) {
	b, err := NewBatch(msgs(20))
	if err != nil {
		t.Fatal(err)
	}
	p, err := b.Prove(13)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := p.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var q BatchProof
	if err := q.UnmarshalBinary(enc); err != nil {
		t.Fatal(err)
	}
	if err := VerifyBatch(b.Root(), msgs(20)[13], &q); err != nil {
		t.Errorf("round-tripped proof rejected: %v", err)
	}
	var bad BatchProof
	if err := bad.UnmarshalBinary(enc[:5]); err == nil {
		t.Error("truncation accepted")
	}
	if err := bad.UnmarshalBinary(append(enc, 1)); err == nil {
		t.Error("trailing byte accepted")
	}
}

func TestQuickBatchEveryIndexVerifies(t *testing.T) {
	f := func(seed uint8) bool {
		n := int(seed%60) + 1
		ms := msgs(n)
		b, err := NewBatch(ms)
		if err != nil {
			return false
		}
		i := int(seed) % n
		p, err := b.Prove(i)
		if err != nil {
			return false
		}
		return VerifyBatch(b.Root(), ms[i], p) == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBatchProofLengthLogarithmic(t *testing.T) {
	b, err := NewBatch(msgs(1024))
	if err != nil {
		t.Fatal(err)
	}
	p, err := b.Prove(500)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Siblings) != 10 { // log2(1024)
		t.Errorf("proof length = %d, want 10", len(p.Siblings))
	}
}
