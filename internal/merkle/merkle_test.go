package merkle

import (
	"fmt"
	"math/rand"
	"testing"
)

func buildSample(t *testing.T) (*Tree, map[string][]byte) {
	t.Helper()
	items := map[string][]byte{
		"var(r1)":   []byte("route one"),
		"var(r2)":   []byte("route two"),
		"var(ro)":   []byte("output route"),
		"rule(min)": []byte("operator: min"),
	}
	tree, err := Build(items, nil)
	if err != nil {
		t.Fatal(err)
	}
	return tree, items
}

func TestBuildAndProveAll(t *testing.T) {
	tree, items := buildSample(t)
	if tree.Len() != len(items) {
		t.Fatalf("Len = %d", tree.Len())
	}
	root := tree.Root()
	for name, payload := range items {
		p, err := tree.Prove(name)
		if err != nil {
			t.Fatalf("Prove(%q): %v", name, err)
		}
		if string(p.Payload) != string(payload) {
			t.Errorf("payload mismatch for %q", name)
		}
		if err := VerifyProof(root, p); err != nil {
			t.Errorf("VerifyProof(%q): %v", name, err)
		}
		// Proof length is exactly the label bit length, independent of how
		// many other vertices exist — the confidentiality property.
		if want := 8 * (len(name) + 1); len(p.Siblings) != want {
			t.Errorf("%q: %d siblings, want %d", name, len(p.Siblings), want)
		}
	}
}

func TestProofTamperDetection(t *testing.T) {
	tree, _ := buildSample(t)
	root := tree.Root()
	p, err := tree.Prove("var(r1)")
	if err != nil {
		t.Fatal(err)
	}
	// Payload tampering.
	bad := *p
	bad.Payload = []byte("forged")
	if VerifyProof(root, &bad) == nil {
		t.Error("forged payload accepted")
	}
	// Name substitution (claiming the payload belongs to another vertex).
	bad = *p
	bad.Name = "var(r2)"
	if VerifyProof(root, &bad) == nil {
		t.Error("name substitution accepted")
	}
	// Sibling tampering.
	bad = *p
	bad.Siblings = append([][HashSize]byte(nil), p.Siblings...)
	bad.Siblings[0][0] ^= 1
	if VerifyProof(root, &bad) == nil {
		t.Error("sibling tampering accepted")
	}
	// Wrong root.
	other, err := Build(map[string][]byte{"var(r1)": []byte("route one")}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if VerifyProof(other.Root(), p) == nil {
		t.Error("proof verified against wrong root")
	}
}

func TestBuildRejectsBadLabels(t *testing.T) {
	if _, err := Build(map[string][]byte{}, nil); err != ErrEmptyTree {
		t.Errorf("empty build: %v", err)
	}
	if _, err := Build(map[string][]byte{"": nil}, nil); err == nil {
		t.Error("empty label accepted")
	}
	if _, err := Build(map[string][]byte{"a\x00b": nil}, nil); err == nil {
		t.Error("NUL label accepted")
	}
}

func TestPrefixFreedomAcrossPrefixNames(t *testing.T) {
	// "ab" and "abc": one name a prefix of the other — the NUL terminator
	// must keep their bit paths disjoint.
	tree, err := Build(map[string][]byte{
		"ab":  []byte("1"),
		"abc": []byte("2"),
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []string{"ab", "abc"} {
		p, err := tree.Prove(n)
		if err != nil {
			t.Fatal(err)
		}
		if err := VerifyProof(tree.Root(), p); err != nil {
			t.Errorf("%q: %v", n, err)
		}
	}
}

func TestHidingPadding(t *testing.T) {
	// Two builds of the same single-leaf content yield different roots,
	// because absent siblings are fresh random pads; a neighbor cannot
	// infer "this tree contains exactly the vertex I know" from the root.
	items := map[string][]byte{"var(x)": []byte("v")}
	t1, err := Build(items, nil)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := Build(items, nil)
	if err != nil {
		t.Fatal(err)
	}
	if t1.Root() == t2.Root() {
		t.Error("roots equal across builds: padding not random")
	}
}

func TestDeterministicWithSeededRand(t *testing.T) {
	items := map[string][]byte{"a": []byte("1"), "b": []byte("2")}
	t1, err := Build(items, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	t2, err := Build(items, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if t1.Root() != t2.Root() {
		t.Error("same seed, different roots")
	}
}

func TestPayloadAndLabels(t *testing.T) {
	tree, items := buildSample(t)
	for name := range items {
		got, ok := tree.Payload(name)
		if !ok || string(got) != string(items[name]) {
			t.Errorf("Payload(%q) = %q, %v", name, got, ok)
		}
	}
	if _, ok := tree.Payload("nope"); ok {
		t.Error("Payload of absent label ok")
	}
	labels := tree.Labels()
	if len(labels) != len(items) {
		t.Errorf("Labels = %v", labels)
	}
	for i := 1; i < len(labels); i++ {
		if labels[i] <= labels[i-1] {
			t.Error("Labels not sorted")
		}
	}
	if _, err := tree.Prove("nope"); err == nil {
		t.Error("Prove of absent label succeeded")
	}
}

func TestProofMarshalRoundTrip(t *testing.T) {
	tree, _ := buildSample(t)
	p, err := tree.Prove("rule(min)")
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var q Proof
	if err := q.UnmarshalBinary(b); err != nil {
		t.Fatal(err)
	}
	if err := VerifyProof(tree.Root(), &q); err != nil {
		t.Errorf("round-tripped proof rejected: %v", err)
	}
	for n := 0; n < len(b); n += 7 {
		var bad Proof
		if err := bad.UnmarshalBinary(b[:n]); err == nil {
			t.Errorf("truncation to %d accepted", n)
		}
	}
	var bad Proof
	if err := bad.UnmarshalBinary(append(b, 1)); err == nil {
		t.Error("trailing byte accepted")
	}
}

func TestLargeTreeRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	items := map[string][]byte{}
	for i := 0; i < 300; i++ {
		v := make([]byte, rng.Intn(64))
		rng.Read(v)
		items[fmt.Sprintf("var(r%d)", i)] = v
	}
	tree, err := Build(items, rng)
	if err != nil {
		t.Fatal(err)
	}
	root := tree.Root()
	for i := 0; i < 50; i++ {
		name := fmt.Sprintf("var(r%d)", rng.Intn(300))
		p, err := tree.Prove(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := VerifyProof(root, p); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func BenchmarkBuild100(b *testing.B) {
	items := map[string][]byte{}
	for i := 0; i < 100; i++ {
		items[fmt.Sprintf("var(r%d)", i)] = []byte("payload-payload-payload")
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Build(items, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkProveVerify(b *testing.B) {
	items := map[string][]byte{}
	for i := 0; i < 100; i++ {
		items[fmt.Sprintf("var(r%d)", i)] = []byte("payload")
	}
	tree, err := Build(items, nil)
	if err != nil {
		b.Fatal(err)
	}
	root := tree.Root()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := tree.Prove("var(r42)")
		if err != nil {
			b.Fatal(err)
		}
		if err := VerifyProof(root, p); err != nil {
			b.Fatal(err)
		}
	}
}
