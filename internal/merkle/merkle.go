// Package merkle implements the paper's commitment and selective-disclosure
// structure (§3.6): a Merkle hash tree whose leaves sit at positions given
// by prefix-free bitstrings, so a network can commit to its entire
// route-flow graph with one signed root hash and later reveal individual
// vertices without exposing the presence or absence of any others.
//
// Labels are derived from vertex names by NUL-terminating the name and
// taking its bits; distinct NUL-free names therefore yield prefix-free
// bitstrings, exactly the property §3.6 requires ("encode the string
// rule(x) for each rule x and var(v) for each variable v"). Every
// materialized inner node whose other child is absent is padded with a
// fresh random 32-byte value, so an audit path never reveals whether a
// sibling subtree holds real vertices or nothing — the confidentiality
// argument at the end of §3.6.
package merkle

import (
	"bytes"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sort"
)

// HashSize is the byte length of node hashes.
const HashSize = sha256.Size

// Root is the tree's committed root hash.
type Root [HashSize]byte

// String renders a short hex form.
func (r Root) String() string { return fmt.Sprintf("%x…", r[:6]) }

// Domain-separation prefixes for leaf and inner hashes; distinct tags make
// second-preimage splicing across node kinds impossible.
const (
	tagLeaf  = 0x00
	tagInner = 0x01
)

// Errors returned by tree operations and verification.
var (
	ErrBadLabel   = errors.New("merkle: label must be non-empty and NUL-free")
	ErrDuplicate  = errors.New("merkle: duplicate label")
	ErrBadProof   = errors.New("merkle: proof verification failed")
	ErrEmptyTree  = errors.New("merkle: tree has no leaves")
	ErrShortProof = errors.New("merkle: malformed proof encoding")
)

// labelBits converts a vertex name into its prefix-free bit path:
// the bits of name ‖ 0x00, most significant bit first.
func labelBits(name string) ([]bool, error) {
	if name == "" || bytes.IndexByte([]byte(name), 0) >= 0 {
		return nil, fmt.Errorf("%w: %q", ErrBadLabel, name)
	}
	raw := append([]byte(name), 0)
	bits := make([]bool, 0, len(raw)*8)
	for _, b := range raw {
		for i := 7; i >= 0; i-- {
			bits = append(bits, (b>>uint(i))&1 == 1)
		}
	}
	return bits, nil
}

func leafHash(name string, payload []byte) [HashSize]byte {
	bp := getScratch()
	b := (*bp)[:0]
	b = append(b, tagLeaf)
	b = binary.BigEndian.AppendUint32(b, uint32(len(name)))
	b = append(b, name...)
	b = binary.BigEndian.AppendUint32(b, uint32(len(payload)))
	b = append(b, payload...)
	out := sha256.Sum256(b)
	*bp = b
	putScratch(bp)
	return out
}

func innerHash(left, right [HashSize]byte) [HashSize]byte {
	var b [1 + 2*HashSize]byte
	b[0] = tagInner
	copy(b[1:], left[:])
	copy(b[1+HashSize:], right[:])
	return sha256.Sum256(b[:])
}

// Tree is an immutable committed tree built by Build. It retains the
// materialized nodes needed to produce audit paths.
type Tree struct {
	root  *tnode
	names map[string][]byte // label -> payload
}

type tnode struct {
	hash        [HashSize]byte
	left, right *tnode
	// leaf data; nil left/right and name != "" marks a leaf
	name string
}

// Build constructs the committed tree over the label→payload map, drawing
// sibling padding from rnd (crypto/rand if nil). Payload bytes are copied.
func Build(items map[string][]byte, rnd io.Reader) (*Tree, error) {
	if len(items) == 0 {
		return nil, ErrEmptyTree
	}
	if rnd == nil {
		rnd = rand.Reader
	}
	type entry struct {
		name string
		bits []bool
	}
	entries := make([]entry, 0, len(items))
	names := make(map[string][]byte, len(items))
	for name, payload := range items {
		bits, err := labelBits(name)
		if err != nil {
			return nil, err
		}
		entries = append(entries, entry{name: name, bits: bits})
		names[name] = append([]byte(nil), payload...)
	}
	// Deterministic build order (map iteration is random).
	sort.Slice(entries, func(i, j int) bool { return entries[i].name < entries[j].name })

	t := &Tree{names: names}
	for _, e := range entries {
		if err := t.insert(e.name, e.bits); err != nil {
			return nil, err
		}
	}
	// Subtrees hash independently, so fan the finalize pass out across
	// goroutines — but only with the default entropy source: an injected
	// rnd is consumed in deterministic order (tests seed it to get
	// reproducible padding), which a parallel walk would scramble.
	if rnd == rand.Reader && runtime.GOMAXPROCS(0) > 1 && len(items) >= 64 {
		if err := t.finalizeParallel(t.root, 3); err != nil {
			return nil, err
		}
	} else if err := t.finalize(t.root, rnd); err != nil {
		return nil, err
	}
	return t, nil
}

// finalizeParallel finalizes left and right subtrees concurrently while
// fork budget remains, falling back to the sequential pass at the
// leaves of the fork tree. Only used with crypto/rand, which is safe
// for concurrent reads.
func (t *Tree) finalizeParallel(n *tnode, budget int) error {
	if n == nil {
		return nil
	}
	if n.name != "" {
		n.hash = leafHash(n.name, t.names[n.name])
		return nil
	}
	if budget <= 0 || n.left == nil || n.right == nil {
		return t.finalize(n, rand.Reader)
	}
	errCh := make(chan error, 1)
	go func() { errCh <- t.finalizeParallel(n.left, budget-1) }()
	rerr := t.finalizeParallel(n.right, budget-1)
	lerr := <-errCh
	if lerr != nil {
		return lerr
	}
	if rerr != nil {
		return rerr
	}
	n.hash = innerHash(n.left.hash, n.right.hash)
	return nil
}

// insert materializes the path for a leaf. Prefix-freeness guarantees we
// never descend through an existing leaf.
func (t *Tree) insert(name string, bits []bool) error {
	if t.root == nil {
		t.root = &tnode{}
	}
	n := t.root
	for _, b := range bits {
		if n.name != "" {
			return fmt.Errorf("merkle: label %q collides under leaf %q", name, n.name)
		}
		next := &n.left
		if b {
			next = &n.right
		}
		if *next == nil {
			*next = &tnode{}
		}
		n = *next
	}
	if n.name != "" || n.left != nil || n.right != nil {
		return fmt.Errorf("%w: %q", ErrDuplicate, name)
	}
	n.name = name
	return nil
}

// finalize computes hashes bottom-up, padding absent siblings with random
// values so audit paths are structure-hiding.
func (t *Tree) finalize(n *tnode, rnd io.Reader) error {
	if n == nil {
		return nil
	}
	if n.name != "" {
		n.hash = leafHash(n.name, t.names[n.name])
		return nil
	}
	if err := t.finalize(n.left, rnd); err != nil {
		return err
	}
	if err := t.finalize(n.right, rnd); err != nil {
		return err
	}
	var lh, rh [HashSize]byte
	switch {
	case n.left != nil && n.right != nil:
		lh, rh = n.left.hash, n.right.hash
	case n.left != nil:
		lh = n.left.hash
		if _, err := io.ReadFull(rnd, rh[:]); err != nil {
			return fmt.Errorf("merkle: padding: %w", err)
		}
		n.right = &tnode{hash: rh}
	case n.right != nil:
		rh = n.right.hash
		if _, err := io.ReadFull(rnd, lh[:]); err != nil {
			return fmt.Errorf("merkle: padding: %w", err)
		}
		n.left = &tnode{hash: lh}
	default:
		return errors.New("merkle: internal node with no children")
	}
	n.hash = innerHash(lh, rh)
	return nil
}

// Root returns the committed root hash; this is the value a network signs
// and publishes to its neighbors (§3.6).
func (t *Tree) Root() Root { return Root(t.root.hash) }

// Len returns the number of leaves.
func (t *Tree) Len() int { return len(t.names) }

// Labels returns the leaf labels in sorted order.
func (t *Tree) Labels() []string {
	out := make([]string, 0, len(t.names))
	for n := range t.names {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Payload returns the stored payload for a label.
func (t *Tree) Payload(name string) ([]byte, bool) {
	p, ok := t.names[name]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), p...), true
}

// Proof is the selective-disclosure object for one vertex: the payload and
// the sibling hashes from the leaf up to the root. Given the proof and the
// published root, a neighbor validates I(x) without learning anything about
// other vertices (§3.6).
type Proof struct {
	Name     string
	Payload  []byte
	Siblings [][HashSize]byte // leaf-adjacent first, root-adjacent last
}

// Prove returns the disclosure proof for a label.
func (t *Tree) Prove(name string) (*Proof, error) {
	payload, ok := t.names[name]
	if !ok {
		return nil, fmt.Errorf("merkle: unknown label %q", name)
	}
	bits, err := labelBits(name)
	if err != nil {
		return nil, err
	}
	sibs := make([][HashSize]byte, len(bits))
	n := t.root
	for d, b := range bits {
		var next, sib *tnode
		if b {
			next, sib = n.right, n.left
		} else {
			next, sib = n.left, n.right
		}
		// finalize guarantees both children exist on materialized paths.
		sibs[len(bits)-1-d] = sib.hash
		n = next
	}
	return &Proof{
		Name:     name,
		Payload:  append([]byte(nil), payload...),
		Siblings: sibs,
	}, nil
}

// VerifyProof checks a disclosure proof against a committed root.
func VerifyProof(root Root, p *Proof) error {
	bits, err := labelBits(p.Name)
	if err != nil {
		return err
	}
	if len(p.Siblings) != len(bits) {
		return fmt.Errorf("%w: %d siblings for %d-bit label", ErrBadProof, len(p.Siblings), len(bits))
	}
	h := leafHash(p.Name, p.Payload)
	for i, sib := range p.Siblings {
		// Sibling i corresponds to depth len(bits)-1-i; bit there says
		// whether our node was the right child.
		b := bits[len(bits)-1-i]
		if b {
			h = innerHash(sib, h)
		} else {
			h = innerHash(h, sib)
		}
	}
	if !hmac.Equal(h[:], root[:]) {
		return ErrBadProof
	}
	return nil
}

// MarshalBinary encodes the proof.
func (p *Proof) MarshalBinary() ([]byte, error) {
	var buf bytes.Buffer
	var l [4]byte
	binary.BigEndian.PutUint32(l[:], uint32(len(p.Name)))
	buf.Write(l[:])
	buf.WriteString(p.Name)
	binary.BigEndian.PutUint32(l[:], uint32(len(p.Payload)))
	buf.Write(l[:])
	buf.Write(p.Payload)
	binary.BigEndian.PutUint32(l[:], uint32(len(p.Siblings)))
	buf.Write(l[:])
	for _, s := range p.Siblings {
		buf.Write(s[:])
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary decodes the MarshalBinary encoding.
func (p *Proof) UnmarshalBinary(b []byte) error {
	take := func(n int) ([]byte, error) {
		if len(b) < n {
			return nil, ErrShortProof
		}
		out := b[:n]
		b = b[n:]
		return out, nil
	}
	lb, err := take(4)
	if err != nil {
		return err
	}
	nb, err := take(int(binary.BigEndian.Uint32(lb)))
	if err != nil {
		return err
	}
	name := string(nb)
	lb, err = take(4)
	if err != nil {
		return err
	}
	payload, err := take(int(binary.BigEndian.Uint32(lb)))
	if err != nil {
		return err
	}
	lb, err = take(4)
	if err != nil {
		return err
	}
	count := int(binary.BigEndian.Uint32(lb))
	if count > 1<<20 {
		return ErrShortProof
	}
	sibs := make([][HashSize]byte, count)
	for i := range sibs {
		sb, err := take(HashSize)
		if err != nil {
			return err
		}
		copy(sibs[i][:], sb)
	}
	if len(b) != 0 {
		return ErrShortProof
	}
	*p = Proof{Name: name, Payload: append([]byte(nil), payload...), Siblings: sibs}
	return nil
}
