package merkle

import (
	"runtime"
	"sync"
)

// parallelThreshold is the minimum number of nodes in a hashing pass
// before it is split across goroutines; below this the spawn cost
// exceeds the hashing cost.
const parallelThreshold = 512

// scratchPool recycles the per-leaf concatenation buffers: leaf hashing
// assembles tag ‖ lengths ‖ bytes into one buffer and runs a one-shot
// SHA-256 over it, so the only allocation left to avoid is the buffer
// itself.
var scratchPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 512)
		return &b
	},
}

func getScratch() *[]byte  { return scratchPool.Get().(*[]byte) }
func putScratch(b *[]byte) { scratchPool.Put(b) }

// parChunks runs fn over [0, n) in contiguous chunks, in parallel when
// both the work and the machine are big enough; fn must be safe for
// disjoint ranges.
func parChunks(n int, fn func(lo, hi int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers <= 1 || n < parallelThreshold {
		fn(0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
