package merkle

import (
	"bytes"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math/bits"
)

// Batch is the dense, index-addressed Merkle tree of §3.8: "it seems
// feasible to sign messages in batches, perhaps using a small MHT to reveal
// batched routes individually". A speaker accumulates a burst of updates,
// builds a Batch, signs only the root, and ships each update with its audit
// path, amortizing the signature across the batch.
type Batch struct {
	leaves [][HashSize]byte
	levels [][][HashSize]byte // levels[0] = leaves (padded), last = root
}

// NewBatch builds the tree over the given messages. The leaf count is
// padded to the next power of two by duplicating the last leaf hash, the
// standard construction; proofs carry the original index so padding cannot
// be confused with data.
//
// All node storage comes from one flat allocation (2·padded−1 hashes),
// and both leaf hashing and inner-level construction split across
// goroutines above a size threshold; the tree — padding included — is
// fully deterministic, so the parallel build produces bit-identical
// roots to the serial one.
func NewBatch(msgs [][]byte) (*Batch, error) {
	n := len(msgs)
	if n == 0 {
		return nil, ErrEmptyTree
	}
	padded := 1
	for padded < n {
		padded <<= 1
	}
	flat := make([][HashSize]byte, 2*padded-1)
	level0 := flat[:padded:padded]
	parChunks(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			level0[i] = batchLeafHash(uint32(i), msgs[i])
		}
	})
	for i := n; i < padded; i++ {
		level0[i] = level0[n-1]
	}

	levels := make([][][HashSize]byte, 0, bits.Len(uint(padded)))
	levels = append(levels, level0)
	cur := level0
	off := padded
	for size := padded / 2; size >= 1; size /= 2 {
		next := flat[off : off+size : off+size]
		src := cur
		parChunks(size, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				next[i] = innerHash(src[2*i], src[2*i+1])
			}
		})
		levels = append(levels, next)
		cur = next
		off += size
	}
	return &Batch{leaves: level0[:n], levels: levels}, nil
}

// batchLeafHash binds the message to its index so two equal messages at
// different positions have distinct leaves.
func batchLeafHash(idx uint32, msg []byte) [HashSize]byte {
	bp := getScratch()
	b := (*bp)[:0]
	b = append(b, tagLeaf)
	b = binary.BigEndian.AppendUint32(b, idx)
	b = append(b, msg...)
	out := sha256.Sum256(b)
	*bp = b
	putScratch(bp)
	return out
}

// Len returns the number of messages in the batch.
func (b *Batch) Len() int { return len(b.leaves) }

// Root returns the batch root; sign this once per batch.
func (b *Batch) Root() Root {
	return Root(b.levels[len(b.levels)-1][0])
}

// BatchProof authenticates one message of a batch against the signed root.
type BatchProof struct {
	Index    uint32
	Siblings [][HashSize]byte
}

// Prove returns the audit path for message i.
func (b *Batch) Prove(i int) (*BatchProof, error) {
	if i < 0 || i >= len(b.leaves) {
		return nil, fmt.Errorf("merkle: batch index %d out of range 0..%d", i, len(b.leaves)-1)
	}
	var sibs [][HashSize]byte
	idx := i
	for _, level := range b.levels[:len(b.levels)-1] {
		sibs = append(sibs, level[idx^1])
		idx >>= 1
	}
	return &BatchProof{Index: uint32(i), Siblings: sibs}, nil
}

// VerifyBatch checks that msg was the Index-th message of the batch with
// the given root.
func VerifyBatch(root Root, msg []byte, p *BatchProof) error {
	h := batchLeafHash(p.Index, msg)
	idx := int(p.Index)
	for _, sib := range p.Siblings {
		if idx&1 == 1 {
			h = innerHash(sib, h)
		} else {
			h = innerHash(h, sib)
		}
		idx >>= 1
	}
	if !hmac.Equal(h[:], root[:]) {
		return ErrBadProof
	}
	return nil
}

// MarshalBinary encodes the proof.
func (p *BatchProof) MarshalBinary() ([]byte, error) {
	var buf bytes.Buffer
	var u [4]byte
	binary.BigEndian.PutUint32(u[:], p.Index)
	buf.Write(u[:])
	binary.BigEndian.PutUint32(u[:], uint32(len(p.Siblings)))
	buf.Write(u[:])
	for _, s := range p.Siblings {
		buf.Write(s[:])
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary decodes the MarshalBinary encoding.
func (p *BatchProof) UnmarshalBinary(b []byte) error {
	if len(b) < 8 {
		return ErrShortProof
	}
	idx := binary.BigEndian.Uint32(b)
	n := int(binary.BigEndian.Uint32(b[4:]))
	b = b[8:]
	if n > 64 || len(b) != n*HashSize {
		return ErrShortProof
	}
	sibs := make([][HashSize]byte, n)
	for i := range sibs {
		copy(sibs[i][:], b[i*HashSize:])
	}
	*p = BatchProof{Index: idx, Siblings: sibs}
	return nil
}
