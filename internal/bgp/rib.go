package bgp

import (
	"fmt"
	"sort"
	"strings"

	"pvr/internal/aspath"
	"pvr/internal/prefix"
	"pvr/internal/route"
)

// LearnedRoute is a route in Adj-RIB-In together with the peer it came from;
// the decision process and PVR's verification both need that provenance.
type LearnedRoute struct {
	From  aspath.ASN
	Route route.Route
}

// AdjRIBIn stores the routes learned from each peer, per prefix: the input
// variables r_1 … r_k of the paper's route-flow graph (Fig. 1).
type AdjRIBIn struct {
	byPeer map[aspath.ASN]map[prefix.Prefix]route.Route
}

// NewAdjRIBIn returns an empty Adj-RIB-In.
func NewAdjRIBIn() *AdjRIBIn {
	return &AdjRIBIn{byPeer: make(map[aspath.ASN]map[prefix.Prefix]route.Route)}
}

// Set records the route learned from a peer, replacing any previous route
// for the same prefix (implicit withdraw). It reports whether the entry
// changed.
func (a *AdjRIBIn) Set(peer aspath.ASN, r route.Route) bool {
	m, ok := a.byPeer[peer]
	if !ok {
		m = make(map[prefix.Prefix]route.Route)
		a.byPeer[peer] = m
	}
	if old, ok := m[r.Prefix]; ok && old.Equal(r) {
		return false
	}
	m[r.Prefix] = r
	return true
}

// Remove deletes the peer's route for a prefix (explicit withdraw),
// reporting whether one was present.
func (a *AdjRIBIn) Remove(peer aspath.ASN, p prefix.Prefix) bool {
	m, ok := a.byPeer[peer]
	if !ok {
		return false
	}
	if _, ok := m[p]; !ok {
		return false
	}
	delete(m, p)
	return true
}

// Get returns the route a peer has advertised for a prefix.
func (a *AdjRIBIn) Get(peer aspath.ASN, p prefix.Prefix) (route.Route, bool) {
	r, ok := a.byPeer[peer][p]
	return r, ok
}

// Candidates returns all learned routes for a prefix, sorted by peer ASN
// for determinism.
func (a *AdjRIBIn) Candidates(p prefix.Prefix) []LearnedRoute {
	var out []LearnedRoute
	for peer, m := range a.byPeer {
		if r, ok := m[p]; ok {
			out = append(out, LearnedRoute{From: peer, Route: r})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].From < out[j].From })
	return out
}

// Prefixes returns every prefix present from any peer, sorted.
func (a *AdjRIBIn) Prefixes() []prefix.Prefix {
	seen := map[prefix.Prefix]bool{}
	for _, m := range a.byPeer {
		for p := range m {
			seen[p] = true
		}
	}
	out := make([]prefix.Prefix, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// DropPeer removes all routes from a peer (session teardown), returning the
// affected prefixes.
func (a *AdjRIBIn) DropPeer(peer aspath.ASN) []prefix.Prefix {
	m, ok := a.byPeer[peer]
	if !ok {
		return nil
	}
	out := make([]prefix.Prefix, 0, len(m))
	for p := range m {
		out = append(out, p)
	}
	delete(a.byPeer, peer)
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// LocRIB holds the selected best route per prefix, plus its provenance.
type LocRIB struct {
	best map[prefix.Prefix]LearnedRoute
}

// NewLocRIB returns an empty Loc-RIB.
func NewLocRIB() *LocRIB {
	return &LocRIB{best: make(map[prefix.Prefix]LearnedRoute)}
}

// Get returns the selected route for a prefix.
func (l *LocRIB) Get(p prefix.Prefix) (LearnedRoute, bool) {
	r, ok := l.best[p]
	return r, ok
}

// Set installs a best route, reporting whether the entry changed.
func (l *LocRIB) Set(p prefix.Prefix, r LearnedRoute) bool {
	if old, ok := l.best[p]; ok && old.From == r.From && old.Route.Equal(r.Route) {
		return false
	}
	l.best[p] = r
	return true
}

// Remove uninstalls a prefix, reporting whether it was present.
func (l *LocRIB) Remove(p prefix.Prefix) bool {
	if _, ok := l.best[p]; !ok {
		return false
	}
	delete(l.best, p)
	return true
}

// Len returns the number of installed prefixes.
func (l *LocRIB) Len() int { return len(l.best) }

// Prefixes returns installed prefixes, sorted.
func (l *LocRIB) Prefixes() []prefix.Prefix {
	out := make([]prefix.Prefix, 0, len(l.best))
	for p := range l.best {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// AdjRIBOut tracks what has been advertised to each peer, so the speaker
// sends deltas rather than full tables.
type AdjRIBOut struct {
	byPeer map[aspath.ASN]map[prefix.Prefix]route.Route
}

// NewAdjRIBOut returns an empty Adj-RIB-Out.
func NewAdjRIBOut() *AdjRIBOut {
	return &AdjRIBOut{byPeer: make(map[aspath.ASN]map[prefix.Prefix]route.Route)}
}

// Get returns the route currently advertised to a peer for a prefix.
func (a *AdjRIBOut) Get(peer aspath.ASN, p prefix.Prefix) (route.Route, bool) {
	r, ok := a.byPeer[peer][p]
	return r, ok
}

// Set records an advertisement, reporting whether it changed.
func (a *AdjRIBOut) Set(peer aspath.ASN, r route.Route) bool {
	m, ok := a.byPeer[peer]
	if !ok {
		m = make(map[prefix.Prefix]route.Route)
		a.byPeer[peer] = m
	}
	if old, ok := m[r.Prefix]; ok && old.Equal(r) {
		return false
	}
	m[r.Prefix] = r
	return true
}

// Remove records a withdrawal, reporting whether an advertisement existed.
func (a *AdjRIBOut) Remove(peer aspath.ASN, p prefix.Prefix) bool {
	m, ok := a.byPeer[peer]
	if !ok {
		return false
	}
	if _, ok := m[p]; !ok {
		return false
	}
	delete(m, p)
	return true
}

// Dump renders the full RIB state for debugging and looking-glass output.
func Dump(in *AdjRIBIn, loc *LocRIB) string {
	var b strings.Builder
	b.WriteString("Loc-RIB:\n")
	for _, p := range loc.Prefixes() {
		lr, _ := loc.Get(p)
		fmt.Fprintf(&b, "  %s from %s: %s\n", p, lr.From, lr.Route)
	}
	b.WriteString("Adj-RIB-In:\n")
	for _, p := range in.Prefixes() {
		for _, c := range in.Candidates(p) {
			fmt.Fprintf(&b, "  %s from %s: %s\n", p, c.From, c.Route)
		}
	}
	return b.String()
}
