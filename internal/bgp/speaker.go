package bgp

import (
	"errors"
	"fmt"
	"net/netip"
	"sort"

	"pvr/internal/aspath"
	"pvr/internal/prefix"
	"pvr/internal/route"
)

// DefaultLocalPref is assigned to imported routes whose import policy does
// not set one (RFC 4271's common default).
const DefaultLocalPref = 100

// PeerConfig describes one eBGP neighbor and the policies applied on that
// session.
type PeerConfig struct {
	ASN aspath.ASN
	// Import rewrites/filters routes learned from this peer (nil = accept).
	Import *Policy
	// Export rewrites/filters routes advertised to this peer (nil = accept).
	Export *Policy
}

// Config configures a speaker (one router, one AS).
type Config struct {
	ASN      aspath.ASN
	RouterID uint32
	// NextHop is this router's address, stamped on exported routes.
	NextHop  netip.Addr
	Decision DecisionConfig
	Peers    []PeerConfig
}

// PeerUpdate pairs an outbound update with its destination peer.
type PeerUpdate struct {
	Peer   aspath.ASN
	Update Update
}

// Errors returned by the speaker.
var (
	ErrUnknownPeer = errors.New("bgp: update from unconfigured peer")
	ErrBadFirstAS  = errors.New("bgp: leftmost path AS does not match peer")
)

// Speaker is a deterministic, single-goroutine BGP speaker: feed it updates
// with HandleUpdate / Originate, then drain the resulting advertisements
// with Drain. The simulator drives many speakers in rounds; Session wraps
// one in goroutines for live connections. Speaker is not safe for
// concurrent use.
type Speaker struct {
	cfg     Config
	peers   map[aspath.ASN]PeerConfig
	adjIn   *AdjRIBIn
	loc     *LocRIB
	origins map[prefix.Prefix]route.Route

	// adjOut is the *desired* per-peer advertisement state; sent is what
	// has actually been handed out via Drain. Drain diffs the two, so
	// announce/withdraw churn within one cycle cancels naturally.
	adjOut *AdjRIBOut
	sent   *AdjRIBOut
	dirty  map[aspath.ASN]map[prefix.Prefix]bool

	// Stats counts protocol activity for the experiments.
	Stats Stats
}

// Stats counts speaker activity.
type Stats struct {
	UpdatesIn      int
	UpdatesOut     int
	RoutesAccepted int
	RoutesRejected int
	LoopsDropped   int
	Recomputations int
}

// NewSpeaker validates the configuration and returns a speaker.
func NewSpeaker(cfg Config) (*Speaker, error) {
	if cfg.ASN == 0 {
		return nil, errors.New("bgp: ASN must be nonzero")
	}
	if !cfg.NextHop.IsValid() {
		return nil, errors.New("bgp: NextHop must be set")
	}
	peers := make(map[aspath.ASN]PeerConfig, len(cfg.Peers))
	for _, p := range cfg.Peers {
		if p.ASN == cfg.ASN {
			return nil, fmt.Errorf("bgp: peer %s is self", p.ASN)
		}
		if _, dup := peers[p.ASN]; dup {
			return nil, fmt.Errorf("bgp: duplicate peer %s", p.ASN)
		}
		peers[p.ASN] = p
	}
	return &Speaker{
		cfg:     cfg,
		peers:   peers,
		adjIn:   NewAdjRIBIn(),
		loc:     NewLocRIB(),
		adjOut:  NewAdjRIBOut(),
		sent:    NewAdjRIBOut(),
		origins: make(map[prefix.Prefix]route.Route),
		dirty:   make(map[aspath.ASN]map[prefix.Prefix]bool),
	}, nil
}

// ASN returns the speaker's AS number.
func (s *Speaker) ASN() aspath.ASN { return s.cfg.ASN }

// Peers returns the configured peer ASNs in ascending order.
func (s *Speaker) Peers() []aspath.ASN {
	out := make([]aspath.ASN, 0, len(s.peers))
	for a := range s.peers {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Originate injects a locally originated route for p and recomputes.
func (s *Speaker) Originate(p prefix.Prefix) error {
	if !p.IsValid() {
		return prefix.ErrInvalidPrefix
	}
	r := route.Route{
		Prefix:    p,
		Path:      aspath.Path{}, // empty: local origin
		NextHop:   s.cfg.NextHop,
		LocalPref: DefaultLocalPref,
		Origin:    route.OriginIGP,
	}
	s.origins[p] = r
	s.recompute(p)
	return nil
}

// WithdrawOrigin removes a locally originated route and recomputes.
func (s *Speaker) WithdrawOrigin(p prefix.Prefix) {
	if _, ok := s.origins[p]; !ok {
		return
	}
	delete(s.origins, p)
	s.recompute(p)
}

// HandleUpdate ingests an update from a peer: withdrawals, then announces
// (loop check, first-AS check, import policy), then recomputation of every
// affected prefix.
func (s *Speaker) HandleUpdate(from aspath.ASN, u Update) error {
	pc, ok := s.peers[from]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownPeer, from)
	}
	s.Stats.UpdatesIn++
	affected := map[prefix.Prefix]bool{}
	for _, p := range u.Withdrawn {
		if s.adjIn.Remove(from, p) {
			affected[p] = true
		}
	}
	for _, r := range u.Announced {
		if !r.Valid() {
			return fmt.Errorf("%w: invalid route", ErrBadMessage)
		}
		// eBGP sanity: the leftmost AS must be the sending peer.
		if f, ok := r.Path.First(); !ok || f != from {
			return fmt.Errorf("%w: got %s from %s", ErrBadFirstAS, r.Path, from)
		}
		// Loop prevention: drop routes that traverse us.
		if r.Path.Contains(s.cfg.ASN) {
			s.Stats.LoopsDropped++
			continue
		}
		// LOCAL_PREF is not carried across eBGP: reset before import policy.
		r = r.WithLocalPref(DefaultLocalPref)
		imported, accepted, err := pc.Import.Apply(r)
		if err != nil {
			return err
		}
		if !accepted {
			s.Stats.RoutesRejected++
			// A newly filtered route acts as a withdraw of any prior one.
			if s.adjIn.Remove(from, r.Prefix) {
				affected[r.Prefix] = true
			}
			continue
		}
		s.Stats.RoutesAccepted++
		if s.adjIn.Set(from, imported) {
			affected[imported.Prefix] = true
		}
	}
	for p := range affected {
		s.recompute(p)
	}
	return nil
}

// DropPeer flushes all state learned from a peer (session failure).
func (s *Speaker) DropPeer(from aspath.ASN) {
	for _, p := range s.adjIn.DropPeer(from) {
		s.recompute(p)
	}
}

// Candidates exposes the Adj-RIB-In entries for a prefix: the inputs
// r_1 … r_k over which PVR promises are defined.
func (s *Speaker) Candidates(p prefix.Prefix) []LearnedRoute {
	cands := s.adjIn.Candidates(p)
	if org, ok := s.origins[p]; ok {
		cands = append(cands, LearnedRoute{From: s.cfg.ASN, Route: org})
	}
	return cands
}

// Best returns the Loc-RIB selection for a prefix.
func (s *Speaker) Best(p prefix.Prefix) (LearnedRoute, bool) { return s.loc.Get(p) }

// AdvertisedTo returns what is currently advertised to a peer for a prefix.
func (s *Speaker) AdvertisedTo(peer aspath.ASN, p prefix.Prefix) (route.Route, bool) {
	return s.adjOut.Get(peer, p)
}

// LocRIBLen reports the number of selected prefixes.
func (s *Speaker) LocRIBLen() int { return s.loc.Len() }

// recompute reruns the decision process for one prefix and refreshes the
// per-peer advertisements.
func (s *Speaker) recompute(p prefix.Prefix) {
	s.Stats.Recomputations++
	best, ok := s.cfg.Decision.SelectBest(s.Candidates(p))
	if !ok {
		s.loc.Remove(p)
	} else {
		s.loc.Set(p, best)
	}
	for peerASN := range s.peers {
		s.exportTo(peerASN, p, best, ok)
	}
}

// exportTo recomputes the advertisement for (peer, prefix) and queues a
// delta if it changed.
func (s *Speaker) exportTo(peer aspath.ASN, p prefix.Prefix, best LearnedRoute, have bool) {
	pc := s.peers[peer]
	var want route.Route
	haveExport := false
	// Never advertise a route back to the peer it was learned from.
	if have && best.From != peer {
		exported, err := best.Route.WithPrepended(s.cfg.ASN)
		if err == nil {
			exported.NextHop = s.cfg.NextHop
			exported.LocalPref = 0 // LOCAL_PREF is not sent over eBGP
			out, accepted, perr := pc.Export.Apply(exported)
			if perr == nil && accepted {
				want, haveExport = out, true
			}
		}
	}
	cur, haveCur := s.adjOut.Get(peer, p)
	switch {
	case haveExport && (!haveCur || !cur.Equal(want)):
		s.adjOut.Set(peer, want)
		s.markDirty(peer, p)
	case !haveExport && haveCur:
		s.adjOut.Remove(peer, p)
		s.markDirty(peer, p)
	}
}

func (s *Speaker) markDirty(peer aspath.ASN, p prefix.Prefix) {
	m, ok := s.dirty[peer]
	if !ok {
		m = make(map[prefix.Prefix]bool)
		s.dirty[peer] = m
	}
	m[p] = true
}

// Drain diffs the desired advertisements against what each peer has already
// been sent, returning at most one coalesced update per peer in ascending
// peer order, and records the new wire state. Changes that cancelled out
// within a cycle (announce then withdraw of a never-sent route) produce
// nothing.
func (s *Speaker) Drain() []PeerUpdate {
	peers := make([]aspath.ASN, 0, len(s.dirty))
	for a, m := range s.dirty {
		if len(m) > 0 {
			peers = append(peers, a)
		}
	}
	sort.Slice(peers, func(i, j int) bool { return peers[i] < peers[j] })

	var out []PeerUpdate
	for _, peer := range peers {
		ps := make([]prefix.Prefix, 0, len(s.dirty[peer]))
		for p := range s.dirty[peer] {
			ps = append(ps, p)
		}
		sort.Slice(ps, func(i, j int) bool { return ps[i].Compare(ps[j]) < 0 })

		var u Update
		for _, p := range ps {
			want, haveWant := s.adjOut.Get(peer, p)
			got, haveGot := s.sent.Get(peer, p)
			switch {
			case haveWant && (!haveGot || !got.Equal(want)):
				u.Announced = append(u.Announced, want)
				s.sent.Set(peer, want)
			case !haveWant && haveGot:
				u.Withdrawn = append(u.Withdrawn, p)
				s.sent.Remove(peer, p)
			}
		}
		if len(u.Announced) > 0 || len(u.Withdrawn) > 0 {
			out = append(out, PeerUpdate{Peer: peer, Update: u})
			s.Stats.UpdatesOut++
		}
	}
	s.dirty = make(map[aspath.ASN]map[prefix.Prefix]bool)
	return out
}

// DumpRIBs renders the speaker's tables for debugging.
func (s *Speaker) DumpRIBs() string { return Dump(s.adjIn, s.loc) }
