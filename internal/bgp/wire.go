// Package bgp implements the interdomain-routing substrate the paper's PVR
// system attaches to: an RFC 4271-style wire format, per-peer RIBs
// (Adj-RIB-In, Loc-RIB, Adj-RIB-Out), the BGP decision process, a
// match–action policy engine, a speaker suitable for deterministic
// simulation, and a session FSM for use over real connections.
//
// The substrate is intentionally a single-router-per-AS model (every
// session is eBGP) — exactly the granularity at which the paper reasons
// about promises between neighboring networks.
package bgp

import (
	"encoding/binary"
	"errors"
	"fmt"

	"pvr/internal/aspath"
	"pvr/internal/prefix"
	"pvr/internal/route"
)

// MsgType identifies a BGP message on the wire.
type MsgType uint8

// Message types (RFC 4271 §4.1).
const (
	MsgOpen         MsgType = 1
	MsgUpdate       MsgType = 2
	MsgNotification MsgType = 3
	MsgKeepalive    MsgType = 4
)

// String names the message type.
func (m MsgType) String() string {
	switch m {
	case MsgOpen:
		return "OPEN"
	case MsgUpdate:
		return "UPDATE"
	case MsgNotification:
		return "NOTIFICATION"
	case MsgKeepalive:
		return "KEEPALIVE"
	}
	return fmt.Sprintf("type(%d)", uint8(m))
}

// ErrBadMessage is returned for malformed wire encodings.
var ErrBadMessage = errors.New("bgp: malformed message")

// Open is the session-establishment message.
type Open struct {
	ASN      aspath.ASN
	HoldTime uint16
	RouterID uint32
}

// MarshalBinary encodes the OPEN body.
func (o Open) MarshalBinary() ([]byte, error) {
	b := make([]byte, 10)
	binary.BigEndian.PutUint32(b[0:], uint32(o.ASN))
	binary.BigEndian.PutUint16(b[4:], o.HoldTime)
	binary.BigEndian.PutUint32(b[6:], o.RouterID)
	return b, nil
}

// UnmarshalBinary decodes the OPEN body.
func (o *Open) UnmarshalBinary(b []byte) error {
	if len(b) != 10 {
		return fmt.Errorf("%w: OPEN length %d", ErrBadMessage, len(b))
	}
	o.ASN = aspath.ASN(binary.BigEndian.Uint32(b))
	o.HoldTime = binary.BigEndian.Uint16(b[4:])
	o.RouterID = binary.BigEndian.Uint32(b[6:])
	return nil
}

// Update announces routes and withdraws prefixes. Unlike RFC 4271's shared
// path-attribute block, each announced route carries its own attributes;
// this per-route form is what PVR commits to and signs.
type Update struct {
	Withdrawn []prefix.Prefix
	Announced []route.Route
	// Attachments carries opaque PVR payloads (signatures, commitments,
	// proofs) keyed by a short label; empty in plain BGP.
	Attachments map[string][]byte
}

// MarshalBinary encodes the UPDATE body.
func (u Update) MarshalBinary() ([]byte, error) {
	return u.AppendBinary(nil)
}

// AppendBinary appends the UPDATE body encoding to b and returns the
// extended slice, so hot senders can encode into a pooled buffer
// (netx.GetBuf) instead of allocating per message. On error the partial
// append is returned alongside it so the caller can still recycle b.
func (u Update) AppendBinary(b []byte) ([]byte, error) {
	b = appendU16(b, uint16(len(u.Withdrawn)))
	for _, p := range u.Withdrawn {
		pb, err := p.MarshalBinary()
		if err != nil {
			return b, err
		}
		b = appendU16Bytes(b, pb)
	}
	b = appendU16(b, uint16(len(u.Announced)))
	for _, r := range u.Announced {
		rb, err := r.MarshalBinary()
		if err != nil {
			return b, err
		}
		b = appendU16Bytes(b, rb)
	}
	b = appendU16(b, uint16(len(u.Attachments)))
	for _, k := range sortedKeys(u.Attachments) {
		b = appendU16Bytes(b, []byte(k))
		b = appendU32Bytes(b, u.Attachments[k])
	}
	return b, nil
}

// UnmarshalBinary decodes the UPDATE body.
func (u *Update) UnmarshalBinary(b []byte) error {
	var out Update
	rd := &reader{b: b}
	nw, err := rd.u16()
	if err != nil {
		return err
	}
	for i := 0; i < int(nw); i++ {
		pb, err := rd.u16Bytes()
		if err != nil {
			return err
		}
		var p prefix.Prefix
		if err := p.UnmarshalBinary(pb); err != nil {
			return err
		}
		out.Withdrawn = append(out.Withdrawn, p)
	}
	na, err := rd.u16()
	if err != nil {
		return err
	}
	for i := 0; i < int(na); i++ {
		rb, err := rd.u16Bytes()
		if err != nil {
			return err
		}
		var r route.Route
		if err := r.UnmarshalBinary(rb); err != nil {
			return err
		}
		out.Announced = append(out.Announced, r)
	}
	nat, err := rd.u16()
	if err != nil {
		return err
	}
	if nat > 0 {
		out.Attachments = make(map[string][]byte, nat)
		for i := 0; i < int(nat); i++ {
			k, err := rd.u16Bytes()
			if err != nil {
				return err
			}
			v, err := rd.u32Bytes()
			if err != nil {
				return err
			}
			out.Attachments[string(k)] = append([]byte(nil), v...)
		}
	}
	if rd.len() != 0 {
		return fmt.Errorf("%w: %d trailing bytes", ErrBadMessage, rd.len())
	}
	*u = out
	return nil
}

// Notification reports a fatal session error.
type Notification struct {
	Code    uint8
	Subcode uint8
	Data    []byte
}

// Notification codes (subset of RFC 4271 §4.5).
const (
	NotifyMsgHeaderError  = 1
	NotifyOpenError       = 2
	NotifyUpdateError     = 3
	NotifyHoldTimeExpired = 4
	NotifyFSMError        = 5
	NotifyCease           = 6
)

// MarshalBinary encodes the NOTIFICATION body.
func (n Notification) MarshalBinary() ([]byte, error) {
	return n.AppendBinary(nil)
}

// AppendBinary appends the NOTIFICATION body encoding to b.
func (n Notification) AppendBinary(b []byte) ([]byte, error) {
	b = append(b, n.Code, n.Subcode)
	return append(b, n.Data...), nil
}

// UnmarshalBinary decodes the NOTIFICATION body.
func (n *Notification) UnmarshalBinary(b []byte) error {
	if len(b) < 2 {
		return fmt.Errorf("%w: NOTIFICATION length %d", ErrBadMessage, len(b))
	}
	n.Code, n.Subcode = b[0], b[1]
	n.Data = append([]byte(nil), b[2:]...)
	return nil
}

// --- small wire helpers ---

func appendU16(b []byte, v uint16) []byte {
	return append(b, byte(v>>8), byte(v))
}

func appendU16Bytes(b, p []byte) []byte {
	b = appendU16(b, uint16(len(p)))
	return append(b, p...)
}

func appendU32Bytes(b, p []byte) []byte {
	b = binary.BigEndian.AppendUint32(b, uint32(len(p)))
	return append(b, p...)
}

func sortedKeys(m map[string][]byte) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

type reader struct{ b []byte }

func (r *reader) len() int { return len(r.b) }

func (r *reader) u16() (uint16, error) {
	if len(r.b) < 2 {
		return 0, fmt.Errorf("%w: short u16", ErrBadMessage)
	}
	v := binary.BigEndian.Uint16(r.b)
	r.b = r.b[2:]
	return v, nil
}

func (r *reader) u32() (uint32, error) {
	if len(r.b) < 4 {
		return 0, fmt.Errorf("%w: short u32", ErrBadMessage)
	}
	v := binary.BigEndian.Uint32(r.b)
	r.b = r.b[4:]
	return v, nil
}

func (r *reader) take(n int) ([]byte, error) {
	if n < 0 || len(r.b) < n {
		return nil, fmt.Errorf("%w: short field", ErrBadMessage)
	}
	out := r.b[:n]
	r.b = r.b[n:]
	return out, nil
}

func (r *reader) u16Bytes() ([]byte, error) {
	n, err := r.u16()
	if err != nil {
		return nil, err
	}
	return r.take(int(n))
}

func (r *reader) u32Bytes() ([]byte, error) {
	n, err := r.u32()
	if err != nil {
		return nil, err
	}
	return r.take(int(n))
}
