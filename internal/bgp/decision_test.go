package bgp

import (
	"math/rand"
	"testing"

	"pvr/internal/aspath"
	"pvr/internal/route"
)

func lr(from aspath.ASN, r route.Route) LearnedRoute { return LearnedRoute{From: from, Route: r} }

func TestDecisionLocalPrefWins(t *testing.T) {
	var d DecisionConfig
	a := lr(1, testRoute("10.0.0.0/8", 1, 2, 3).WithLocalPref(200)) // longer path, higher pref
	b := lr(2, testRoute("10.0.0.0/8", 2).WithLocalPref(100))
	if !d.Better(a, b) || d.Better(b, a) {
		t.Error("LOCAL_PREF should dominate path length")
	}
}

func TestDecisionPathLength(t *testing.T) {
	var d DecisionConfig
	a := lr(1, testRoute("10.0.0.0/8", 1, 2, 3))
	b := lr(2, testRoute("10.0.0.0/8", 2, 3))
	if !d.Better(b, a) {
		t.Error("shorter path should win")
	}
}

func TestDecisionOrigin(t *testing.T) {
	var d DecisionConfig
	ra := testRoute("10.0.0.0/8", 1)
	ra.Origin = route.OriginEGP
	rb := testRoute("10.0.0.0/8", 2)
	rb.Origin = route.OriginIGP
	if !d.Better(lr(2, rb), lr(1, ra)) {
		t.Error("lower origin should win")
	}
}

func TestDecisionMEDOnlySameNeighbor(t *testing.T) {
	var d DecisionConfig
	// Same neighbor AS (path head 7), different MED.
	ra := testRoute("10.0.0.0/8", 7)
	ra.MED = 10
	rb := testRoute("10.0.0.0/8", 7)
	rb.MED = 5
	// Give them different From so the final tie-break doesn't mask MED.
	if !d.Better(lr(9, rb), lr(3, ra)) {
		t.Error("lower MED from same neighbor AS should win")
	}
	// Different neighbor AS: MED ignored, falls to lowest From.
	rc := testRoute("10.0.0.0/8", 8)
	rc.MED = 1000
	if !d.Better(lr(3, ra), lr(9, rc)) {
		t.Error("MED across different ASes should be ignored (lowest peer wins)")
	}
	// With CompareMEDAlways, MED compares across ASes.
	always := DecisionConfig{CompareMEDAlways: true}
	if !always.Better(lr(3, ra), lr(9, rc)) {
		t.Error("always-compare-med: lower MED should win")
	}
	rd := testRoute("10.0.0.0/8", 8)
	rd.MED = 1
	if !always.Better(lr(9, rd), lr(3, ra)) {
		t.Error("always-compare-med: lower MED should win regardless of peer")
	}
}

func TestDecisionPeerTieBreak(t *testing.T) {
	var d DecisionConfig
	a := lr(5, testRoute("10.0.0.0/8", 5))
	b := lr(3, testRoute("10.0.0.0/8", 3))
	if !d.Better(b, a) {
		t.Error("lowest peer ASN should break ties")
	}
}

func TestSelectBest(t *testing.T) {
	var d DecisionConfig
	if _, ok := d.SelectBest(nil); ok {
		t.Error("SelectBest of empty should be not-ok")
	}
	cands := []LearnedRoute{
		lr(1, testRoute("10.0.0.0/8", 1, 9, 9)),
		lr(2, testRoute("10.0.0.0/8", 2, 9)), // shortest
		lr(3, testRoute("10.0.0.0/8", 3, 9, 9)),
	}
	best, ok := d.SelectBest(cands)
	if !ok || best.From != 2 {
		t.Errorf("best = %v, %v", best.From, ok)
	}
}

// TestDecisionTotalOrder verifies Better is a strict total order over
// candidates with distinct peers: antisymmetric and transitive, so
// SelectBest is order-independent.
func TestDecisionTotalOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var d DecisionConfig
	mk := func(i int) LearnedRoute {
		n := rng.Intn(4) + 1
		asns := make([]aspath.ASN, n)
		for j := range asns {
			asns[j] = aspath.ASN(rng.Intn(5) + 1)
		}
		r := testRoute("10.0.0.0/8", asns...)
		r.LocalPref = uint32(rng.Intn(3)) * 100
		r.MED = uint32(rng.Intn(3))
		r.Origin = route.Origin(rng.Intn(3))
		return lr(aspath.ASN(i+1), r)
	}
	for trial := 0; trial < 200; trial++ {
		cands := make([]LearnedRoute, 5)
		for i := range cands {
			cands[i] = mk(i)
		}
		// Antisymmetry.
		for i := range cands {
			for j := range cands {
				if i == j {
					continue
				}
				if d.Better(cands[i], cands[j]) == d.Better(cands[j], cands[i]) {
					t.Fatalf("not antisymmetric: %v vs %v", cands[i], cands[j])
				}
			}
		}
		// Order independence of SelectBest.
		best1, _ := d.SelectBest(cands)
		shuffled := append([]LearnedRoute(nil), cands...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		best2, _ := d.SelectBest(shuffled)
		if best1.From != best2.From {
			t.Fatalf("SelectBest order-dependent: %v vs %v", best1.From, best2.From)
		}
	}
}
