package bgp

import (
	"testing"

	"pvr/internal/aspath"
	"pvr/internal/community"
	"pvr/internal/prefix"
)

func TestMatches(t *testing.T) {
	r := testRoute("203.0.113.0/24", 64500, 64501).WithCommunity(community.Make(64500, 1))
	cases := []struct {
		m    Match
		want bool
	}{
		{MatchPrefixWithin{prefix.MustParse("203.0.0.0/16")}, true},
		{MatchPrefixWithin{prefix.MustParse("10.0.0.0/8")}, false},
		{MatchPrefixExact{prefix.MustParse("203.0.113.0/24")}, true},
		{MatchPrefixExact{prefix.MustParse("203.0.0.0/16")}, false},
		{MatchCommunity{community.Make(64500, 1)}, true},
		{MatchCommunity{community.NoExport}, false},
		{MatchPathContains{64501}, true},
		{MatchPathContains{64999}, false},
		{MatchMaxPathLen{2}, true},
		{MatchMaxPathLen{1}, false},
		{MatchNextHopFrom{64500}, true},
		{MatchNextHopFrom{64501}, false},
		{MatchAny{}, true},
	}
	for _, c := range cases {
		if got := c.m.MatchRoute(r); got != c.want {
			t.Errorf("%s = %v, want %v", c.m, got, c.want)
		}
		if c.m.String() == "" {
			t.Errorf("%T has empty String", c.m)
		}
	}
}

func TestActions(t *testing.T) {
	r := testRoute("203.0.113.0/24", 64500)

	out, err := SetLocalPref{Value: 200}.Apply(r)
	if err != nil || out.LocalPref != 200 {
		t.Errorf("SetLocalPref: %v %v", out.LocalPref, err)
	}
	out, err = AddCommunity{community.NoExport}.Apply(r)
	if err != nil || !out.Communities.Has(community.NoExport) {
		t.Errorf("AddCommunity: %v", err)
	}
	out, err = DelCommunity{community.NoExport}.Apply(out)
	if err != nil || out.Communities.Has(community.NoExport) {
		t.Errorf("DelCommunity: %v", err)
	}
	out, err = PrependSelf{ASN: 64999, N: 2}.Apply(r)
	if err != nil || out.PathLen() != 3 {
		t.Errorf("PrependSelf: len=%d %v", out.PathLen(), err)
	}
	out, err = SetMED{Value: 42}.Apply(r)
	if err != nil || out.MED != 42 {
		t.Errorf("SetMED: %v %v", out.MED, err)
	}
	// Original untouched throughout.
	if r.LocalPref != 100 || r.PathLen() != 1 || r.MED != 0 {
		t.Error("actions mutated input")
	}
}

func TestPolicyTermOrderAndDefault(t *testing.T) {
	pol := &Policy{
		Name: "partial-transit",
		Terms: []Term{
			{
				Matches: []Match{MatchCommunity{community.NoExport}},
				Result:  Reject,
			},
			{
				Matches: []Match{MatchPrefixWithin{prefix.MustParse("203.0.0.0/8")}},
				Actions: []Action{SetLocalPref{Value: 300}},
				Result:  Accept,
			},
		},
		Default: Reject,
	}
	// First term rejects tagged routes.
	tagged := testRoute("203.0.113.0/24", 1).WithCommunity(community.NoExport)
	if _, ok, err := pol.Apply(tagged); ok || err != nil {
		t.Errorf("tagged: ok=%v err=%v", ok, err)
	}
	// Second term accepts and rewrites.
	in := testRoute("203.0.113.0/24", 1)
	out, ok, err := pol.Apply(in)
	if !ok || err != nil || out.LocalPref != 300 {
		t.Errorf("in-range: ok=%v lp=%d err=%v", ok, out.LocalPref, err)
	}
	// Default rejects everything else.
	if _, ok, _ := pol.Apply(testRoute("10.0.0.0/8", 1)); ok {
		t.Error("default reject not applied")
	}
}

func TestPolicyNextFallsThrough(t *testing.T) {
	pol := &Policy{
		Name: "tag-then-accept",
		Terms: []Term{
			{ // tag everything, keep evaluating
				Actions: []Action{AddCommunity{community.Make(64500, 99)}},
				Result:  Next,
			},
			{
				Matches: []Match{MatchCommunity{community.Make(64500, 99)}},
				Result:  Accept,
			},
		},
		Default: Reject,
	}
	out, ok, err := pol.Apply(testRoute("10.0.0.0/8", 1))
	if !ok || err != nil {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if !out.Communities.Has(community.Make(64500, 99)) {
		t.Error("rewrite from Next term lost")
	}
}

func TestPolicyNilAcceptsUnchanged(t *testing.T) {
	var pol *Policy
	in := testRoute("10.0.0.0/8", 1)
	out, ok, err := pol.Apply(in)
	if !ok || err != nil || !out.Equal(in) {
		t.Error("nil policy should accept unchanged")
	}
}

func TestAcceptAllRejectAll(t *testing.T) {
	in := testRoute("10.0.0.0/8", 1)
	if _, ok, _ := AcceptAll().Apply(in); !ok {
		t.Error("AcceptAll rejected")
	}
	if _, ok, _ := RejectAll().Apply(in); ok {
		t.Error("RejectAll accepted")
	}
}

func TestPolicyActionError(t *testing.T) {
	// Prepending past MaxLength errors; policy must surface it.
	long := make([]aspath.ASN, aspath.MaxLength)
	for i := range long {
		long[i] = aspath.ASN(i + 1)
	}
	r := testRoute("10.0.0.0/8", long...)
	pol := &Policy{
		Name:    "over-prepend",
		Terms:   []Term{{Actions: []Action{PrependSelf{ASN: 9, N: 5}}, Result: Accept}},
		Default: Accept,
	}
	if _, _, err := pol.Apply(r); err == nil {
		t.Error("action error swallowed")
	}
}

func TestPolicyString(t *testing.T) {
	pol := &Policy{
		Name: "x",
		Terms: []Term{
			{Matches: []Match{MatchAny{}}, Actions: []Action{SetMED{1}}, Result: Accept},
			{Result: Reject},
		},
		Default: Reject,
	}
	s := pol.String()
	if s == "" || pol == nil {
		t.Error("empty String")
	}
	var nilPol *Policy
	if nilPol.String() == "" {
		t.Error("nil policy String empty")
	}
	if Next.String() != "next" || Accept.String() != "accept" || Reject.String() != "reject" {
		t.Error("disposition names wrong")
	}
}
