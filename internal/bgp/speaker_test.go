package bgp

import (
	"errors"
	"net/netip"
	"testing"

	"pvr/internal/aspath"
	"pvr/internal/community"
	"pvr/internal/prefix"
	"pvr/internal/route"
)

func mustSpeaker(t *testing.T, asn aspath.ASN, peers ...PeerConfig) *Speaker {
	t.Helper()
	s, err := NewSpeaker(Config{
		ASN:      asn,
		RouterID: uint32(asn),
		NextHop:  netip.AddrFrom4([4]byte{10, 0, byte(asn >> 8), byte(asn)}),
		Peers:    peers,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// pump delivers queued updates between speakers until quiescence,
// returning the number of update messages exchanged.
func pump(t *testing.T, speakers map[aspath.ASN]*Speaker) int {
	t.Helper()
	msgs := 0
	for round := 0; round < 1000; round++ {
		moved := false
		for _, s := range speakers {
			for _, pu := range s.Drain() {
				dst, ok := speakers[pu.Peer]
				if !ok {
					continue // peer not simulated
				}
				msgs++
				if err := dst.HandleUpdate(s.ASN(), pu.Update); err != nil {
					t.Fatalf("%s -> %s: %v", s.ASN(), pu.Peer, err)
				}
				moved = true
			}
		}
		if !moved {
			return msgs
		}
	}
	t.Fatal("did not converge in 1000 rounds")
	return msgs
}

func TestNewSpeakerValidation(t *testing.T) {
	if _, err := NewSpeaker(Config{}); err == nil {
		t.Error("zero config accepted")
	}
	if _, err := NewSpeaker(Config{ASN: 1}); err == nil {
		t.Error("missing next hop accepted")
	}
	nh := netip.MustParseAddr("10.0.0.1")
	if _, err := NewSpeaker(Config{ASN: 1, NextHop: nh, Peers: []PeerConfig{{ASN: 1}}}); err == nil {
		t.Error("self peer accepted")
	}
	if _, err := NewSpeaker(Config{ASN: 1, NextHop: nh, Peers: []PeerConfig{{ASN: 2}, {ASN: 2}}}); err == nil {
		t.Error("duplicate peer accepted")
	}
}

func TestLinePropagation(t *testing.T) {
	// AS1 -- AS2 -- AS3: origin at AS1 must reach AS3 with path "2 1".
	s1 := mustSpeaker(t, 1, PeerConfig{ASN: 2})
	s2 := mustSpeaker(t, 2, PeerConfig{ASN: 1}, PeerConfig{ASN: 3})
	s3 := mustSpeaker(t, 3, PeerConfig{ASN: 2})
	net := map[aspath.ASN]*Speaker{1: s1, 2: s2, 3: s3}

	p := prefix.MustParse("203.0.113.0/24")
	if err := s1.Originate(p); err != nil {
		t.Fatal(err)
	}
	pump(t, net)

	best, ok := s3.Best(p)
	if !ok {
		t.Fatal("AS3 has no route")
	}
	if best.From != 2 || best.Route.Path.String() != "2 1" {
		t.Errorf("AS3 best: from %v path %s", best.From, best.Route.Path)
	}
	// AS2 must not re-advertise the route back to AS1.
	if _, ok := s1.adjIn.Get(2, p); ok {
		t.Error("route echoed back to originator")
	}
}

func TestWithdrawPropagates(t *testing.T) {
	s1 := mustSpeaker(t, 1, PeerConfig{ASN: 2})
	s2 := mustSpeaker(t, 2, PeerConfig{ASN: 1}, PeerConfig{ASN: 3})
	s3 := mustSpeaker(t, 3, PeerConfig{ASN: 2})
	net := map[aspath.ASN]*Speaker{1: s1, 2: s2, 3: s3}

	p := prefix.MustParse("203.0.113.0/24")
	if err := s1.Originate(p); err != nil {
		t.Fatal(err)
	}
	pump(t, net)
	s1.WithdrawOrigin(p)
	pump(t, net)

	if _, ok := s2.Best(p); ok {
		t.Error("AS2 still has route after withdraw")
	}
	if _, ok := s3.Best(p); ok {
		t.Error("AS3 still has route after withdraw")
	}
	if s3.LocRIBLen() != 0 {
		t.Error("AS3 Loc-RIB not empty")
	}
}

func TestShortestPathPreferredInDiamond(t *testing.T) {
	// Diamond: 1 origin; 1–2–4 and 1–3a–3b–4 (longer). AS4 must pick via 2.
	s1 := mustSpeaker(t, 1, PeerConfig{ASN: 2}, PeerConfig{ASN: 30})
	s2 := mustSpeaker(t, 2, PeerConfig{ASN: 1}, PeerConfig{ASN: 4})
	s30 := mustSpeaker(t, 30, PeerConfig{ASN: 1}, PeerConfig{ASN: 31})
	s31 := mustSpeaker(t, 31, PeerConfig{ASN: 30}, PeerConfig{ASN: 4})
	s4 := mustSpeaker(t, 4, PeerConfig{ASN: 2}, PeerConfig{ASN: 31})
	net := map[aspath.ASN]*Speaker{1: s1, 2: s2, 30: s30, 31: s31, 4: s4}

	p := prefix.MustParse("198.51.100.0/24")
	if err := s1.Originate(p); err != nil {
		t.Fatal(err)
	}
	pump(t, net)

	best, ok := s4.Best(p)
	if !ok {
		t.Fatal("AS4 has no route")
	}
	if best.From != 2 {
		t.Errorf("AS4 best from %v, want 2 (shortest path)", best.From)
	}
	if best.Route.PathLen() != 2 {
		t.Errorf("AS4 path length %d, want 2", best.Route.PathLen())
	}
	// Both candidates present in Adj-RIB-In.
	if got := len(s4.Candidates(p)); got != 2 {
		t.Errorf("AS4 candidates = %d, want 2", got)
	}
}

func TestFailoverToLongerPath(t *testing.T) {
	s1 := mustSpeaker(t, 1, PeerConfig{ASN: 2}, PeerConfig{ASN: 30})
	s2 := mustSpeaker(t, 2, PeerConfig{ASN: 1}, PeerConfig{ASN: 4})
	s30 := mustSpeaker(t, 30, PeerConfig{ASN: 1}, PeerConfig{ASN: 31})
	s31 := mustSpeaker(t, 31, PeerConfig{ASN: 30}, PeerConfig{ASN: 4})
	s4 := mustSpeaker(t, 4, PeerConfig{ASN: 2}, PeerConfig{ASN: 31})
	net := map[aspath.ASN]*Speaker{1: s1, 2: s2, 30: s30, 31: s31, 4: s4}

	p := prefix.MustParse("198.51.100.0/24")
	if err := s1.Originate(p); err != nil {
		t.Fatal(err)
	}
	pump(t, net)

	// Short path dies: AS4 drops its session to AS2.
	s4.DropPeer(2)
	pump(t, net)

	best, ok := s4.Best(p)
	if !ok {
		t.Fatal("AS4 lost the route entirely")
	}
	if best.From != 31 || best.Route.PathLen() != 3 {
		t.Errorf("AS4 failover: from %v len %d", best.From, best.Route.PathLen())
	}
}

func TestLoopPreventionDropsOwnASN(t *testing.T) {
	// A route whose path already contains the local AS must be dropped,
	// counted, and never installed.
	s := mustSpeaker(t, 2, PeerConfig{ASN: 1})
	looped := testRoute("203.0.113.0/24", 1, 7, 2, 9)
	if err := s.HandleUpdate(1, Update{Announced: []route.Route{looped}}); err != nil {
		t.Fatal(err)
	}
	if s.Stats.LoopsDropped != 1 {
		t.Errorf("LoopsDropped = %d, want 1", s.Stats.LoopsDropped)
	}
	if _, ok := s.Best(looped.Prefix); ok {
		t.Error("looped route installed")
	}
}

func TestTriangleConverges(t *testing.T) {
	// Triangle 1-2-3: propagation must reach quiescence and both neighbors
	// must prefer the direct route from the originator.
	s1 := mustSpeaker(t, 1, PeerConfig{ASN: 2}, PeerConfig{ASN: 3})
	s2 := mustSpeaker(t, 2, PeerConfig{ASN: 1}, PeerConfig{ASN: 3})
	s3 := mustSpeaker(t, 3, PeerConfig{ASN: 1}, PeerConfig{ASN: 2})
	net := map[aspath.ASN]*Speaker{1: s1, 2: s2, 3: s3}

	p := prefix.MustParse("203.0.113.0/24")
	if err := s1.Originate(p); err != nil {
		t.Fatal(err)
	}
	pump(t, net) // must terminate: loop prevention guarantees quiescence

	b2, _ := s2.Best(p)
	b3, _ := s3.Best(p)
	if b2.From != 1 || b3.From != 1 {
		t.Errorf("bests: AS2 from %v, AS3 from %v", b2.From, b3.From)
	}
}

func TestImportPolicyFilters(t *testing.T) {
	// AS2 rejects everything under 10.0.0.0/8 from AS1.
	imp := &Policy{
		Name: "no-ten",
		Terms: []Term{
			{Matches: []Match{MatchPrefixWithin{prefix.MustParse("10.0.0.0/8")}}, Result: Reject},
		},
		Default: Accept,
	}
	s1 := mustSpeaker(t, 1, PeerConfig{ASN: 2})
	s2 := mustSpeaker(t, 2, PeerConfig{ASN: 1, Import: imp})
	net := map[aspath.ASN]*Speaker{1: s1, 2: s2}

	if err := s1.Originate(prefix.MustParse("10.1.0.0/16")); err != nil {
		t.Fatal(err)
	}
	if err := s1.Originate(prefix.MustParse("203.0.113.0/24")); err != nil {
		t.Fatal(err)
	}
	pump(t, net)

	if _, ok := s2.Best(prefix.MustParse("10.1.0.0/16")); ok {
		t.Error("filtered route installed")
	}
	if _, ok := s2.Best(prefix.MustParse("203.0.113.0/24")); !ok {
		t.Error("unfiltered route missing")
	}
	if s2.Stats.RoutesRejected == 0 {
		t.Error("no rejects counted")
	}
}

func TestExportPolicyTagsAndFilters(t *testing.T) {
	// AS2 exports to AS3 only routes without no-export, and tags exports.
	exp := &Policy{
		Name: "honor-no-export",
		Terms: []Term{
			{Matches: []Match{MatchCommunity{community.NoExport}}, Result: Reject},
			{Actions: []Action{AddCommunity{community.Make(2, 100)}}, Result: Accept},
		},
		Default: Reject,
	}
	impTag := &Policy{ // AS2 tags routes for 10/8 with no-export at import
		Name: "tag-ten",
		Terms: []Term{
			{
				Matches: []Match{MatchPrefixWithin{prefix.MustParse("10.0.0.0/8")}},
				Actions: []Action{AddCommunity{community.NoExport}},
				Result:  Accept,
			},
		},
		Default: Accept,
	}
	s1 := mustSpeaker(t, 1, PeerConfig{ASN: 2})
	s2 := mustSpeaker(t, 2, PeerConfig{ASN: 1, Import: impTag}, PeerConfig{ASN: 3, Export: exp})
	s3 := mustSpeaker(t, 3, PeerConfig{ASN: 2})
	net := map[aspath.ASN]*Speaker{1: s1, 2: s2, 3: s3}

	if err := s1.Originate(prefix.MustParse("10.1.0.0/16")); err != nil {
		t.Fatal(err)
	}
	if err := s1.Originate(prefix.MustParse("203.0.113.0/24")); err != nil {
		t.Fatal(err)
	}
	pump(t, net)

	if _, ok := s3.Best(prefix.MustParse("10.1.0.0/16")); ok {
		t.Error("no-export route leaked to AS3")
	}
	best, ok := s3.Best(prefix.MustParse("203.0.113.0/24"))
	if !ok {
		t.Fatal("allowed route missing at AS3")
	}
	if !best.Route.Communities.Has(community.Make(2, 100)) {
		t.Error("export tag missing")
	}
}

func TestHandleUpdateValidation(t *testing.T) {
	s := mustSpeaker(t, 2, PeerConfig{ASN: 1})
	// Unknown peer.
	err := s.HandleUpdate(9, Update{})
	if !errors.Is(err, ErrUnknownPeer) {
		t.Errorf("unknown peer: %v", err)
	}
	// First-AS mismatch: peer 1 announces a path starting with 7.
	err = s.HandleUpdate(1, Update{Announced: []route.Route{testRoute("10.0.0.0/8", 7)}})
	if !errors.Is(err, ErrBadFirstAS) {
		t.Errorf("first-AS: %v", err)
	}
	// Invalid route.
	err = s.HandleUpdate(1, Update{Announced: []route.Route{{}}})
	if err == nil {
		t.Error("invalid route accepted")
	}
}

func TestImplicitWithdrawReplaces(t *testing.T) {
	s := mustSpeaker(t, 2, PeerConfig{ASN: 1})
	p := prefix.MustParse("10.0.0.0/8")
	r1 := testRoute("10.0.0.0/8", 1, 5)
	if err := s.HandleUpdate(1, Update{Announced: []route.Route{r1}}); err != nil {
		t.Fatal(err)
	}
	r2 := testRoute("10.0.0.0/8", 1) // better replacement
	if err := s.HandleUpdate(1, Update{Announced: []route.Route{r2}}); err != nil {
		t.Fatal(err)
	}
	if got := len(s.Candidates(p)); got != 1 {
		t.Fatalf("candidates = %d, want 1 (implicit withdraw)", got)
	}
	best, _ := s.Best(p)
	if best.Route.PathLen() != 1 {
		t.Errorf("best len = %d, want replacement", best.Route.PathLen())
	}
}

func TestDrainCoalescesAndClears(t *testing.T) {
	s := mustSpeaker(t, 1, PeerConfig{ASN: 2})
	if err := s.Originate(prefix.MustParse("10.0.0.0/8")); err != nil {
		t.Fatal(err)
	}
	if err := s.Originate(prefix.MustParse("10.1.0.0/16")); err != nil {
		t.Fatal(err)
	}
	out := s.Drain()
	if len(out) != 1 {
		t.Fatalf("Drain = %d peer updates, want 1 (coalesced)", len(out))
	}
	if len(out[0].Update.Announced) != 2 {
		t.Errorf("announced = %d, want 2", len(out[0].Update.Announced))
	}
	if len(s.Drain()) != 0 {
		t.Error("second Drain not empty")
	}
	// Originate + withdraw in the same cycle nets out to nothing for a
	// prefix never advertised.
	p := prefix.MustParse("192.0.2.0/24")
	if err := s.Originate(p); err != nil {
		t.Fatal(err)
	}
	s.WithdrawOrigin(p)
	for _, pu := range s.Drain() {
		for _, w := range pu.Update.Withdrawn {
			if w == p {
				t.Error("withdraw sent for never-advertised prefix")
			}
		}
		for _, a := range pu.Update.Announced {
			if a.Prefix == p {
				t.Error("announce survived cancellation")
			}
		}
	}
}

func TestPeersSorted(t *testing.T) {
	s := mustSpeaker(t, 1, PeerConfig{ASN: 30}, PeerConfig{ASN: 2}, PeerConfig{ASN: 7})
	got := s.Peers()
	want := []aspath.ASN{2, 7, 30}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Peers = %v", got)
		}
	}
	if s.ASN() != 1 {
		t.Error("ASN wrong")
	}
	if s.DumpRIBs() == "" {
		t.Error("DumpRIBs empty")
	}
}
