package bgp

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"pvr/internal/netx"
)

// SessionState is the BGP finite-state machine state (RFC 4271 §8 reduced
// to the states reachable over an already-established transport).
type SessionState uint8

// FSM states.
const (
	StateIdle SessionState = iota
	StateOpenSent
	StateOpenConfirm
	StateEstablished
	StateClosed
)

// String names the state.
func (s SessionState) String() string {
	switch s {
	case StateIdle:
		return "Idle"
	case StateOpenSent:
		return "OpenSent"
	case StateOpenConfirm:
		return "OpenConfirm"
	case StateEstablished:
		return "Established"
	case StateClosed:
		return "Closed"
	}
	return fmt.Sprintf("state(%d)", uint8(s))
}

// Errors returned by sessions.
var (
	ErrSessionClosed = errors.New("bgp: session closed")
	ErrNotifyRecv    = errors.New("bgp: notification received")
	ErrFSM           = errors.New("bgp: FSM violation")
)

// SessionHooks receives session events; any hook may be nil.
type SessionHooks struct {
	// OnUpdate is called for each UPDATE received while Established.
	OnUpdate func(Update)
	// OnEstablished is called once when the handshake completes, with the
	// peer's OPEN parameters.
	OnEstablished func(Open)
	// OnClose is called once when the session ends, with the cause.
	OnClose func(error)
	// Metrics, when non-nil, receives session-plane counters; one instance
	// is typically shared by every session of a speaker.
	Metrics *Metrics
}

// Session runs the BGP FSM over a framed connection: OPEN exchange,
// keepalive generation, hold-timer enforcement, and update dispatch. It is
// safe for concurrent SendUpdate calls.
type Session struct {
	conn  netx.FrameConn
	local Open
	hooks SessionHooks

	mu     sync.Mutex
	state  SessionState
	peer   Open
	err    error
	closed chan struct{}
}

// NewSession wraps a connection; call Run to perform the handshake and
// pump messages. HoldTime 0 in local disables keepalives and hold timing
// (useful in tests). Any netx.FrameConn works: a TCP *netx.Conn, a
// net.Pipe half, or an in-memory transport connection.
func NewSession(conn netx.FrameConn, local Open, hooks SessionHooks) *Session {
	return &Session{conn: conn, local: local, hooks: hooks, closed: make(chan struct{})}
}

// State returns the current FSM state.
func (s *Session) State() SessionState {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state
}

// Peer returns the neighbor's OPEN parameters once Established.
func (s *Session) Peer() Open {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.peer
}

func (s *Session) setState(st SessionState) {
	s.mu.Lock()
	s.state = st
	s.mu.Unlock()
}

// RunContext is Run bounded by a context: when ctx is cancelled the
// session closes cleanly (CEASE, then transport teardown) and RunContext
// returns nil, exactly as if Close had been called. The watcher goroutine
// is released when the session ends for any other reason.
func (s *Session) RunContext(ctx context.Context) error {
	if ctx.Done() == nil {
		return s.Run()
	}
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-ctx.Done():
			s.Close()
		case <-stop:
		}
	}()
	return s.Run()
}

// Run performs the handshake and then pumps inbound messages until the
// session ends; it returns the terminal error (nil on clean Close). Run
// blocks; callers usually invoke it on its own goroutine.
func (s *Session) Run() error {
	err := s.handshake()
	if err != nil {
		// A Close (or RunContext cancellation) racing the handshake makes
		// Recv fail with a raw transport error; report the session closure
		// the caller itself initiated, exactly as pump does.
		select {
		case <-s.closed:
			err = ErrSessionClosed
		default:
		}
	} else {
		s.hooks.Metrics.sessionEstablished()
		if s.hooks.OnEstablished != nil {
			s.hooks.OnEstablished(s.Peer())
		}
		err = s.pump()
	}
	s.finish(err)
	if errors.Is(err, ErrSessionClosed) {
		return nil
	}
	return err
}

// handshake exchanges OPENs and confirming KEEPALIVEs. Sends run on their
// own goroutine so two symmetric peers over a rendezvous transport (e.g.
// net.Pipe) cannot deadlock each other.
func (s *Session) handshake() error {
	body, err := s.local.MarshalBinary()
	if err != nil {
		return err
	}
	s.setState(StateOpenSent)
	sendErr := make(chan error, 1)
	go func() {
		if err := s.conn.Send(netx.Frame{Type: uint8(MsgOpen), Payload: body}); err != nil {
			sendErr <- err
			return
		}
		sendErr <- s.conn.Send(netx.Frame{Type: uint8(MsgKeepalive)})
	}()
	f, err := s.conn.Recv()
	if err != nil {
		return err
	}
	if MsgType(f.Type) != MsgOpen {
		return fmt.Errorf("%w: expected OPEN, got %s", ErrFSM, MsgType(f.Type))
	}
	var peer Open
	if err := peer.UnmarshalBinary(f.Payload); err != nil {
		return err
	}
	s.mu.Lock()
	s.peer = peer
	s.state = StateOpenConfirm
	s.mu.Unlock()
	f, err = s.conn.Recv()
	if err != nil {
		return err
	}
	if MsgType(f.Type) != MsgKeepalive {
		return fmt.Errorf("%w: expected KEEPALIVE, got %s", ErrFSM, MsgType(f.Type))
	}
	if err := <-sendErr; err != nil {
		return err
	}
	s.setState(StateEstablished)
	return nil
}

func (s *Session) pump() error {
	hold := time.Duration(s.local.HoldTime) * time.Second
	stopKA := make(chan struct{})
	var kaWG sync.WaitGroup
	if hold > 0 {
		kaWG.Add(1)
		go func() {
			defer kaWG.Done()
			t := time.NewTicker(hold / 3)
			defer t.Stop()
			for {
				select {
				case <-stopKA:
					return
				case <-t.C:
					if err := s.conn.Send(netx.Frame{Type: uint8(MsgKeepalive)}); err != nil {
						return
					}
				}
			}
		}()
	}
	defer func() {
		close(stopKA)
		kaWG.Wait()
	}()

	for {
		if hold > 0 {
			if err := s.conn.SetDeadline(time.Now().Add(hold)); err != nil {
				return err
			}
		}
		f, err := s.conn.Recv()
		if err != nil {
			select {
			case <-s.closed:
				return ErrSessionClosed
			default:
			}
			return err
		}
		switch MsgType(f.Type) {
		case MsgKeepalive:
			// hold timer implicitly reset by the next SetDeadline
		case MsgUpdate:
			var u Update
			if err := u.UnmarshalBinary(f.Payload); err != nil {
				s.notify(Notification{Code: NotifyUpdateError})
				return err
			}
			s.hooks.Metrics.updateIn()
			if s.hooks.OnUpdate != nil {
				s.hooks.OnUpdate(u)
			}
		case MsgNotification:
			var n Notification
			if err := n.UnmarshalBinary(f.Payload); err != nil {
				return err
			}
			s.hooks.Metrics.notificationRecv()
			return fmt.Errorf("%w: code %d subcode %d", ErrNotifyRecv, n.Code, n.Subcode)
		default:
			s.notify(Notification{Code: NotifyMsgHeaderError})
			return fmt.Errorf("%w: unexpected %s", ErrFSM, MsgType(f.Type))
		}
	}
}

// SendUpdate transmits an UPDATE; the session must be Established. A
// session closed concurrently (Close, or pump teardown) yields
// ErrSessionClosed — never a panic, and never a raw transport error for
// the close the caller itself initiated.
func (s *Session) SendUpdate(u Update) error {
	if s.State() != StateEstablished {
		return fmt.Errorf("%w: state %s", ErrFSM, s.State())
	}
	select {
	case <-s.closed:
		return ErrSessionClosed
	default:
	}
	// Encode into a pooled buffer; SendPooled recycles it after the write
	// (FrameConn sends never retain the payload).
	body, err := u.AppendBinary(netx.GetBuf(256))
	if err != nil {
		netx.PutBuf(body)
		return err
	}
	if err := netx.SendPooled(s.conn, uint8(MsgUpdate), body); err != nil {
		// Close may have raced the write: report the session closure, not
		// the underlying "use of closed connection".
		select {
		case <-s.closed:
			return ErrSessionClosed
		default:
		}
		return err
	}
	s.hooks.Metrics.updateOut()
	return nil
}

// notify best-effort sends a NOTIFICATION before teardown.
func (s *Session) notify(n Notification) {
	if body, err := n.AppendBinary(netx.GetBuf(64)); err == nil {
		_ = netx.SendPooled(s.conn, uint8(MsgNotification), body)
	} else {
		netx.PutBuf(body)
	}
}

// Close ends the session with a best-effort CEASE notification. The
// notification is bounded by a short write deadline so Close can never
// hang on a peer that has stopped reading (it also unblocks any writer
// stuck mid-send on such a peer); the transport is then torn down.
func (s *Session) Close() {
	s.mu.Lock()
	select {
	case <-s.closed:
		s.mu.Unlock()
		return
	default:
		close(s.closed)
	}
	s.mu.Unlock()
	_ = s.conn.SetDeadline(time.Now().Add(200 * time.Millisecond))
	s.notify(Notification{Code: NotifyCease})
	_ = s.conn.Close()
}

func (s *Session) finish(err error) {
	s.hooks.Metrics.sessionClosed()
	s.setState(StateClosed)
	_ = s.conn.Close()
	s.mu.Lock()
	s.err = err
	s.mu.Unlock()
	if s.hooks.OnClose != nil {
		s.hooks.OnClose(err)
	}
}
