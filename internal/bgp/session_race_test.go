package bgp

import (
	"errors"
	"net/netip"
	"sync"
	"testing"
	"time"

	"pvr/internal/aspath"
	"pvr/internal/netx"
	"pvr/internal/prefix"
	"pvr/internal/route"
)

// establishPair brings up two sessions over an in-process pipe and waits
// for both to reach Established.
func establishPair(t *testing.T) (*Session, *Session) {
	t.Helper()
	ca, cb := netx.Pipe()
	a := NewSession(ca, Open{ASN: 64500, RouterID: 1}, SessionHooks{})
	b := NewSession(cb, Open{ASN: 64501, RouterID: 2}, SessionHooks{})
	go func() { _ = a.Run() }()
	go func() { _ = b.Run() }()
	deadline := time.Now().Add(5 * time.Second)
	for a.State() != StateEstablished || b.State() != StateEstablished {
		if time.Now().After(deadline) {
			t.Fatalf("handshake stalled: %s / %s", a.State(), b.State())
		}
		time.Sleep(time.Millisecond)
	}
	return a, b
}

// TestSessionCloseSendUpdateRace hammers SendUpdate from several
// goroutines while the session is closed mid-pump: every send must
// return either nil or a clean error (ErrSessionClosed / ErrFSM) — no
// panic, no deadlock, no raw transport error for the close the caller
// itself initiated. Run under -race.
func TestSessionCloseSendUpdateRace(t *testing.T) {
	for round := 0; round < 8; round++ {
		a, b := establishPair(t)
		u := Update{Announced: []route.Route{{
			Prefix:  prefix.MustParse("203.0.113.0/24"),
			Path:    aspath.New(64500),
			NextHop: netip.AddrFrom4([4]byte{192, 0, 2, 1}),
		}}}

		const senders = 4
		var wg sync.WaitGroup
		errs := make(chan error, senders*64)
		start := make(chan struct{})
		for w := 0; w < senders; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				for i := 0; i < 64; i++ {
					if err := a.SendUpdate(u); err != nil {
						errs <- err
						return
					}
				}
			}()
		}
		done := make(chan struct{})
		go func() {
			close(start)
			a.Close() // races the senders
			close(done)
		}()

		waited := make(chan struct{})
		go func() { wg.Wait(); close(waited) }()
		select {
		case <-waited:
		case <-time.After(10 * time.Second):
			t.Fatal("senders deadlocked against Close")
		}
		<-done
		close(errs)
		for err := range errs {
			if !errors.Is(err, ErrSessionClosed) && !errors.Is(err, ErrFSM) {
				t.Fatalf("round %d: send after close returned %v, want ErrSessionClosed or ErrFSM", round, err)
			}
		}
		b.Close()
	}
}

// TestSessionSendAfterCloseIsClean: after Close has returned, SendUpdate
// must deterministically fail with a clean error.
func TestSessionSendAfterCloseIsClean(t *testing.T) {
	a, b := establishPair(t)
	defer b.Close()
	a.Close()
	u := Update{Withdrawn: []prefix.Prefix{prefix.MustParse("203.0.113.0/24")}}
	err := a.SendUpdate(u)
	if err == nil {
		t.Fatal("SendUpdate succeeded on a closed session")
	}
	if !errors.Is(err, ErrSessionClosed) && !errors.Is(err, ErrFSM) {
		t.Fatalf("SendUpdate after Close = %v, want ErrSessionClosed or ErrFSM", err)
	}
	// Close is idempotent even with sends in flight.
	a.Close()
}
