package bgp

import (
	"fmt"
	"strings"

	"pvr/internal/aspath"
	"pvr/internal/community"
	"pvr/internal/prefix"
	"pvr/internal/route"
)

// Disposition is a policy term's verdict on a route.
type Disposition uint8

// Dispositions: Accept exports/imports the (possibly rewritten) route,
// Reject drops it, Next falls through to the following term.
const (
	Next Disposition = iota
	Accept
	Reject
)

// String names the disposition.
func (d Disposition) String() string {
	switch d {
	case Next:
		return "next"
	case Accept:
		return "accept"
	case Reject:
		return "reject"
	}
	return fmt.Sprintf("disposition(%d)", uint8(d))
}

// Match is a route predicate usable in a policy term.
type Match interface {
	// MatchRoute reports whether the route satisfies the predicate.
	MatchRoute(r route.Route) bool
	// String renders a router-config-style description.
	String() string
}

// Action rewrites a route's attributes.
type Action interface {
	// Apply returns the rewritten route (routes are immutable values).
	Apply(r route.Route) (route.Route, error)
	// String renders a router-config-style description.
	String() string
}

// --- matches ---

// MatchPrefixWithin matches routes whose prefix lies inside Within.
type MatchPrefixWithin struct{ Within prefix.Prefix }

// MatchRoute implements Match.
func (m MatchPrefixWithin) MatchRoute(r route.Route) bool { return m.Within.Contains(r.Prefix) }

func (m MatchPrefixWithin) String() string { return fmt.Sprintf("prefix within %s", m.Within) }

// MatchPrefixExact matches one exact prefix.
type MatchPrefixExact struct{ Prefix prefix.Prefix }

// MatchRoute implements Match.
func (m MatchPrefixExact) MatchRoute(r route.Route) bool { return r.Prefix == m.Prefix }

func (m MatchPrefixExact) String() string { return fmt.Sprintf("prefix %s", m.Prefix) }

// MatchCommunity matches routes tagged with a community.
type MatchCommunity struct{ C community.Community }

// MatchRoute implements Match.
func (m MatchCommunity) MatchRoute(r route.Route) bool { return r.Communities.Has(m.C) }

func (m MatchCommunity) String() string { return fmt.Sprintf("community %s", m.C) }

// MatchPathContains matches routes whose AS path traverses an AS.
type MatchPathContains struct{ ASN aspath.ASN }

// MatchRoute implements Match.
func (m MatchPathContains) MatchRoute(r route.Route) bool { return r.Path.Contains(m.ASN) }

func (m MatchPathContains) String() string { return fmt.Sprintf("as-path contains %s", m.ASN) }

// MatchMaxPathLen matches routes with AS-path length ≤ N.
type MatchMaxPathLen struct{ N int }

// MatchRoute implements Match.
func (m MatchMaxPathLen) MatchRoute(r route.Route) bool { return r.PathLen() <= m.N }

func (m MatchMaxPathLen) String() string { return fmt.Sprintf("as-path length <= %d", m.N) }

// MatchNextHopFrom matches routes learned from a given first-hop AS (the
// leftmost path element).
type MatchNextHopFrom struct{ ASN aspath.ASN }

// MatchRoute implements Match.
func (m MatchNextHopFrom) MatchRoute(r route.Route) bool {
	f, ok := r.Path.First()
	return ok && f == m.ASN
}

func (m MatchNextHopFrom) String() string { return fmt.Sprintf("learned-from %s", m.ASN) }

// MatchAny matches every route; useful as a policy's final catch-all term.
type MatchAny struct{}

// MatchRoute implements Match.
func (MatchAny) MatchRoute(route.Route) bool { return true }

func (MatchAny) String() string { return "any" }

// --- actions ---

// SetLocalPref sets LOCAL_PREF, the lever for Gao-Rexford route ranking.
type SetLocalPref struct{ Value uint32 }

// Apply implements Action.
func (a SetLocalPref) Apply(r route.Route) (route.Route, error) {
	return r.WithLocalPref(a.Value), nil
}

func (a SetLocalPref) String() string { return fmt.Sprintf("set local-pref %d", a.Value) }

// AddCommunity tags the route.
type AddCommunity struct{ C community.Community }

// Apply implements Action.
func (a AddCommunity) Apply(r route.Route) (route.Route, error) {
	return r.WithCommunity(a.C), nil
}

func (a AddCommunity) String() string { return fmt.Sprintf("add community %s", a.C) }

// DelCommunity removes a tag.
type DelCommunity struct{ C community.Community }

// Apply implements Action.
func (a DelCommunity) Apply(r route.Route) (route.Route, error) {
	r.Communities = r.Communities.Remove(a.C)
	return r, nil
}

func (a DelCommunity) String() string { return fmt.Sprintf("del community %s", a.C) }

// PrependSelf prepends the local AS N extra times (traffic engineering).
type PrependSelf struct {
	ASN aspath.ASN
	N   int
}

// Apply implements Action.
func (a PrependSelf) Apply(r route.Route) (route.Route, error) {
	p, err := r.Path.Prepend(a.ASN, a.N)
	if err != nil {
		return route.Route{}, err
	}
	r.Path = p
	return r, nil
}

func (a PrependSelf) String() string { return fmt.Sprintf("prepend %s x%d", a.ASN, a.N) }

// SetMED sets MULTI_EXIT_DISC.
type SetMED struct{ Value uint32 }

// Apply implements Action.
func (a SetMED) Apply(r route.Route) (route.Route, error) {
	r.MED = a.Value
	return r, nil
}

func (a SetMED) String() string { return fmt.Sprintf("set med %d", a.Value) }

// Term is one match–action clause: if all Matches hold, apply Actions and
// return Result (Next continues to the following term after the rewrite).
type Term struct {
	Matches []Match
	Actions []Action
	Result  Disposition
}

// Policy is an ordered list of terms with a default disposition, the shape
// of real router import/export policy chains.
type Policy struct {
	Name    string
	Terms   []Term
	Default Disposition
}

// AcceptAll is the identity policy.
func AcceptAll() *Policy { return &Policy{Name: "accept-all", Default: Accept} }

// RejectAll drops everything.
func RejectAll() *Policy { return &Policy{Name: "reject-all", Default: Reject} }

// Apply evaluates the policy on a route, returning the rewritten route and
// whether it was accepted. A nil policy accepts unchanged.
func (p *Policy) Apply(r route.Route) (route.Route, bool, error) {
	if p == nil {
		return r, true, nil
	}
	cur := r
	for ti, t := range p.Terms {
		matched := true
		for _, m := range t.Matches {
			if !m.MatchRoute(cur) {
				matched = false
				break
			}
		}
		if !matched {
			continue
		}
		for _, a := range t.Actions {
			var err error
			cur, err = a.Apply(cur)
			if err != nil {
				return route.Route{}, false, fmt.Errorf("bgp: policy %q term %d: %w", p.Name, ti, err)
			}
		}
		switch t.Result {
		case Accept:
			return cur, true, nil
		case Reject:
			return route.Route{}, false, nil
		}
	}
	if p.Default == Accept {
		return cur, true, nil
	}
	return route.Route{}, false, nil
}

// String renders the policy in a router-config-like layout.
func (p *Policy) String() string {
	if p == nil {
		return "policy <nil: accept-all>"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "policy %q {\n", p.Name)
	for i, t := range p.Terms {
		fmt.Fprintf(&b, "  term %d:", i)
		if len(t.Matches) == 0 {
			b.WriteString(" match any")
		}
		for _, m := range t.Matches {
			fmt.Fprintf(&b, " match(%s)", m)
		}
		for _, a := range t.Actions {
			fmt.Fprintf(&b, " then(%s)", a)
		}
		fmt.Fprintf(&b, " -> %s\n", t.Result)
	}
	fmt.Fprintf(&b, "  default -> %s\n}", p.Default)
	return b.String()
}
