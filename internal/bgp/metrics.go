package bgp

import (
	"pvr/internal/obs"
)

// Metrics aggregates session-plane counters across every session that
// shares it (hand one instance to all SessionHooks). A nil *Metrics is
// valid everywhere: every method is a no-op on it, so session code never
// branches on observability.
type Metrics struct {
	updatesIn   *obs.Counter
	updatesOut  *obs.Counter
	established *obs.Counter
	closed      *obs.Counter
	notifyRecv  *obs.Counter
}

// NewMetrics builds the session-plane counter set, exporting the families
// into r when it is non-nil.
func NewMetrics(r *obs.Registry) *Metrics {
	return &Metrics{
		updatesIn:   obs.NewCounter(r, "pvr_bgp_updates_in_total", "UPDATE messages received while Established"),
		updatesOut:  obs.NewCounter(r, "pvr_bgp_updates_out_total", "UPDATE messages sent"),
		established: obs.NewCounter(r, "pvr_bgp_sessions_established_total", "sessions that completed the OPEN handshake"),
		closed:      obs.NewCounter(r, "pvr_bgp_sessions_closed_total", "sessions ended, any cause"),
		notifyRecv:  obs.NewCounter(r, "pvr_bgp_notifications_recv_total", "NOTIFICATION messages received"),
	}
}

func (m *Metrics) updateIn() {
	if m != nil {
		m.updatesIn.Inc()
	}
}

func (m *Metrics) updateOut() {
	if m != nil {
		m.updatesOut.Inc()
	}
}

func (m *Metrics) sessionEstablished() {
	if m != nil {
		m.established.Inc()
	}
}

func (m *Metrics) sessionClosed() {
	if m != nil {
		m.closed.Inc()
	}
}

func (m *Metrics) notificationRecv() {
	if m != nil {
		m.notifyRecv.Inc()
	}
}
