package bgp

import (
	"net/netip"
	"testing"

	"pvr/internal/aspath"
	"pvr/internal/community"
	"pvr/internal/prefix"
	"pvr/internal/route"
)

func testRoute(pfx string, asns ...aspath.ASN) route.Route {
	return route.Route{
		Prefix:    prefix.MustParse(pfx),
		Path:      aspath.New(asns...),
		NextHop:   netip.MustParseAddr("192.0.2.1"),
		LocalPref: 100,
		Origin:    route.OriginIGP,
	}
}

func TestOpenRoundTrip(t *testing.T) {
	o := Open{ASN: 64500, HoldTime: 90, RouterID: 0x0A000001}
	b, err := o.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var got Open
	if err := got.UnmarshalBinary(b); err != nil {
		t.Fatal(err)
	}
	if got != o {
		t.Errorf("round trip %+v -> %+v", o, got)
	}
	if err := got.UnmarshalBinary(b[:5]); err == nil {
		t.Error("short OPEN accepted")
	}
	if err := got.UnmarshalBinary(append(b, 0)); err == nil {
		t.Error("long OPEN accepted")
	}
}

func TestUpdateRoundTrip(t *testing.T) {
	cases := []Update{
		{}, // empty update
		{Withdrawn: []prefix.Prefix{prefix.MustParse("10.0.0.0/8")}},
		{Announced: []route.Route{testRoute("203.0.113.0/24", 64500)}},
		{
			Withdrawn: []prefix.Prefix{prefix.MustParse("10.0.0.0/8"), prefix.MustParse("10.1.0.0/16")},
			Announced: []route.Route{
				testRoute("203.0.113.0/24", 64500, 64501),
				testRoute("198.51.100.0/24", 64500).WithCommunity(community.NoExport),
			},
			Attachments: map[string][]byte{
				"pvr/sig":    {1, 2, 3},
				"pvr/commit": {4, 5},
			},
		},
	}
	for i, u := range cases {
		b, err := u.MarshalBinary()
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		var got Update
		if err := got.UnmarshalBinary(b); err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if len(got.Withdrawn) != len(u.Withdrawn) || len(got.Announced) != len(u.Announced) {
			t.Fatalf("case %d: shape mismatch", i)
		}
		for j := range u.Withdrawn {
			if got.Withdrawn[j] != u.Withdrawn[j] {
				t.Errorf("case %d withdrawn %d mismatch", i, j)
			}
		}
		for j := range u.Announced {
			if !got.Announced[j].Equal(u.Announced[j]) {
				t.Errorf("case %d announced %d mismatch", i, j)
			}
		}
		for k, v := range u.Attachments {
			if string(got.Attachments[k]) != string(v) {
				t.Errorf("case %d attachment %q mismatch", i, k)
			}
		}
		// Canonical: re-marshal must be identical (attachments sorted).
		b2, err := got.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if string(b) != string(b2) {
			t.Errorf("case %d: non-canonical encoding", i)
		}
	}
}

func TestUpdateUnmarshalRejectsGarbage(t *testing.T) {
	u := Update{
		Withdrawn:   []prefix.Prefix{prefix.MustParse("10.0.0.0/8")},
		Announced:   []route.Route{testRoute("203.0.113.0/24", 64500)},
		Attachments: map[string][]byte{"k": {1}},
	}
	b, err := u.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var got Update
	for n := 0; n < len(b); n++ {
		if err := got.UnmarshalBinary(b[:n]); err == nil {
			t.Errorf("truncation to %d accepted", n)
		}
	}
	if err := got.UnmarshalBinary(append(b, 0)); err == nil {
		t.Error("trailing byte accepted")
	}
}

func TestNotificationRoundTrip(t *testing.T) {
	n := Notification{Code: NotifyCease, Subcode: 2, Data: []byte("bye")}
	b, err := n.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var got Notification
	if err := got.UnmarshalBinary(b); err != nil {
		t.Fatal(err)
	}
	if got.Code != n.Code || got.Subcode != n.Subcode || string(got.Data) != "bye" {
		t.Error("round trip mismatch")
	}
	if err := got.UnmarshalBinary([]byte{1}); err == nil {
		t.Error("short notification accepted")
	}
}

func TestMsgTypeString(t *testing.T) {
	for mt, want := range map[MsgType]string{
		MsgOpen: "OPEN", MsgUpdate: "UPDATE", MsgNotification: "NOTIFICATION", MsgKeepalive: "KEEPALIVE", MsgType(9): "type(9)",
	} {
		if mt.String() != want {
			t.Errorf("%d.String() = %q", mt, mt.String())
		}
	}
}
