package bgp

import (
	"errors"
	"testing"
	"time"

	"pvr/internal/netx"
	"pvr/internal/prefix"
	"pvr/internal/route"
)

func startPair(t *testing.T, holdA, holdB uint16) (sa, sb *Session, gotA, gotB chan Update, doneA, doneB chan error) {
	t.Helper()
	ca, cb := netx.Pipe()
	gotA, gotB = make(chan Update, 16), make(chan Update, 16)
	sa = NewSession(ca, Open{ASN: 64500, HoldTime: holdA, RouterID: 1}, SessionHooks{
		OnUpdate: func(u Update) { gotA <- u },
	})
	sb = NewSession(cb, Open{ASN: 64501, HoldTime: holdB, RouterID: 2}, SessionHooks{
		OnUpdate: func(u Update) { gotB <- u },
	})
	doneA, doneB = make(chan error, 1), make(chan error, 1)
	go func() { doneA <- sa.Run() }()
	go func() { doneB <- sb.Run() }()
	return
}

func waitEstablished(t *testing.T, ss ...*Session) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for _, s := range ss {
		for s.State() != StateEstablished {
			if time.Now().After(deadline) {
				t.Fatalf("session stuck in %s", s.State())
			}
			time.Sleep(time.Millisecond)
		}
	}
}

func TestSessionHandshakeAndUpdate(t *testing.T) {
	sa, sb, _, gotB, doneA, doneB := startPair(t, 0, 0)
	waitEstablished(t, sa, sb)

	if sa.Peer().ASN != 64501 || sb.Peer().ASN != 64500 {
		t.Errorf("peer OPENs wrong: %v %v", sa.Peer(), sb.Peer())
	}

	u := Update{Announced: []route.Route{testRoute("203.0.113.0/24", 64500)}}
	if err := sa.SendUpdate(u); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-gotB:
		if len(got.Announced) != 1 || !got.Announced[0].Equal(u.Announced[0]) {
			t.Error("update mismatch")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("update not delivered")
	}

	sa.Close()
	if err := <-doneA; err != nil {
		t.Errorf("A terminated with %v", err)
	}
	// B sees the CEASE notification as an error end.
	if err := <-doneB; err == nil {
		t.Log("B closed cleanly (race with pipe close)")
	} else if !errors.Is(err, ErrNotifyRecv) && !errors.Is(err, netx.ErrClosed) {
		t.Errorf("B terminated with %v", err)
	}
}

func TestSessionEstablishedHook(t *testing.T) {
	ca, cb := netx.Pipe()
	est := make(chan Open, 1)
	sa := NewSession(ca, Open{ASN: 1, RouterID: 1}, SessionHooks{
		OnEstablished: func(o Open) { est <- o },
	})
	sb := NewSession(cb, Open{ASN: 2, RouterID: 2}, SessionHooks{})
	go sa.Run()
	go sb.Run()
	select {
	case o := <-est:
		if o.ASN != 2 {
			t.Errorf("established with %v", o.ASN)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("OnEstablished not called")
	}
	sa.Close()
	sb.Close()
}

func TestSessionSendBeforeEstablished(t *testing.T) {
	ca, _ := netx.Pipe()
	s := NewSession(ca, Open{ASN: 1}, SessionHooks{})
	if err := s.SendUpdate(Update{}); !errors.Is(err, ErrFSM) {
		t.Errorf("send in Idle: %v", err)
	}
}

func TestSessionRejectsNonOpenFirst(t *testing.T) {
	ca, cb := netx.Pipe()
	s := NewSession(ca, Open{ASN: 1}, SessionHooks{})
	done := make(chan error, 1)
	go func() { done <- s.Run() }()
	// Peer sends KEEPALIVE instead of OPEN.
	go func() {
		_, _ = cb.Recv() // absorb A's OPEN
		_ = cb.Send(netx.Frame{Type: uint8(MsgKeepalive)})
	}()
	select {
	case err := <-done:
		if !errors.Is(err, ErrFSM) {
			t.Errorf("Run = %v, want FSM error", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("session did not fail")
	}
}

func TestSessionNotificationTearsDown(t *testing.T) {
	sa, sb, _, _, doneA, _ := startPair(t, 0, 0)
	waitEstablished(t, sa, sb)
	sb.notify(Notification{Code: NotifyCease, Subcode: 9})
	select {
	case err := <-doneA:
		if !errors.Is(err, ErrNotifyRecv) {
			t.Errorf("A ended with %v, want notification", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("A did not tear down")
	}
	sb.Close()
}

func TestSessionKeepalivesMaintainHold(t *testing.T) {
	// 1-second hold time: keepalives every ~333ms must keep it alive well
	// past one hold interval.
	sa, sb, _, _, doneA, doneB := startPair(t, 1, 1)
	waitEstablished(t, sa, sb)
	select {
	case err := <-doneA:
		t.Fatalf("A died during hold test: %v", err)
	case err := <-doneB:
		t.Fatalf("B died during hold test: %v", err)
	case <-time.After(2500 * time.Millisecond):
	}
	sa.Close()
	sb.Close()
}

func TestSessionOverTCP(t *testing.T) {
	updates := make(chan Update, 1)
	accepted := make(chan *Session, 1)
	addr, closer, err := netx.Listen("127.0.0.1:0", func(c *netx.Conn) {
		s := NewSession(c, Open{ASN: 65001, HoldTime: 3, RouterID: 9}, SessionHooks{
			OnUpdate: func(u Update) { updates <- u },
		})
		accepted <- s
		_ = s.Run()
	})
	if err != nil {
		t.Fatal(err)
	}
	defer closer.Close()

	conn, err := netx.Dial(addr.String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	client := NewSession(conn, Open{ASN: 65002, HoldTime: 3, RouterID: 10}, SessionHooks{})
	go client.Run()
	waitEstablished(t, client)

	u := Update{Withdrawn: []prefix.Prefix{prefix.MustParse("10.0.0.0/8")}}
	if err := client.SendUpdate(u); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-updates:
		if len(got.Withdrawn) != 1 {
			t.Error("withdraw lost over TCP")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("update not delivered over TCP")
	}
	client.Close()
	if srv := <-accepted; srv != nil {
		srv.Close()
	}
}

func TestSessionStateString(t *testing.T) {
	for st, want := range map[SessionState]string{
		StateIdle: "Idle", StateOpenSent: "OpenSent", StateOpenConfirm: "OpenConfirm",
		StateEstablished: "Established", StateClosed: "Closed", SessionState(9): "state(9)",
	} {
		if st.String() != want {
			t.Errorf("%d.String() = %q", st, st.String())
		}
	}
}
