package bgp

import "pvr/internal/route"

// DecisionConfig tunes the tie-breaking behaviour of the decision process.
type DecisionConfig struct {
	// CompareMEDAlways compares MED between routes from different
	// neighboring ASes (the "always-compare-med" knob); default is the RFC
	// behaviour of comparing MED only between routes from the same AS.
	CompareMEDAlways bool
}

// Better reports whether candidate a beats candidate b under the pairwise
// BGP decision process (RFC 4271 §9.1.2.2, single-router eBGP-only model):
//
//  1. higher LOCAL_PREF
//  2. shorter AS_PATH
//  3. lower ORIGIN
//  4. lower MED (same neighbor AS, unless CompareMEDAlways)
//  5. lower neighbor ASN (deterministic stand-in for router ID)
//
// Note that with same-AS-only MED this pairwise relation is famously not
// transitive; SelectBest therefore uses deterministic-MED grouping rather
// than a linear scan, so the selected route never depends on arrival order.
func (c DecisionConfig) Better(a, b LearnedRoute) bool {
	useMED := c.CompareMEDAlways || firstAS(a.Route) == firstAS(b.Route)
	return c.better(a, b, useMED)
}

func (c DecisionConfig) better(a, b LearnedRoute, useMED bool) bool {
	if a.Route.LocalPref != b.Route.LocalPref {
		return a.Route.LocalPref > b.Route.LocalPref
	}
	if la, lb := a.Route.PathLen(), b.Route.PathLen(); la != lb {
		return la < lb
	}
	if a.Route.Origin != b.Route.Origin {
		return a.Route.Origin < b.Route.Origin
	}
	if useMED && a.Route.MED != b.Route.MED {
		return a.Route.MED < b.Route.MED
	}
	return a.From < b.From
}

func firstAS(r route.Route) uint32 {
	if f, ok := r.Path.First(); ok {
		return uint32(f)
	}
	return 0
}

// SelectBest runs the decision process over the candidates, returning the
// winner; ok is false when no candidates exist.
//
// Unless CompareMEDAlways is set, candidates are first grouped by
// neighboring AS and the MED comparison is confined to each group
// (deterministic-MED); group winners are then compared without MED. This
// makes the selection a pure function of the candidate set.
func (c DecisionConfig) SelectBest(cands []LearnedRoute) (LearnedRoute, bool) {
	if len(cands) == 0 {
		return LearnedRoute{}, false
	}
	if c.CompareMEDAlways {
		// MED is globally comparable: the order is total, scan linearly.
		best := cands[0]
		for _, cand := range cands[1:] {
			if c.better(cand, best, true) {
				best = cand
			}
		}
		return best, true
	}
	// Deterministic MED: pick per-neighbor-AS winners with MED...
	winners := map[uint32]LearnedRoute{}
	var order []uint32
	for _, cand := range cands {
		as := firstAS(cand.Route)
		w, ok := winners[as]
		if !ok {
			winners[as] = cand
			order = append(order, as)
			continue
		}
		if c.better(cand, w, true) {
			winners[as] = cand
		}
	}
	// ...then compare group winners without MED.
	best, started := LearnedRoute{}, false
	for _, as := range order {
		w := winners[as]
		if !started || c.better(w, best, false) {
			best, started = w, true
		}
	}
	return best, true
}
