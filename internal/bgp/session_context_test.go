package bgp

import (
	"context"
	"testing"
	"time"

	"pvr/internal/netx"
)

// TestRunContextCancelClosesSession verifies RunContext tears the session
// down cleanly — CEASE then transport close, a nil return — when its
// context is cancelled mid-session.
func TestRunContextCancelClosesSession(t *testing.T) {
	ca, cb := netx.Pipe()
	ctx, cancel := context.WithCancel(context.Background())
	sa := NewSession(ca, Open{ASN: 64500, RouterID: 1}, SessionHooks{})
	sb := NewSession(cb, Open{ASN: 64501, RouterID: 2}, SessionHooks{})
	doneA := make(chan error, 1)
	go func() { doneA <- sa.RunContext(ctx) }()
	go func() { _ = sb.Run() }()

	deadline := time.Now().Add(5 * time.Second)
	for sa.State() != StateEstablished {
		if time.Now().After(deadline) {
			t.Fatalf("session stuck in %s", sa.State())
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case err := <-doneA:
		if err != nil {
			t.Fatalf("RunContext after cancel = %v, want nil (clean close)", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("RunContext did not return after cancel")
	}
	if sa.State() != StateClosed {
		t.Fatalf("state after cancel = %s, want Closed", sa.State())
	}
}

// TestRunContextCancelDuringHandshake pins the clean-close contract for
// a cancellation that lands before the session ever establishes: the
// peer never answers the OPEN, ctx is cancelled, and RunContext must
// still return nil rather than the raw transport error.
func TestRunContextCancelDuringHandshake(t *testing.T) {
	ca, cb := netx.Pipe()
	defer cb.Close()
	ctx, cancel := context.WithCancel(context.Background())
	s := NewSession(ca, Open{ASN: 64500, RouterID: 1}, SessionHooks{})
	done := make(chan error, 1)
	go func() { done <- s.RunContext(ctx) }()
	time.Sleep(10 * time.Millisecond) // let the handshake block on Recv
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("RunContext cancelled mid-handshake = %v, want nil (clean close)", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("RunContext did not return after cancel during handshake")
	}
}

// TestRunContextBackgroundEquivalent pins that a Done-less context takes
// the plain Run path (no watcher goroutine) and still ends normally on
// peer close.
func TestRunContextBackgroundEquivalent(t *testing.T) {
	ca, cb := netx.Pipe()
	sa := NewSession(ca, Open{ASN: 64500, RouterID: 1}, SessionHooks{})
	sb := NewSession(cb, Open{ASN: 64501, RouterID: 2}, SessionHooks{})
	doneA := make(chan error, 1)
	go func() { doneA <- sa.RunContext(context.Background()) }()
	go func() { _ = sb.Run() }()
	deadline := time.Now().Add(5 * time.Second)
	for sa.State() != StateEstablished {
		if time.Now().After(deadline) {
			t.Fatalf("session stuck in %s", sa.State())
		}
		time.Sleep(time.Millisecond)
	}
	sa.Close()
	select {
	case err := <-doneA:
		if err != nil {
			t.Fatalf("RunContext after Close = %v, want nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("RunContext did not return after Close")
	}
}
