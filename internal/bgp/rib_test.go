package bgp

import (
	"testing"

	"pvr/internal/prefix"
)

func TestAdjRIBInSetGetRemove(t *testing.T) {
	rib := NewAdjRIBIn()
	r1 := testRoute("10.0.0.0/8", 1)
	if !rib.Set(1, r1) {
		t.Fatal("first set not fresh")
	}
	// Setting the identical route is a no-op.
	if rib.Set(1, r1) {
		t.Error("identical set reported change")
	}
	// A different route for the same prefix replaces (implicit withdraw).
	r1b := testRoute("10.0.0.0/8", 1, 9)
	if !rib.Set(1, r1b) {
		t.Error("replacement not reported")
	}
	got, ok := rib.Get(1, r1.Prefix)
	if !ok || !got.Equal(r1b) {
		t.Error("Get returned stale route")
	}
	if !rib.Remove(1, r1.Prefix) {
		t.Error("remove failed")
	}
	if rib.Remove(1, r1.Prefix) {
		t.Error("double remove succeeded")
	}
	if rib.Remove(99, r1.Prefix) {
		t.Error("remove from unknown peer succeeded")
	}
}

func TestAdjRIBInCandidatesSortedAndPrefixes(t *testing.T) {
	rib := NewAdjRIBIn()
	p := prefix.MustParse("10.0.0.0/8")
	rib.Set(30, testRoute("10.0.0.0/8", 30))
	rib.Set(2, testRoute("10.0.0.0/8", 2))
	rib.Set(7, testRoute("10.0.0.0/8", 7))
	rib.Set(7, testRoute("192.168.0.0/16", 7))
	cands := rib.Candidates(p)
	if len(cands) != 3 {
		t.Fatalf("candidates = %d", len(cands))
	}
	for i := 1; i < len(cands); i++ {
		if cands[i].From <= cands[i-1].From {
			t.Error("candidates not sorted by peer")
		}
	}
	ps := rib.Prefixes()
	if len(ps) != 2 {
		t.Fatalf("prefixes = %v", ps)
	}
	if ps[0].Compare(ps[1]) >= 0 {
		t.Error("prefixes not sorted")
	}
}

func TestAdjRIBInDropPeer(t *testing.T) {
	rib := NewAdjRIBIn()
	rib.Set(1, testRoute("10.0.0.0/8", 1))
	rib.Set(1, testRoute("192.168.0.0/16", 1))
	rib.Set(2, testRoute("10.0.0.0/8", 2))
	affected := rib.DropPeer(1)
	if len(affected) != 2 {
		t.Fatalf("affected = %v", affected)
	}
	if _, ok := rib.Get(1, prefix.MustParse("10.0.0.0/8")); ok {
		t.Error("peer 1 routes survive drop")
	}
	if _, ok := rib.Get(2, prefix.MustParse("10.0.0.0/8")); !ok {
		t.Error("peer 2 routes lost")
	}
	if got := rib.DropPeer(1); got != nil {
		t.Error("second drop returned prefixes")
	}
}

func TestLocRIB(t *testing.T) {
	loc := NewLocRIB()
	p := prefix.MustParse("10.0.0.0/8")
	lr := LearnedRoute{From: 1, Route: testRoute("10.0.0.0/8", 1)}
	if !loc.Set(p, lr) {
		t.Fatal("set not fresh")
	}
	if loc.Set(p, lr) {
		t.Error("identical set reported change")
	}
	if loc.Len() != 1 {
		t.Errorf("Len = %d", loc.Len())
	}
	got, ok := loc.Get(p)
	if !ok || got.From != 1 {
		t.Error("Get wrong")
	}
	if ps := loc.Prefixes(); len(ps) != 1 || ps[0] != p {
		t.Errorf("Prefixes = %v", ps)
	}
	if !loc.Remove(p) || loc.Remove(p) {
		t.Error("remove semantics wrong")
	}
}

func TestAdjRIBOut(t *testing.T) {
	out := NewAdjRIBOut()
	r := testRoute("10.0.0.0/8", 99)
	if !out.Set(5, r) {
		t.Fatal("set not fresh")
	}
	if out.Set(5, r) {
		t.Error("identical set reported change")
	}
	got, ok := out.Get(5, r.Prefix)
	if !ok || !got.Equal(r) {
		t.Error("Get wrong")
	}
	if _, ok := out.Get(6, r.Prefix); ok {
		t.Error("cross-peer get")
	}
	if !out.Remove(5, r.Prefix) || out.Remove(5, r.Prefix) || out.Remove(6, r.Prefix) {
		t.Error("remove semantics wrong")
	}
}

func TestDumpRenders(t *testing.T) {
	in := NewAdjRIBIn()
	loc := NewLocRIB()
	in.Set(1, testRoute("10.0.0.0/8", 1))
	loc.Set(prefix.MustParse("10.0.0.0/8"), LearnedRoute{From: 1, Route: testRoute("10.0.0.0/8", 1)})
	s := Dump(in, loc)
	if s == "" {
		t.Error("empty dump")
	}
}
