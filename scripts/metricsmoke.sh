#!/bin/sh
# metricsmoke.sh — end-to-end smoke of pvrd's debug endpoint.
#
# Builds pvrd, runs one daemon that originates a prefix (so every plane
# does real work: engine seal, update plane, audit store, disclosure
# server, framing layer), scrapes /metrics over HTTP, and asserts the
# Prometheus exposition is well-formed and complete: at least 25 metric
# families, with at least one family from each plane. This is the check
# that the observability layer stays wired end to end — a plane whose
# Config.Obs plumbing is dropped disappears from the scrape and fails
# here, not in production.
#
# Usage: scripts/metricsmoke.sh
set -eu

cd "$(dirname "$0")/.."
workdir="$(mktemp -d)"
pid=""
cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

go build -o "$workdir/pvrd" ./cmd/pvrd

"$workdir/pvrd" \
    -listen 127.0.0.1:0 \
    -disclose-listen 127.0.0.1:0 \
    -gossip-listen 127.0.0.1:0 \
    -originate 203.0.113.0/24 \
    -debug-listen 127.0.0.1:0 \
    >"$workdir/pvrd.log" 2>&1 &
pid=$!

# The daemon logs its ephemeral debug address; wait for the line.
addr=""
for i in $(seq 1 50); do
    addr="$(sed -n 's!.*debug endpoint on http://\([^ ]*\).*!\1!p' "$workdir/pvrd.log" | head -n1)"
    [ -n "$addr" ] && break
    if ! kill -0 "$pid" 2>/dev/null; then
        echo "metricsmoke: pvrd exited before serving; log follows" >&2
        cat "$workdir/pvrd.log" >&2
        exit 1
    fi
    sleep 0.2
done
if [ -z "$addr" ]; then
    echo "metricsmoke: no debug endpoint line in pvrd log after 10s" >&2
    cat "$workdir/pvrd.log" >&2
    exit 1
fi

fetch() {
    if command -v curl >/dev/null 2>&1; then
        curl -fsS "$1"
    else
        wget -qO- "$1"
    fi
}

# The scrape can race the first epoch seal; retry briefly.
metrics=""
for i in $(seq 1 25); do
    metrics="$(fetch "http://$addr/metrics" 2>/dev/null || true)"
    if [ -n "$metrics" ] && printf '%s\n' "$metrics" | grep -q '^pvr_engine_seals_total [1-9]'; then
        break
    fi
    sleep 0.2
done

families="$(printf '%s\n' "$metrics" | grep -c '^# TYPE ' || true)"
echo "metricsmoke: scraped http://$addr/metrics — ${families} metric families"
if [ "$families" -lt 25 ]; then
    echo "metricsmoke: FAIL — want >= 25 families; exposition follows" >&2
    printf '%s\n' "$metrics" >&2
    exit 1
fi

# One family per plane, plus the participant's own counters.
for family in \
    pvr_engine_seals_total \
    pvr_upd_events_total \
    pvr_audit_rounds_total \
    pvr_disc_queries_total \
    pvr_netx_frames_out_total \
    pvr_bgp_sessions \
    pvr_routes_verified_total \
    pvr_engine_shard_seal_seconds_bucket
do
    if ! printf '%s\n' "$metrics" | grep -q "^$family"; then
        echo "metricsmoke: FAIL — family $family missing from /metrics" >&2
        exit 1
    fi
done

# /trace must be a JSON array holding the originated prefix's lifecycle.
trace="$(fetch "http://$addr/trace")"
if ! printf '%s' "$trace" | jq -e 'type == "array" and (map(.kind) | index("ShardSealed") != null)' >/dev/null; then
    echo "metricsmoke: FAIL — /trace lacks a ShardSealed event; got:" >&2
    printf '%s\n' "$trace" >&2
    exit 1
fi

echo "metricsmoke: OK"
