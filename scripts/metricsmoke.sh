#!/bin/sh
# metricsmoke.sh — end-to-end smoke of pvrd's debug endpoint.
#
# Builds pvrd, runs one daemon that originates a prefix (so every plane
# does real work: engine seal, update plane, audit store, disclosure
# server, framing layer), scrapes /metrics over HTTP, and asserts the
# Prometheus exposition is well-formed and complete: at least 25 metric
# families, with at least one family from each plane. This is the check
# that the observability layer stays wired end to end — a plane whose
# Config.Obs plumbing is dropped disappears from the scrape and fails
# here, not in production.
#
# It then dials a second daemon into the first over real TCP (BGP +
# audit gossip) and asserts the distributed-tracing plane holds up
# end to end: /trace?since= serves the cursor envelope, /metrics/history
# serves sampled time series, and at least one trace identity minted on
# the originating daemon shows up in the peer's ring too — the stitched
# cross-participant chain the fleet collector is built on.
#
# Usage: scripts/metricsmoke.sh
set -eu

cd "$(dirname "$0")/.."
workdir="$(mktemp -d)"
pid=""
pid2=""
cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    [ -n "$pid2" ] && kill "$pid2" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

go build -o "$workdir/pvrd" ./cmd/pvrd

"$workdir/pvrd" \
    -listen 127.0.0.1:0 \
    -disclose-listen 127.0.0.1:0 \
    -gossip-listen 127.0.0.1:0 \
    -originate 203.0.113.0/24 \
    -debug-listen 127.0.0.1:0 \
    -store "$workdir/state" \
    >"$workdir/pvrd.log" 2>&1 &
pid=$!

# The daemon logs its ephemeral debug address; wait for the line.
addr=""
for i in $(seq 1 50); do
    addr="$(sed -n 's!.*debug endpoint on http://\([^ ]*\).*!\1!p' "$workdir/pvrd.log" | head -n1)"
    [ -n "$addr" ] && break
    if ! kill -0 "$pid" 2>/dev/null; then
        echo "metricsmoke: pvrd exited before serving; log follows" >&2
        cat "$workdir/pvrd.log" >&2
        exit 1
    fi
    sleep 0.2
done
if [ -z "$addr" ]; then
    echo "metricsmoke: no debug endpoint line in pvrd log after 10s" >&2
    cat "$workdir/pvrd.log" >&2
    exit 1
fi

fetch() {
    if command -v curl >/dev/null 2>&1; then
        curl -fsS "$1"
    else
        wget -qO- "$1"
    fi
}

# The scrape can race the first epoch seal; retry briefly.
metrics=""
for i in $(seq 1 25); do
    metrics="$(fetch "http://$addr/metrics" 2>/dev/null || true)"
    if [ -n "$metrics" ] && printf '%s\n' "$metrics" | grep -q '^pvr_engine_seals_total [1-9]'; then
        break
    fi
    sleep 0.2
done

families="$(printf '%s\n' "$metrics" | grep -c '^# TYPE ' || true)"
echo "metricsmoke: scraped http://$addr/metrics — ${families} metric families"
if [ "$families" -lt 25 ]; then
    echo "metricsmoke: FAIL — want >= 25 families; exposition follows" >&2
    printf '%s\n' "$metrics" >&2
    exit 1
fi

# One family per plane, plus the participant's own counters. The
# pvr_priv_* families are the privacy plane's: registered whenever a
# participant boots (ring-signed anonymous queries and ZK openings are
# always servable), so a daemon that drops the plane's Obs plumbing
# loses them from the scrape and fails here. The pvr_store_* families
# are the durable store's — daemon A runs with -store, so its appends
# and group commits are live, not just registered.
for family in \
    pvr_engine_seals_total \
    pvr_upd_events_total \
    pvr_audit_rounds_total \
    pvr_disc_queries_total \
    pvr_netx_frames_out_total \
    pvr_bgp_sessions \
    pvr_routes_verified_total \
    pvr_engine_shard_seal_seconds_bucket \
    pvr_priv_ring_signs_total \
    pvr_priv_ring_verifies_total \
    pvr_priv_anon_queries_total \
    pvr_priv_proofs_built_total \
    pvr_priv_proof_verifies_total \
    pvr_priv_ring_verify_seconds_bucket \
    pvr_priv_proof_gen_seconds_bucket \
    pvr_store_appends_total \
    pvr_store_commits_total \
    pvr_store_commit_seconds_bucket \
    pvr_store_segments
do
    if ! printf '%s\n' "$metrics" | grep -q "^$family"; then
        echo "metricsmoke: FAIL — family $family missing from /metrics" >&2
        exit 1
    fi
done

# /trace must be a JSON array holding the originated prefix's lifecycle.
trace="$(fetch "http://$addr/trace")"
if ! printf '%s' "$trace" | jq -e 'type == "array" and (map(.kind) | index("ShardSealed") != null)' >/dev/null; then
    echo "metricsmoke: FAIL — /trace lacks a ShardSealed event; got:" >&2
    printf '%s\n' "$trace" >&2
    exit 1
fi

# /trace?since= must serve the cursor envelope the fleet collector
# scrapes: {"next": N, "events": [...]} with traced events inside.
if ! fetch "http://$addr/trace?since=0" | jq -e \
    '(.next > 0) and (.events | type == "array") and ([.events[].trace] | map(select(. != null and . != "")) | length > 0)' >/dev/null; then
    echo "metricsmoke: FAIL — /trace?since=0 is not a traced cursor envelope" >&2
    exit 1
fi

# /metrics/history must serve sampled time series (the daemon samples
# once per commitment window, so points accrue within a second).
history=""
for i in $(seq 1 25); do
    history="$(fetch "http://$addr/metrics/history" 2>/dev/null || true)"
    if printf '%s' "$history" | jq -e 'type == "array" and length >= 1 and (.[0].values | type == "object")' >/dev/null 2>&1; then
        break
    fi
    history=""
    sleep 0.2
done
if [ -z "$history" ]; then
    echo "metricsmoke: FAIL — /metrics/history never served a sampled point" >&2
    exit 1
fi

# --- two-daemon TCP run: the trace must cross participants ---

# The first daemon's BGP and gossip listen addresses, from its log.
bgp_addr="$(sed -n 's!.* listening on \([0-9.:]*\)$!\1!p' "$workdir/pvrd.log" | head -n1)"
gossip_addr="$(sed -n 's!.* audit gossip listening on \([0-9.:]*\)$!\1!p' "$workdir/pvrd.log" | head -n1)"
if [ -z "$bgp_addr" ] || [ -z "$gossip_addr" ]; then
    echo "metricsmoke: FAIL — daemon A's BGP/gossip addresses not in its log" >&2
    cat "$workdir/pvrd.log" >&2
    exit 1
fi

"$workdir/pvrd" \
    -asn 64501 \
    -connect "$bgp_addr" \
    -gossip-listen 127.0.0.1:0 \
    -gossip-peers "$gossip_addr" \
    -gossip-every 250ms \
    -debug-listen 127.0.0.1:0 \
    >"$workdir/pvrd2.log" 2>&1 &
pid2=$!

addr2=""
for i in $(seq 1 50); do
    addr2="$(sed -n 's!.*debug endpoint on http://\([^ ]*\).*!\1!p' "$workdir/pvrd2.log" | head -n1)"
    [ -n "$addr2" ] && break
    if ! kill -0 "$pid2" 2>/dev/null; then
        echo "metricsmoke: second pvrd exited before serving; log follows" >&2
        cat "$workdir/pvrd2.log" >&2
        exit 1
    fi
    sleep 0.2
done
if [ -z "$addr2" ]; then
    echo "metricsmoke: no debug endpoint line in second pvrd log after 10s" >&2
    cat "$workdir/pvrd2.log" >&2
    exit 1
fi

# A trace identity minted on daemon A (at announce ingestion) must appear
# in daemon B's ring too, carried there over the wire (BGP seal
# attachment and/or gossip STATEMENTS extension) — a stitched chain.
stitched=""
for i in $(seq 1 50); do
    fetch "http://$addr/trace?since=0" >"$workdir/ta.json" 2>/dev/null || true
    fetch "http://$addr2/trace?since=0" >"$workdir/tb.json" 2>/dev/null || true
    if jq -n -e --slurpfile a "$workdir/ta.json" --slurpfile b "$workdir/tb.json" '
        ([$a[0].events[]?.trace] | map(select(. != null and . != "")) | unique) as $ta |
        ([$b[0].events[]?.trace] | map(select(. != null and . != "")) | unique) as $tb |
        ($ta - ($ta - $tb)) | length > 0' >/dev/null 2>&1; then
        stitched=yes
        break
    fi
    sleep 0.3
done
if [ -z "$stitched" ]; then
    echo "metricsmoke: FAIL — no trace identity shared across the two daemons" >&2
    echo "--- daemon A /trace ---" >&2; cat "$workdir/ta.json" >&2 || true
    echo "--- daemon B /trace ---" >&2; cat "$workdir/tb.json" >&2 || true
    echo "--- daemon B log ---" >&2; cat "$workdir/pvrd2.log" >&2
    exit 1
fi
echo "metricsmoke: cross-participant trace stitched across $addr and $addr2"

echo "metricsmoke: OK"
