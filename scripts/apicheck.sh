#!/bin/sh
# apicheck.sh — the public-API compatibility gate.
#
# Compares the current `go doc pvr` symbol surface against the checked-in
# snapshot (api/pvr.txt). A PR that changes the exported surface must
# regenerate the snapshot with `make api` (which runs this script with
# --update) — making every API break (or addition) an explicit,
# reviewable diff instead of a silent drift.
set -eu
cd "$(dirname "$0")/.."

snapshot=api/pvr.txt

# generate writes the current surface to $1. Declarations only — the
# gate is about the API shape, not the package prose.
generate() {
    go doc pvr | awk '/^(const|var|func|type)[ (]/{found=1} found' > "$1"
}

if [ "${1:-}" = "--update" ]; then
    generate "$snapshot"
    echo "apicheck: regenerated $snapshot"
    exit 0
fi

current="$(mktemp)"
trap 'rm -f "$current"' EXIT
generate "$current"

if ! diff -u "$snapshot" "$current"; then
    echo >&2
    echo "apicheck: public pvr API surface changed." >&2
    echo "apicheck: if intentional, regenerate the snapshot with: make api" >&2
    exit 1
fi
echo "apicheck: public API surface matches $snapshot"
