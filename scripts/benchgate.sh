#!/bin/sh
# benchgate.sh — regression gates for the engine epoch path.
#
# Re-runs the E10 engine experiment at a small size and compares two
# metrics against the checked-in BENCH_engine.json baseline:
#
#   1. allocs/op (heap allocations per prefix for the full
#      accept+seal+verify epoch) — more than +15% fails. The
#      batched/pooled hot path is a headline property of this codebase,
#      and allocs/op catches its erosion deterministically: unlike
#      wall-clock it does not depend on the CI machine.
#   2. seal p99 (per-shard seal latency, seal_p99_ms, read from the
#      engine's obs histogram) — more than +20% fails. Histogram
#      quantiles are bucket upper bounds on a 1-2.5-5 ladder, so in
#      practice this means "the seal p99 may not climb into a higher
#      latency bucket": it catches a sealing path that got
#      categorically slower (an extra copy, a lost pool, a serialized
#      signer) while staying quiet under scheduler noise within a
#      bucket. Latency depends on table size, so this comparison
#      re-runs at the baseline's own steady-state prefix count.
#
# It then re-runs the E17 privacy-plane experiment against the
# BENCH_priv.json baseline (skipped with a warning when that baseline or
# its columns don't exist yet):
#
#   3. proof size (proof_size_bytes, the ZK vector proof an auditor
#      downloads) — more than +10% fails. The proof is a wire-format
#      property, deterministic for a given bit-vector length, so growth
#      means the encoding itself got fatter.
#   4. ring-verify p50 (ring_verify_p50_us, the server-side cost of
#      checking one anonymous query's ring signature) — more than +25%
#      fails, with the same best-of-3 retry as the seal gate since it is
#      a bucketed wall-clock quantile.
#
# And finally the E18 durable store against the BENCH_store.json
# baseline (gates 5 and 6, described at their site below): an absolute
# 10x group-commit speedup floor and a +100% recovery-time bound.
#
# Usage: scripts/benchgate.sh [baseline.json]
set -eu

cd "$(dirname "$0")/.."
baseline="${1:-BENCH_engine.json}"

if [ ! -f "$baseline" ]; then
    echo "benchgate: baseline $baseline not found" >&2
    exit 1
fi

# Baseline values: the row with the most prefixes (steady-state).
base_allocs="$(jq '(if type=="object" then .rows else . end) | max_by(.prefixes).allocs_per_op' "$baseline")"
if [ -z "$base_allocs" ] || [ "$base_allocs" = "null" ]; then
    echo "benchgate: baseline $baseline has no allocs_per_op column" >&2
    echo "benchgate: regenerate it with: make bench" >&2
    exit 1
fi
base_sealp99="$(jq '(if type=="object" then .rows else . end) | max_by(.prefixes).seal_p99_ms' "$baseline")"
base_prefixes="$(jq '(if type=="object" then .rows else . end) | max_by(.prefixes).prefixes' "$baseline")"

tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT
go run ./cmd/pvrbench -e engine -prefixes "$base_prefixes" -json "$tmp" >/dev/null
cur_allocs="$(jq '(if type=="object" then .rows else . end) | max_by(.prefixes).allocs_per_op' "$tmp")"
cur_sealp99="$(jq '(if type=="object" then .rows else . end) | max_by(.prefixes).seal_p99_ms' "$tmp")"

# Gate 1 — allocs/op, integer threshold: fail when cur > base * 1.15.
limit=$(( base_allocs * 115 / 100 ))
echo "benchgate: engine epoch allocs/op: baseline ${base_allocs}, current ${cur_allocs}, limit ${limit} (+15%)"
if [ "$cur_allocs" -gt "$limit" ]; then
    echo "benchgate: FAIL — allocs/op regressed by more than 15%" >&2
    echo "benchgate: if the increase is intentional, refresh the baseline with: make bench" >&2
    exit 1
fi

# Gate 2 — seal p99, float threshold: fail when cur > base * 1.20.
# Wall-clock is noisy, so a failing read retries (best of 3): one quiet
# run within the limit passes; three reads in a higher bucket is a real
# regression, not scheduler jitter. Skipped (with a warning) on
# baselines predating the seal_p99_ms column.
if [ -z "$base_sealp99" ] || [ "$base_sealp99" = "null" ]; then
    echo "benchgate: WARN — baseline has no seal_p99_ms column; seal-latency gate skipped" >&2
    echo "benchgate: refresh the baseline with: make bench" >&2
else
    attempt=1
    while :; do
        echo "benchgate: shard seal p99 (ms): baseline ${base_sealp99}, current ${cur_sealp99}, limit +20% (attempt ${attempt}/3)"
        if awk -v base="$base_sealp99" -v cur="$cur_sealp99" \
            'BEGIN { exit !(base > 0 && cur <= base * 1.20) }'; then
            break
        fi
        if [ "$attempt" -ge 3 ]; then
            echo "benchgate: FAIL — shard seal p99 regressed by more than 20% in 3 runs (or baseline is zero)" >&2
            echo "benchgate: if the slowdown is intentional, refresh the baseline with: make bench" >&2
            exit 1
        fi
        attempt=$(( attempt + 1 ))
        go run ./cmd/pvrbench -e engine -prefixes "$base_prefixes" -json "$tmp" >/dev/null
        cur_sealp99="$(jq '(if type=="object" then .rows else . end) | max_by(.prefixes).seal_p99_ms' "$tmp")"
    done
fi

# Gates 3 & 4 — the privacy plane, against the BENCH_priv.json baseline.
# The comparison row is the baseline's largest ring (steady-state), and
# the re-run is pinned to that row's own prefix count and ring size.
priv_baseline="BENCH_priv.json"
priv_rows='(if type=="object" then .rows else . end) | max_by(.ring_k)'
if [ ! -f "$priv_baseline" ]; then
    echo "benchgate: WARN — baseline $priv_baseline not found; privacy-plane gates skipped" >&2
    echo "benchgate: generate it with: make bench" >&2
else
    base_proof="$(jq "$priv_rows.proof_size_bytes" "$priv_baseline")"
    base_ringver="$(jq "$priv_rows.ring_verify_p50_us" "$priv_baseline")"
    base_ringk="$(jq "$priv_rows.ring_k" "$priv_baseline")"
    base_privpfx="$(jq "$priv_rows.prefixes" "$priv_baseline")"
    if [ -z "$base_proof" ] || [ "$base_proof" = "null" ]; then
        echo "benchgate: WARN — baseline $priv_baseline has no proof_size_bytes column; privacy-plane gates skipped" >&2
        echo "benchgate: refresh it with: make bench" >&2
    else
        go run ./cmd/pvrbench -e priv -prefixes "$base_privpfx" -ring "$base_ringk" -json "$tmp" >/dev/null
        cur_proof="$(jq "$priv_rows.proof_size_bytes" "$tmp")"
        cur_ringver="$(jq "$priv_rows.ring_verify_p50_us" "$tmp")"

        # Gate 3 — proof size, integer threshold: fail when cur > base * 1.10.
        limit=$(( base_proof * 110 / 100 ))
        echo "benchgate: auditor proof size (bytes): baseline ${base_proof}, current ${cur_proof}, limit ${limit} (+10%)"
        if [ "$cur_proof" -gt "$limit" ]; then
            echo "benchgate: FAIL — ZK proof size grew by more than 10%" >&2
            echo "benchgate: if the growth is intentional, refresh the baseline with: make bench" >&2
            exit 1
        fi

        # Gate 4 — ring-verify p50, float threshold with best-of-3 retry.
        if [ -z "$base_ringver" ] || [ "$base_ringver" = "null" ]; then
            echo "benchgate: WARN — baseline has no ring_verify_p50_us column; ring-verify gate skipped" >&2
        else
            attempt=1
            while :; do
                echo "benchgate: ring verify p50 (us): baseline ${base_ringver}, current ${cur_ringver}, limit +25% (attempt ${attempt}/3)"
                if awk -v base="$base_ringver" -v cur="$cur_ringver" \
                    'BEGIN { exit !(base > 0 && cur <= base * 1.25) }'; then
                    break
                fi
                if [ "$attempt" -ge 3 ]; then
                    echo "benchgate: FAIL — ring-verify p50 regressed by more than 25% in 3 runs (or baseline is zero)" >&2
                    echo "benchgate: if the slowdown is intentional, refresh the baseline with: make bench" >&2
                    exit 1
                fi
                attempt=$(( attempt + 1 ))
                go run ./cmd/pvrbench -e priv -prefixes "$base_privpfx" -ring "$base_ringk" -json "$tmp" >/dev/null
                cur_ringver="$(jq "$priv_rows.ring_verify_p50_us" "$tmp")"
            done
        fi
    fi
fi
# Gates 5 & 6 — the durable store, against the BENCH_store.json
# baseline (skipped with a warning when it doesn't exist yet):
#
#   5. group-commit speedup (speedup at the baseline's largest appender
#      count) — an absolute floor of 10x over the one-fsync-per-record
#      baseline, not a relative drift bound: batching appenders behind a
#      shared fsync is the subsystem's headline property, and losing it
#      (a serialized flush leader, an accidental fsync per record) drops
#      the ratio to ~1x regardless of machine speed. Best-of-3, since
#      both sides of the ratio are wall-clock.
#   6. recovery time (recovery_ms at the baseline's largest WAL size) —
#      more than +100% fails, best-of-3. Recovery is a few milliseconds
#      of sequential reads, so only a categorical slowdown (quadratic
#      replay, per-record fsync on open) doubles it.
store_baseline="BENCH_store.json"
store_row='(if type=="object" then .rows else . end) | max_by(.appenders)'
store_rec='(if type=="object" then .rows else . end) | max_by(.recovery_records)'
if [ ! -f "$store_baseline" ]; then
    echo "benchgate: WARN — baseline $store_baseline not found; durable-store gates skipped" >&2
    echo "benchgate: generate it with: make bench" >&2
else
    base_appenders="$(jq "$store_row.appenders" "$store_baseline")"
    base_speedup="$(jq "$store_row.speedup" "$store_baseline")"
    base_recms="$(jq "$store_rec.recovery_ms" "$store_baseline")"
    base_recn="$(jq "$store_rec.recovery_records" "$store_baseline")"
    if [ -z "$base_speedup" ] || [ "$base_speedup" = "null" ]; then
        echo "benchgate: WARN — baseline $store_baseline has no speedup column; durable-store gates skipped" >&2
        echo "benchgate: refresh it with: make bench" >&2
    else
        go run ./cmd/pvrbench -e store -appenders "$base_appenders" -json "$tmp" >/dev/null
        cur_speedup="$(jq "$store_row.speedup" "$tmp")"
        cur_recms="$(jq "$store_rec.recovery_ms" "$tmp")"

        # Gate 5 — group-commit speedup, absolute 10x floor, best-of-3.
        attempt=1
        while :; do
            echo "benchgate: group-commit speedup at ${base_appenders} appenders: baseline ${base_speedup}x, current ${cur_speedup}x, floor 10x (attempt ${attempt}/3)"
            if awk -v cur="$cur_speedup" 'BEGIN { exit !(cur >= 10) }'; then
                break
            fi
            if [ "$attempt" -ge 3 ]; then
                echo "benchgate: FAIL — group commit under 10x over per-record fsync in 3 runs" >&2
                echo "benchgate: the WAL is likely syncing per record; see internal/store" >&2
                exit 1
            fi
            attempt=$(( attempt + 1 ))
            go run ./cmd/pvrbench -e store -appenders "$base_appenders" -json "$tmp" >/dev/null
            cur_speedup="$(jq "$store_row.speedup" "$tmp")"
            cur_recms="$(jq "$store_rec.recovery_ms" "$tmp")"
        done

        # Gate 6 — recovery time, float threshold with best-of-3 retry.
        if [ -z "$base_recms" ] || [ "$base_recms" = "null" ]; then
            echo "benchgate: WARN — baseline has no recovery_ms column; recovery gate skipped" >&2
        else
            attempt=1
            while :; do
                echo "benchgate: recovery of ${base_recn} records (ms): baseline ${base_recms}, current ${cur_recms}, limit +100% (attempt ${attempt}/3)"
                if awk -v base="$base_recms" -v cur="$cur_recms" \
                    'BEGIN { exit !(base > 0 && cur <= base * 2.0) }'; then
                    break
                fi
                if [ "$attempt" -ge 3 ]; then
                    echo "benchgate: FAIL — WAL recovery slowed by more than 100% in 3 runs (or baseline is zero)" >&2
                    echo "benchgate: if the slowdown is intentional, refresh the baseline with: make bench" >&2
                    exit 1
                fi
                attempt=$(( attempt + 1 ))
                go run ./cmd/pvrbench -e store -appenders "$base_appenders" -json "$tmp" >/dev/null
                cur_recms="$(jq "$store_rec.recovery_ms" "$tmp")"
            done
        fi
    fi
fi
echo "benchgate: OK"
