#!/bin/sh
# benchgate.sh — allocation-regression gate for the engine epoch path.
#
# Re-runs the E10 engine experiment at a small size and compares its
# allocs/op (heap allocations per prefix for the full accept+seal+verify
# epoch) against the checked-in BENCH_engine.json baseline. A regression
# of more than 15% fails the gate: the batched/pooled hot path is a
# headline property of this codebase, and allocs/op is the metric that
# catches its erosion deterministically — unlike wall-clock, it does not
# depend on the CI machine.
#
# Usage: scripts/benchgate.sh [baseline.json]
set -eu

cd "$(dirname "$0")/.."
baseline="${1:-BENCH_engine.json}"

if [ ! -f "$baseline" ]; then
    echo "benchgate: baseline $baseline not found" >&2
    exit 1
fi

# Baseline allocs/op: the row with the most prefixes (steady-state).
base_allocs="$(jq 'max_by(.prefixes).allocs_per_op' "$baseline")"
if [ -z "$base_allocs" ] || [ "$base_allocs" = "null" ]; then
    echo "benchgate: baseline $baseline has no allocs_per_op column" >&2
    echo "benchgate: regenerate it with: make bench" >&2
    exit 1
fi

tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT
go run ./cmd/pvrbench -e engine -prefixes 200 -json "$tmp" >/dev/null
cur_allocs="$(jq 'max_by(.prefixes).allocs_per_op' "$tmp")"

# Integer threshold: fail when cur > base * 1.15.
limit=$(( base_allocs * 115 / 100 ))
echo "benchgate: engine epoch allocs/op: baseline ${base_allocs}, current ${cur_allocs}, limit ${limit} (+15%)"
if [ "$cur_allocs" -gt "$limit" ]; then
    echo "benchgate: FAIL — allocs/op regressed by more than 15%" >&2
    echo "benchgate: if the increase is intentional, refresh the baseline with: make bench" >&2
    exit 1
fi
echo "benchgate: OK"
