package pvr_test

import (
	"fmt"
	"net/netip"
	"testing"

	"pvr"
)

// TestPublicAPIMinProtocol exercises the package through its public
// surface only: the documented quickstart flow.
func TestPublicAPIMinProtocol(t *testing.T) {
	net := pvr.NewNetwork()
	a, err := net.AddNode(64500)
	if err != nil {
		t.Fatal(err)
	}
	n1, err := net.AddNode(64501)
	if err != nil {
		t.Fatal(err)
	}
	n2, err := net.AddNode(64502)
	if err != nil {
		t.Fatal(err)
	}
	b, err := net.AddNode(64503)
	if err != nil {
		t.Fatal(err)
	}

	pfx := pvr.MustParsePrefix("203.0.113.0/24")
	prover, err := a.NewProver(32)
	if err != nil {
		t.Fatal(err)
	}
	prover.BeginEpoch(1, pfx)

	mk := func(from *pvr.Node, length int) pvr.Announcement {
		asns := make([]pvr.ASN, length)
		asns[0] = from.ASN()
		for i := 1; i < length; i++ {
			asns[i] = pvr.ASN(65000 + i)
		}
		r := pvr.Route{
			Prefix:  pfx,
			Path:    pvr.NewPath(asns...),
			NextHop: netip.MustParseAddr("192.0.2.1"),
		}
		ann, err := from.Announce(a.ASN(), 1, r)
		if err != nil {
			t.Fatal(err)
		}
		return ann
	}
	ann1 := mk(n1, 5)
	ann2 := mk(n2, 2)
	for _, ann := range []pvr.Announcement{ann1, ann2} {
		if _, err := prover.AcceptAnnouncement(ann); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := prover.CommitMin(); err != nil {
		t.Fatal(err)
	}

	// Providers verify.
	v1, err := prover.DiscloseToProvider(n1.ASN())
	if err != nil {
		t.Fatal(err)
	}
	if err := pvr.VerifyProviderView(net.Registry(), v1, ann1); err != nil {
		t.Errorf("N1: %v", err)
	}
	// Promisee verifies; winner is N2's length-2 route.
	pv, err := prover.DiscloseToPromisee(b.ASN())
	if err != nil {
		t.Fatal(err)
	}
	if err := pvr.VerifyPromiseeView(net.Registry(), pv); err != nil {
		t.Errorf("B: %v", err)
	}
	if pv.Winner == nil || pv.Winner.Provider != n2.ASN() {
		t.Errorf("winner = %+v", pv.Winner)
	}
}

func TestPublicAPINetworkManagement(t *testing.T) {
	net := pvr.NewNetwork()
	if _, err := net.AddNode(1); err != nil {
		t.Fatal(err)
	}
	if _, err := net.AddNode(1); err == nil {
		t.Error("duplicate node accepted")
	}
	if _, ok := net.Node(1); !ok {
		t.Error("node lookup failed")
	}
	if _, ok := net.Node(9); ok {
		t.Error("phantom node")
	}
	if _, err := net.AddNodeRSA(2, 1024); err != nil {
		t.Fatal(err)
	}
	members := net.Members()
	if len(members) != 2 || members[0] != 1 || members[1] != 2 {
		t.Errorf("Members = %v", members)
	}
}

func TestPublicAPIFig1Simulation(t *testing.T) {
	res, err := pvr.RunFig1(pvr.Fig1Config{K: 3, MaxLen: 8, Fault: pvr.FaultSuppress, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Detected || res.GuiltyVerdicts == 0 {
		t.Error("suppression escaped the public-API simulation")
	}
	clean, err := pvr.RunFig1(pvr.Fig1Config{K: 3, MaxLen: 8, Fault: pvr.FaultNone, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if clean.Detected || clean.FalseAccusations != 0 {
		t.Error("honest run flagged through public API")
	}
}

func TestPublicAPIGossip(t *testing.T) {
	net := pvr.NewNetwork()
	n1, err := net.AddNode(1)
	if err != nil {
		t.Fatal(err)
	}
	pool := n1.NewGossipPool()
	if pool == nil {
		t.Fatal("nil pool")
	}
	if got := len(pool.Statements()); got != 0 {
		t.Errorf("fresh pool has %d statements", got)
	}
}

// TestPublicAPIEngine exercises the sharded multi-prefix engine through
// the public surface: ingest for many prefixes, seal, and verify both
// disclosure kinds via the pipeline.
func TestPublicAPIEngine(t *testing.T) {
	net := pvr.NewNetwork()
	a, err := net.AddNode(64500)
	if err != nil {
		t.Fatal(err)
	}
	n1, err := net.AddNode(64501)
	if err != nil {
		t.Fatal(err)
	}
	b, err := net.AddNode(64503)
	if err != nil {
		t.Fatal(err)
	}

	eng, err := a.NewEngine(pvr.EngineConfig{MaxLen: 16, Shards: 4, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	eng.BeginEpoch(1)

	var (
		pfxs []pvr.Prefix
		anns []pvr.Announcement
	)
	for i := 0; i < 20; i++ {
		pfx := pvr.MustParsePrefix(fmt.Sprintf("10.0.%d.0/24", i))
		pfxs = append(pfxs, pfx)
		asns := make([]pvr.ASN, 1+i%16)
		asns[0] = n1.ASN()
		for j := 1; j < len(asns); j++ {
			asns[j] = pvr.ASN(65000 + j)
		}
		ann, err := n1.Announce(a.ASN(), 1, pvr.Route{
			Prefix:  pfx,
			Path:    pvr.NewPath(asns...),
			NextHop: netip.MustParseAddr("192.0.2.1"),
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := eng.AcceptAnnouncement(ann); err != nil {
			t.Fatal(err)
		}
		anns = append(anns, ann)
	}

	seals, err := eng.SealEpoch()
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range seals {
		if err := s.Verify(net.Registry()); err != nil {
			t.Fatal(err)
		}
	}

	pl := pvr.NewPipeline(net.Registry(), 2)
	for i, pfx := range pfxs {
		pv, err := eng.DiscloseToProvider(pfx, n1.ASN())
		if err != nil {
			t.Fatal(err)
		}
		pl.SubmitProvider(pv, anns[i])
		bv, err := eng.DiscloseToPromisee(pfx, b.ASN())
		if err != nil {
			t.Fatal(err)
		}
		pl.SubmitPromisee(bv, b.ASN())
	}
	for _, r := range pl.Drain() {
		if r.Err != nil {
			t.Fatalf("%s neighbor %s: %v", r.Prefix, r.Neighbor, r.Err)
		}
	}
}

// TestPublicAPIAuditNetwork exercises the audit-network surface: an
// engine's shard seals flow into an Auditor, an injected equivocation is
// convicted, evidence persists through OpenLedger, and the conviction
// gates a Pipeline.
func TestPublicAPIAuditNetwork(t *testing.T) {
	net := pvr.NewNetwork()
	a, err := net.AddNode(64500) // the (equivocating) prover
	if err != nil {
		t.Fatal(err)
	}
	n1, err := net.AddNode(64501)
	if err != nil {
		t.Fatal(err)
	}
	n2, err := net.AddNode(64502)
	if err != nil {
		t.Fatal(err)
	}

	// The prover seals the same epoch twice (different commitment
	// blinding -> different roots) and shows each neighbor one set.
	pfx := pvr.MustParsePrefix("203.0.113.0/24")
	sealsOf := func() []*pvr.EngineSeal {
		eng, err := a.NewEngine(pvr.EngineConfig{MaxLen: 8, Shards: 2, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		eng.BeginEpoch(1)
		ann, err := n1.Announce(a.ASN(), 1, pvr.Route{
			Prefix:  pfx,
			Path:    pvr.NewPath(n1.ASN()),
			NextHop: netip.MustParseAddr("192.0.2.1"),
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := eng.AcceptAnnouncement(ann); err != nil {
			t.Fatal(err)
		}
		seals, err := eng.SealEpoch()
		if err != nil {
			t.Fatal(err)
		}
		return seals
	}

	led, recs, err := pvr.OpenLedger(t.TempDir() + "/audit.ledger")
	if err != nil {
		t.Fatal(err)
	}
	defer led.Close()
	if len(recs) != 0 {
		t.Fatalf("fresh ledger has %d records", len(recs))
	}
	aud, err := pvr.NewAuditor(pvr.AuditorConfig{
		ASN: n2.ASN(), Registry: net.Registry(), Ledger: led,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, seals := range [][]*pvr.EngineSeal{sealsOf(), sealsOf()} {
		for _, s := range seals {
			if _, _, err := aud.AddRecord(pvr.AuditRecord{Epoch: s.Epoch, S: s.Statement()}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if !aud.Convicted(a.ASN()) {
		t.Fatal("cross-shard equivocation not convicted")
	}
	if len(aud.Convictions()) != 1 || aud.Convictions()[0].ASN != a.ASN() {
		t.Fatalf("convictions = %+v", aud.Convictions())
	}

	pl := pvr.NewPipeline(net.Registry(), 1)
	defer pl.Close()
	pl.SetBanlist(aud.Convicted)
	view := &pvr.EnginePromiseeView{Sealed: &pvr.SealedCommitment{Seal: &pvr.EngineSeal{Prover: a.ASN()}}}
	pl.SubmitPromisee(view, n2.ASN())
	for _, r := range pl.Drain() {
		if r.Err == nil {
			t.Fatal("pipeline accepted a convicted prover's view")
		}
	}
}
