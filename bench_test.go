// Benchmarks regenerating the paper's quantitative claims, one family per
// experiment in EXPERIMENTS.md. Run with:
//
//	go test -bench=. -benchmem .
//
// E1  BenchmarkFig1MinProtocol    — §3.3 protocol cost vs number of providers
// E2  BenchmarkFig2GraphProtocol  — §3.5–3.7 graph commit + disclose + verify
// E3  BenchmarkSMCMin / BenchmarkPVRMinEpoch — §3.1 SMC strawman vs PVR
// E4  BenchmarkZKPMonotone        — §3.1 ZKP strawman scaling in policy size
// E5  BenchmarkRSA1024Sign etc.   — §3.8 primitive costs
// E6  BenchmarkBatchSigning       — §3.8 batching amortization
// E9  BenchmarkRingSign           — §3.2 ring signatures for link-state
package pvr_test

import (
	"crypto/rand"
	"crypto/rsa"
	"crypto/sha256"
	"fmt"
	"net/netip"
	"runtime"
	"testing"

	"pvr/internal/aspath"
	"pvr/internal/core"
	"pvr/internal/engine"
	"pvr/internal/merkle"
	"pvr/internal/prefix"
	"pvr/internal/rfg"
	"pvr/internal/ringsig"
	"pvr/internal/route"
	"pvr/internal/sigs"
	"pvr/internal/smc"
	"pvr/internal/zkp"
)

// --- shared fixtures (keys are expensive; build once) ---

type benchEnv struct {
	reg     *sigs.Registry
	signers map[aspath.ASN]sigs.Signer
	pfx     prefix.Prefix
}

var envCache *benchEnv

func env(b *testing.B) *benchEnv {
	b.Helper()
	if envCache != nil {
		return envCache
	}
	e := &benchEnv{
		reg:     sigs.NewRegistry(),
		signers: map[aspath.ASN]sigs.Signer{},
		pfx:     prefix.MustParse("203.0.113.0/24"),
	}
	for asn := aspath.ASN(100); asn < 200; asn++ {
		s, err := sigs.GenerateEd25519()
		if err != nil {
			b.Fatal(err)
		}
		e.signers[asn] = s
		e.reg.Register(asn, s.Public())
	}
	envCache = e
	return e
}

func (e *benchEnv) announce(b *testing.B, from aspath.ASN, epoch uint64, length int) core.Announcement {
	b.Helper()
	asns := make([]aspath.ASN, length)
	asns[0] = from
	for i := 1; i < length; i++ {
		asns[i] = aspath.ASN(65000 + i)
	}
	r := route.Route{
		Prefix:  e.pfx,
		Path:    aspath.New(asns...),
		NextHop: netip.AddrFrom4([4]byte{10, 0, 0, 1}),
	}
	ann, err := core.NewAnnouncement(e.signers[from], from, 100, epoch, r)
	if err != nil {
		b.Fatal(err)
	}
	return ann
}

// runMinEpoch executes one full §3.3 epoch: accept k announcements,
// commit, disclose to everyone, and verify every view.
func runMinEpoch(b *testing.B, e *benchEnv, k, maxLen int, epoch uint64) {
	b.Helper()
	p, err := core.NewProver(100, e.signers[100], e.reg, maxLen)
	if err != nil {
		b.Fatal(err)
	}
	p.BeginEpoch(epoch, e.pfx)
	anns := make([]core.Announcement, k)
	for i := 0; i < k; i++ {
		anns[i] = e.announce(b, aspath.ASN(101+i), epoch, 1+(i%maxLen))
		if _, err := p.AcceptAnnouncement(anns[i]); err != nil {
			b.Fatal(err)
		}
	}
	if _, err := p.CommitMin(); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < k; i++ {
		v, err := p.DiscloseToProvider(aspath.ASN(101 + i))
		if err != nil {
			b.Fatal(err)
		}
		if err := core.VerifyProviderView(e.reg, v, anns[i]); err != nil {
			b.Fatal(err)
		}
	}
	pv, err := p.DiscloseToPromisee(199)
	if err != nil {
		b.Fatal(err)
	}
	if err := core.VerifyPromiseeView(e.reg, pv); err != nil {
		b.Fatal(err)
	}
}

// E1: full minimum-operator protocol cost as the provider count grows.
func BenchmarkFig1MinProtocol(b *testing.B) {
	e := env(b)
	for _, k := range []int{2, 5, 10, 20, 50} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runMinEpoch(b, e, k, 32, uint64(i+1))
			}
		})
	}
}

// E2: graph commitment, selective disclosure, and verification for the
// Fig. 2 multi-operator graph.
func BenchmarkFig2GraphProtocol(b *testing.B) {
	e := env(b)
	for _, k := range []int{3, 5, 10, 20} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			g, ins, outVar, err := rfg.Fig2(k)
			if err != nil {
				b.Fatal(err)
			}
			access := rfg.NewAccess()
			access.AllowAll(199, outVar.Label())
			inputs := map[rfg.VarID][]route.Route{
				ins[0]: {e.announce(b, 101, 1, 4).Route},
				ins[1]: {e.announce(b, 102, 1, 2).Route},
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				gp := core.NewGraphProver(100, e.signers[100], g, access)
				gc, err := gp.Commit(uint64(i+1), inputs)
				if err != nil {
					b.Fatal(err)
				}
				d, err := gp.Disclose(199, outVar.Label())
				if err != nil {
					b.Fatal(err)
				}
				if _, err := core.VerifyVertexDisclosure(e.reg, gc, d); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// E3: the SMC strawman (live protocol) at the paper's 5-player point and a
// sweep, against one full PVR epoch on the same inputs.
func BenchmarkSMCMin(b *testing.B) {
	for _, k := range []int{2, 5, 10} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			parties := make([]*smc.Party, k)
			for i := range parties {
				p, err := smc.NewParty(i, 1+i%smc.Domain, 1024)
				if err != nil {
					b.Fatal(err)
				}
				parties[i] = p
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, _, err := smc.SecureMin(parties); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// E3 counterpart: PVR on the same task shape (5 providers).
func BenchmarkPVRMinEpoch(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		runMinEpoch(b, e, 5, 32, uint64(i+1))
	}
}

// E4: ZKP strawman cost vs policy size (bit-vector length).
func BenchmarkZKPMonotone(b *testing.B) {
	for _, k := range []int{8, 16, 32, 64} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			bits := make([]bool, k)
			for i := k / 2; i < k; i++ {
				bits[i] = true
			}
			cs := make([]zkp.Commitment, k)
			os := make([]zkp.Opening, k)
			for i, bit := range bits {
				c, o, err := zkp.Commit(bit)
				if err != nil {
					b.Fatal(err)
				}
				cs[i], os[i] = c, o
			}
			ctx := []byte("bench")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mp, err := zkp.ProveMonotone(cs, os, k/2+1, ctx)
				if err != nil {
					b.Fatal(err)
				}
				if err := zkp.VerifyMonotone(cs, mp, ctx); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// E5: primitive costs underlying §3.8's overhead argument.
func BenchmarkSHA256(b *testing.B) {
	msg := make([]byte, 1024)
	b.SetBytes(1024)
	for i := 0; i < b.N; i++ {
		sha256.Sum256(msg)
	}
}

func benchSign(b *testing.B, s sigs.Signer) {
	b.Helper()
	msg := []byte("update: 203.0.113.0/24 via AS64500, epoch 12345")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Sign(msg); err != nil {
			b.Fatal(err)
		}
	}
}

func benchVerify(b *testing.B, s sigs.Signer) {
	b.Helper()
	msg := []byte("update: 203.0.113.0/24 via AS64500, epoch 12345")
	sig, err := s.Sign(msg)
	if err != nil {
		b.Fatal(err)
	}
	pub := s.Public()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := pub.Verify(msg, sig); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRSA1024Sign measures the paper's headline primitive ("A
// RSA-1024 signature takes about two milliseconds on current hardware").
func BenchmarkRSA1024Sign(b *testing.B) {
	s, err := sigs.GenerateRSA(1024)
	if err != nil {
		b.Fatal(err)
	}
	benchSign(b, s)
}

func BenchmarkRSA1024Verify(b *testing.B) {
	s, err := sigs.GenerateRSA(1024)
	if err != nil {
		b.Fatal(err)
	}
	benchVerify(b, s)
}

func BenchmarkRSA2048Sign(b *testing.B) {
	s, err := sigs.GenerateRSA(2048)
	if err != nil {
		b.Fatal(err)
	}
	benchSign(b, s)
}

func BenchmarkEd25519Sign(b *testing.B) {
	s, err := sigs.GenerateEd25519()
	if err != nil {
		b.Fatal(err)
	}
	benchSign(b, s)
}

func BenchmarkEd25519Verify(b *testing.B) {
	s, err := sigs.GenerateEd25519()
	if err != nil {
		b.Fatal(err)
	}
	benchVerify(b, s)
}

// E6: batch signing — per-update cost vs batch size (§3.8: "sign messages
// in batches, perhaps using a small MHT to reveal batched routes
// individually").
func BenchmarkBatchSigning(b *testing.B) {
	s, err := sigs.GenerateRSA(1024)
	if err != nil {
		b.Fatal(err)
	}
	for _, batch := range []int{1, 4, 16, 64, 256, 1024} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			msgs := make([][]byte, batch)
			for i := range msgs {
				msgs[i] = []byte(fmt.Sprintf("update-%d: 203.0.113.0/24 path 64500 6550%d", i, i))
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// One signature per batch + one audit path per update.
				mt, err := merkle.NewBatch(msgs)
				if err != nil {
					b.Fatal(err)
				}
				root := mt.Root()
				if _, err := s.Sign(root[:]); err != nil {
					b.Fatal(err)
				}
				for j := range msgs {
					if _, err := mt.Prove(j); err != nil {
						b.Fatal(err)
					}
				}
			}
			// Report per-update cost, the number §3.8 cares about.
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*batch), "ns/update")
		})
	}
}

// E10: sharded multi-prefix engine vs the equivalent loop of
// single-prefix provers, one full epoch over a 1k-prefix table: accept
// every announcement, commit every prefix, verify every promisee view.
// The serial variant is the pre-engine architecture (one core.Prover per
// prefix, one commitment signature each, sequential verification); the
// engine variant shards state, ingests concurrently, signs one Merkle
// root per shard, and verifies through the worker pipeline. On a
// multi-core machine the engine sustains well over 2x the serial
// throughput (on one core the two converge, minus the signature
// amortization).
func BenchmarkEngineThroughput(b *testing.B) {
	e := env(b)
	const (
		nPfx   = 1000
		k      = 2
		maxLen = 16
		epoch  = uint64(1)
	)
	prover, promisee := aspath.ASN(100), aspath.ASN(199)
	pfxs := make([]prefix.Prefix, nPfx)
	anns := make([]core.Announcement, 0, nPfx*k)
	for i := range pfxs {
		pfxs[i] = prefix.V4(10, byte(i>>8), byte(i), 0, 24)
		for j := 0; j < k; j++ {
			from := aspath.ASN(101 + j)
			asns := make([]aspath.ASN, 1+(i+j)%maxLen)
			asns[0] = from
			for l := 1; l < len(asns); l++ {
				asns[l] = aspath.ASN(65000 + l)
			}
			ann, err := core.NewAnnouncement(e.signers[from], from, prover, epoch, route.Route{
				Prefix:  pfxs[i],
				Path:    aspath.New(asns...),
				NextHop: netip.AddrFrom4([4]byte{10, 0, 0, 1}),
			})
			if err != nil {
				b.Fatal(err)
			}
			anns = append(anns, ann)
		}
	}

	b.Run("serial-provers", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			provers := make(map[prefix.Prefix]*core.Prover, nPfx)
			for _, a := range anns {
				p := provers[a.Route.Prefix]
				if p == nil {
					var err error
					if p, err = core.NewProver(prover, e.signers[prover], e.reg, maxLen); err != nil {
						b.Fatal(err)
					}
					p.BeginEpoch(epoch, a.Route.Prefix)
					provers[a.Route.Prefix] = p
				}
				if _, err := p.AcceptAnnouncement(a); err != nil {
					b.Fatal(err)
				}
			}
			for _, pfx := range pfxs {
				p := provers[pfx]
				if _, err := p.CommitMin(); err != nil {
					b.Fatal(err)
				}
				v, err := p.DiscloseToPromisee(promisee)
				if err != nil {
					b.Fatal(err)
				}
				if err := core.VerifyPromiseeView(e.reg, v); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.ReportMetric(float64(nPfx)*float64(b.N)/b.Elapsed().Seconds(), "prefixes/s")
	})

	b.Run("engine", func(b *testing.B) {
		writers := runtime.GOMAXPROCS(0)
		for i := 0; i < b.N; i++ {
			eng, err := engine.New(engine.Config{
				ASN: prover, Signer: e.signers[prover], Registry: e.reg, MaxLen: maxLen,
				Promisee: promisee,
			})
			if err != nil {
				b.Fatal(err)
			}
			eng.BeginEpoch(epoch)
			if _, err := eng.AcceptAll(anns, writers); err != nil {
				b.Fatal(err)
			}
			if _, err := eng.SealEpoch(); err != nil {
				b.Fatal(err)
			}
			pl := engine.NewPipeline(e.reg, writers)
			for _, pfx := range pfxs {
				v, err := eng.DiscloseToPromisee(pfx, promisee)
				if err != nil {
					b.Fatal(err)
				}
				pl.SubmitPromisee(v, promisee)
			}
			for _, r := range pl.Drain() {
				if r.Err != nil {
					b.Fatalf("%s: %v", r.Prefix, r.Err)
				}
			}
		}
		b.ReportMetric(float64(nPfx)*float64(b.N)/b.Elapsed().Seconds(), "prefixes/s")
	})
}

// E9: ring signatures for the link-state variant of §3.2.
func BenchmarkRingSign(b *testing.B) {
	keys := make([]*rsa.PrivateKey, 32)
	for i := range keys {
		k, err := rsa.GenerateKey(rand.Reader, 1024)
		if err != nil {
			b.Fatal(err)
		}
		keys[i] = k
	}
	for _, n := range []int{2, 4, 8, 16, 32} {
		b.Run(fmt.Sprintf("ring=%d", n), func(b *testing.B) {
			pubs := make([]*rsa.PublicKey, n)
			for i := 0; i < n; i++ {
				pubs[i] = &keys[i].PublicKey
			}
			ring, err := ringsig.NewRing(pubs)
			if err != nil {
				b.Fatal(err)
			}
			msg := []byte("a route exists")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sig, err := ring.Sign(msg, keys[0])
				if err != nil {
					b.Fatal(err)
				}
				if err := ring.Verify(msg, sig); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
