package pvr_test

// Public-API-only integration test: everything here goes through package
// pvr — no internal/... imports — exercising the Participant lifecycle
// over the in-memory transport: sealed-table advertisement, live churn
// windows with dirty-shard re-sealing, audit gossip, an injected
// equivocation, and the network-wide conviction that follows.

import (
	"context"
	"errors"
	"net/netip"
	"os"
	"testing"
	"time"

	"pvr"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestParticipantsEndToEndConviction(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	mem := pvr.NewMemTransport()

	// A shared out-of-band PKI for the churn provider; A joins it so
	// announcements from the provider verify. B and C start from empty
	// registries and pin A's key trust-on-first-use.
	network := pvr.NewNetwork()
	provider, err := network.AddNode(64700)
	if err != nil {
		t.Fatal(err)
	}

	pfxs := []pvr.Prefix{
		pvr.MustParsePrefix("203.0.113.0/24"),
		pvr.MustParsePrefix("198.51.100.0/24"),
		pvr.MustParsePrefix("192.0.2.0/24"),
	}

	// A: the origin under test — originates the table, serves BGP and
	// audit gossip. Window 0 keeps sealing deterministic: windows seal
	// only on explicit Flush.
	a, err := pvr.Open(ctx,
		pvr.WithASN(64500),
		pvr.WithTransport(mem),
		pvr.WithRegistry(network.Registry()),
		pvr.WithOriginate(pfxs...),
		pvr.WithShards(4),
		pvr.WithWindow(0),
		pvr.WithListen("a"),
		pvr.WithGossipListen("ga"),
		pvr.WithHoldTime(0),
		pvr.WithLogf(t.Logf),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	// B: dials A's BGP session and audits what it learns.
	b, err := pvr.Open(ctx,
		pvr.WithASN(64501),
		pvr.WithTransport(mem),
		pvr.WithPeers("a"),
		pvr.WithGossipListen("gb"),
		pvr.WithHoldTime(0),
		pvr.WithLogf(t.Logf),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	// C: no BGP session with A at all — it learns of A's misbehaviour
	// purely through audit gossip with B. It shares the out-of-band PKI
	// (so transferred evidence verifies) but has no adjacency to pin from.
	c, err := pvr.Open(ctx,
		pvr.WithASN(64502),
		pvr.WithTransport(mem),
		pvr.WithRegistry(network.Registry()),
		pvr.WithGossipListen("gc"),
		pvr.WithHoldTime(0),
		pvr.WithLogf(t.Logf),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Phase 1: B learns and verifies A's sealed table.
	waitFor(t, "B to verify A's table", func() bool {
		return b.Stats().RoutesVerified >= uint64(len(pfxs))
	})
	if got := b.Stats().RoutesRejected; got != 0 {
		t.Fatalf("B rejected %d routes before any misbehaviour", got)
	}

	// Phase 2: live churn. The provider announces fresh routes for A's
	// prefixes; each Flush seals a window over only the dirty shards and
	// re-advertises the changed prefixes with fresh seals.
	window0 := a.Stats().Window
	for round := 0; round < 2; round++ {
		for i, pfx := range pfxs[:2] {
			ann, err := provider.Announce(a.ASN(), 1, pvr.Route{
				Prefix:  pfx,
				Path:    pvr.NewPath(provider.ASN(), pvr.ASN(64800+uint32(round)), pvr.ASN(64900+uint32(i))),
				NextHop: netip.MustParseAddr("192.0.2.1"),
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := a.Submit(ctx, pvr.AnnounceEvent(provider.ASN(), ann)); err != nil {
				t.Fatal(err)
			}
		}
		w, err := a.Flush(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if w.DirtyPrefixes != 2 {
			t.Fatalf("window %d: dirty prefixes = %d, want 2", w.Window, w.DirtyPrefixes)
		}
		if len(w.Rebuilt) == 0 || len(w.Rebuilt) >= w.TotalShards {
			t.Fatalf("window %d rebuilt %d/%d shards; want a proper dirty subset",
				w.Window, len(w.Rebuilt), w.TotalShards)
		}
	}
	if got := a.Stats().Window; got != window0+2 {
		t.Fatalf("windows advanced %d -> %d, want +2", window0, got)
	}
	verifiedBeforeConviction := uint64(len(pfxs) + 2 + 2)
	waitFor(t, "B to verify the churn re-advertisements", func() bool {
		return b.Stats().RoutesVerified >= verifiedBeforeConviction
	})

	// Phase 3: B reconciles with A's audit endpoint and holds A's genuine
	// seal statements.
	st, err := b.Reconcile(ctx, "ga")
	if err != nil {
		t.Fatal(err)
	}
	if st.NewStatements == 0 {
		t.Fatal("reconcile with A moved no statements")
	}

	// Phase 4: A equivocates. It signs a second, different payload on one
	// of its own live seal topics — the two-faced statement it would show
	// a different neighbor — and B receives it.
	seals := a.Engine().Seals()
	if len(seals) == 0 {
		t.Fatal("A has no seals")
	}
	genuine := seals[0].Statement()
	forged, err := a.SignStatement(genuine.Topic, append(append([]byte(nil), genuine.Payload...), 0xFF))
	if err != nil {
		t.Fatal(err)
	}
	_, conflict, err := b.Auditor().AddRecord(pvr.AuditRecord{Epoch: seals[0].Epoch, S: forged})
	if err != nil {
		t.Fatal(err)
	}
	if conflict == nil {
		t.Fatal("forged statement on a live topic went undetected")
	}
	if !b.Auditor().Convicted(a.ASN()) {
		t.Fatal("B did not convict A after detecting the equivocation")
	}

	// Phase 5: the conviction spreads network-wide through gossip alone:
	// C reconciles with B and receives the transferable evidence.
	if c.Auditor().Convicted(a.ASN()) {
		t.Fatal("C convicted A before gossiping with anyone")
	}
	st, err = c.Reconcile(ctx, "gb")
	if err != nil {
		t.Fatal(err)
	}
	if st.NewConflicts == 0 {
		t.Fatal("reconcile with B moved no evidence")
	}
	if !c.Auditor().Convicted(a.ASN()) {
		t.Fatal("C did not convict A from gossiped evidence")
	}
	if got := c.Stats().Convictions; got != 1 {
		t.Fatalf("C convictions = %d, want 1", got)
	}

	// Phase 6: a convicted origin's routes are rejected. More churn from
	// A re-advertises with fresh seals; B now refuses them.
	rejected0 := b.Stats().RoutesRejected
	ann, err := provider.Announce(a.ASN(), 1, pvr.Route{
		Prefix:  pfxs[2],
		Path:    pvr.NewPath(provider.ASN(), 64999),
		NextHop: netip.MustParseAddr("192.0.2.1"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Submit(ctx, pvr.AnnounceEvent(provider.ASN(), ann)); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "B to reject the convicted origin's routes", func() bool {
		return b.Stats().RoutesRejected > rejected0
	})
	if got := b.Stats().RoutesVerified; got > verifiedBeforeConviction {
		t.Fatalf("B verified %d routes after conviction, want none past %d", got, verifiedBeforeConviction)
	}
}

// TestOpenConfigErrors pins the error taxonomy on the lifecycle paths.
func TestOpenConfigErrors(t *testing.T) {
	ctx := context.Background()
	if _, err := pvr.Open(ctx); !errors.Is(err, pvr.ErrConfig) {
		t.Fatalf("Open without ASN: %v, want ErrConfig", err)
	}
	if _, err := pvr.Open(ctx, pvr.WithASN(1), pvr.WithChurn(10)); !errors.Is(err, pvr.ErrConfig) {
		t.Fatalf("Open with churn but no originate: %v, want ErrConfig", err)
	}
	if _, err := pvr.Open(ctx, pvr.WithASN(1), pvr.WithWindow(-1)); !errors.Is(err, pvr.ErrConfig) {
		t.Fatalf("Open with negative window: %v, want ErrConfig", err)
	}
	// A shared registry that already holds a key for the ASN must not be
	// silently overwritten by a fresh Participant key.
	network := pvr.NewNetwork()
	if _, err := network.AddNode(64500); err != nil {
		t.Fatal(err)
	}
	if _, err := pvr.Open(ctx, pvr.WithASN(64500), pvr.WithRegistry(network.Registry())); !errors.Is(err, pvr.ErrConfig) {
		t.Fatalf("Open over an ASN with a registered key: %v, want ErrConfig", err)
	}
	// A failed Open must roll back the keys it added, so a shared
	// registry is not poisoned for the retry.
	reg := pvr.NewRegistry()
	// A path through a regular file cannot become the ledger directory.
	blocker := t.TempDir() + "/blocker"
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := pvr.Open(ctx, pvr.WithASN(7), pvr.WithRegistry(reg),
		pvr.WithOriginate(pvr.MustParsePrefix("203.0.113.0/24")),
		pvr.WithLedger(blocker+"/ledger")); err == nil {
		t.Fatal("Open with an unopenable ledger succeeded")
	}
	retry, err := pvr.Open(ctx, pvr.WithASN(7), pvr.WithRegistry(reg),
		pvr.WithOriginate(pvr.MustParsePrefix("203.0.113.0/24")), pvr.WithHoldTime(0))
	if err != nil {
		t.Fatalf("retry after failed Open: %v (registry poisoned?)", err)
	}
	retry.Close()

	mem := pvr.NewMemTransport()
	p, err := pvr.Open(ctx, pvr.WithASN(1), pvr.WithTransport(mem), pvr.WithHoldTime(0))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if _, err := p.Reconcile(ctx, "nowhere"); !errors.Is(err, pvr.ErrNotFound) {
		t.Fatalf("Reconcile to unbound address: %v, want ErrNotFound", err)
	}
	var pe *pvr.Error
	if _, err := p.Reconcile(ctx, "nowhere"); !errors.As(err, &pe) || pe.Kind != pvr.KindNotFound {
		t.Fatalf("Reconcile error does not expose Kind via errors.As: %v", err)
	}
}
