// Byzantine fault injection: the §2.3 properties demonstrated end to end.
//
// The same Fig. 1 scenario runs four times — honest, suppressing,
// exporting the wrong route, and equivocating — and the output shows who
// detects each misbehaviour, and that every detection carries evidence a
// third-party judge convicts on, while the honest run stays clean.
//
//	go run ./examples/byzantine
package main

import (
	"fmt"
	"log"

	"pvr"
)

func main() {
	cases := []struct {
		fault pvr.Fault
		story string
	}{
		{pvr.FaultNone, "honest A: commits true bits, exports the shortest route"},
		{pvr.FaultSuppress, "A hides all routes: commits an all-zero vector, exports nothing"},
		{pvr.FaultWrongExport, "A steers traffic: commits honest bits but exports the longest route"},
		{pvr.FaultEquivocate, "A lies selectively: honest commitment to providers, zero vector to B"},
	}
	for _, c := range cases {
		cfg := pvr.Fig1Config{K: 4, MaxLen: 16, Fault: c.fault, Seed: 7}
		if c.fault == pvr.FaultWrongExport {
			cfg.Providers = []int{6, 2, 9, 4} // distinct lengths: the lie is real
		}
		res, err := pvr.RunFig1(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("fault=%-13s %s\n", c.fault, c.story)
		if res.Exported != nil {
			fmt.Printf("  B received     : %d-hop route\n", res.Exported.PathLen())
		} else {
			fmt.Printf("  B received     : nothing\n")
		}
		if res.Detected {
			fmt.Printf("  detection      : caught by %v\n", res.DetectedBy)
			fmt.Printf("  evidence       : %d accusation(s) upheld by the judge\n", res.GuiltyVerdicts)
		} else {
			fmt.Printf("  detection      : no violation observed\n")
		}
		fmt.Printf("  false verdicts : %d\n\n", res.FalseAccusations)

		// Sanity: the four §2.3 properties.
		switch c.fault {
		case pvr.FaultNone:
			if res.Detected || res.FalseAccusations > 0 {
				log.Fatal("ACCURACY broken: honest prover flagged")
			}
		default:
			if !res.Detected {
				log.Fatalf("DETECTION broken: %v escaped", c.fault)
			}
			if res.GuiltyVerdicts == 0 {
				log.Fatalf("EVIDENCE broken: %v detected but not convictable", c.fault)
			}
		}
	}
	fmt.Println("all four PVR properties held: Detection, Evidence, Accuracy (and see")
	fmt.Println("the netsim tests for the Confidentiality audit of B's disclosed bits)")
}
