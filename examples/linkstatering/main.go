// Link-state variant (§3.2, last paragraph): when the protocol only needs
// to export *whether a path exists*, the providers can sign the statement
// "a route exists" with a ring signature. The recipient B verifies that
// SOME member of {N1..N4} signed — but cannot tell which one, so PVR
// reveals strictly less than a conventional signature would.
//
//	go run ./examples/linkstatering
package main

import (
	"crypto/rand"
	"crypto/rsa"
	"fmt"
	"log"

	"pvr/internal/ringsig"
)

func main() {
	// Four providers generate RSA keys (their routing identities).
	const members = 4
	keys := make([]*rsa.PrivateKey, members)
	pubs := make([]*rsa.PublicKey, members)
	for i := range keys {
		k, err := rsa.GenerateKey(rand.Reader, 1024)
		if err != nil {
			log.Fatal(err)
		}
		keys[i] = k
		pubs[i] = &k.PublicKey
	}
	ring, err := ringsig.NewRing(pubs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ring of %d providers, signature size %d bytes\n", ring.Size(), ring.SignatureSize())

	// N3 (index 2) actually has a route and signs the statement.
	statement := []byte("a route to 203.0.113.0/24 exists, epoch 9")
	sig, err := ring.Sign(statement, keys[2])
	if err != nil {
		log.Fatal(err)
	}

	// B verifies: some ring member signed...
	if err := ring.Verify(statement, sig); err != nil {
		log.Fatalf("verification failed: %v", err)
	}
	fmt.Println("B verified: one of {N1,N2,N3,N4} vouches that a route exists")

	// ...but the signature is structurally identical no matter who signed:
	// every component has the same width, and signatures by different
	// members verify the same way.
	sigByN1, err := ring.Sign(statement, keys[0])
	if err != nil {
		log.Fatal(err)
	}
	if err := ring.Verify(statement, sigByN1); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("signatures by N3 and N1 are indistinguishable in shape: %d vs %d bytes\n",
		len(sig.V)*(len(sig.Xs)+1), len(sigByN1.V)*(len(sigByN1.Xs)+1))

	// Tampering or changing the statement breaks it.
	if err := ring.Verify([]byte("no route exists"), sig); err == nil {
		log.Fatal("forged statement accepted")
	}
	fmt.Println("altered statements are rejected; the signer's anonymity is preserved")
}
