// Example engine: the sharded multi-prefix prover across a whole table.
//
// AS 64500 receives routes for many prefixes from two providers, seals
// the epoch with one Merkle-batched signature per shard, and every
// neighbor verifies its disclosure through the parallel pipeline. A
// Byzantine variant then shows a wrong export being caught.
package main

import (
	"fmt"
	"log"
	"net/netip"
	"runtime"

	"pvr"
)

func main() {
	net := pvr.NewNetwork()
	a, err := net.AddNode(64500) // the prover A
	check(err)
	n1, err := net.AddNode(64501) // provider N1
	check(err)
	n2, err := net.AddNode(64502) // provider N2
	check(err)
	b, err := net.AddNode(64503) // promisee B
	check(err)

	eng, err := a.NewEngine(pvr.EngineConfig{MaxLen: 16, Shards: 4})
	check(err)
	eng.BeginEpoch(1)

	// Providers announce routes for 32 prefixes; path lengths differ, so
	// each prefix has a distinct shortest route.
	const nPfx = 32
	var (
		prefixes []pvr.Prefix
		inputs   []pvr.Announcement
	)
	announce := func(from *pvr.Node, pfx pvr.Prefix, length int) {
		asns := make([]pvr.ASN, length)
		asns[0] = from.ASN()
		for i := 1; i < length; i++ {
			asns[i] = pvr.ASN(64800 + i)
		}
		ann, err := from.Announce(a.ASN(), 1, pvr.Route{
			Prefix:  pfx,
			Path:    pvr.NewPath(asns...),
			NextHop: netip.MustParseAddr("192.0.2.1"),
		})
		check(err)
		_, err = eng.AcceptAnnouncement(ann)
		check(err)
		inputs = append(inputs, ann)
	}
	for i := 0; i < nPfx; i++ {
		pfx := pvr.MustParsePrefix(fmt.Sprintf("10.20.%d.0/24", i))
		prefixes = append(prefixes, pfx)
		announce(n1, pfx, 2+i%6)
		announce(n2, pfx, 1+i%9)
	}

	seals, err := eng.SealEpoch()
	check(err)
	fmt.Printf("sealed %d prefixes into %d shard seals (vs %d per-prefix signatures before)\n",
		nPfx, len(seals), nPfx)

	// Every neighbor verifies through the pipeline.
	pl := pvr.NewPipeline(net.Registry(), runtime.GOMAXPROCS(0))
	for _, ann := range inputs {
		v, err := eng.DiscloseToProvider(ann.Route.Prefix, ann.Provider)
		check(err)
		pl.SubmitProvider(v, ann)
	}
	for _, pfx := range prefixes {
		v, err := eng.DiscloseToPromisee(pfx, b.ASN())
		check(err)
		pl.SubmitPromisee(v, b.ASN())
	}
	ok := 0
	for _, r := range pl.Drain() {
		if r.Err != nil {
			log.Fatalf("%s rejected by %s: %v", r.Prefix, r.Neighbor, r.Err)
		}
		ok++
	}
	fmt.Printf("pipeline verified %d disclosures (providers' bits + B's full vectors)\n", ok)

	// Byzantine variant: swap one prefix's export for the longer route.
	view, err := eng.DiscloseToPromisee(prefixes[0], b.ASN())
	check(err)
	var longer *pvr.Announcement
	for i := range inputs {
		ann := inputs[i]
		if ann.Route.Prefix == prefixes[0] && (longer == nil || ann.Route.PathLen() > longer.Route.PathLen()) {
			longer = &ann
		}
	}
	cheat := *view
	cheat.Winner = longer
	cheat.Export, err = exportOf(a, b, longer)
	check(err)
	err = pvr.VerifyEnginePromiseeView(net.Registry(), &cheat)
	if v, caught := pvr.IsViolation(err); caught {
		fmt.Printf("wrong export caught: %s (%s)\n", v.Kind, v.Detail)
	} else {
		log.Fatalf("wrong export NOT caught: %v", err)
	}
}

// exportOf signs an export statement for the given winner, as a cheating
// prover would when steering traffic to a longer route.
func exportOf(a *pvr.Node, b *pvr.Node, winner *pvr.Announcement) (pvr.ExportStatement, error) {
	exported, err := winner.Route.WithPrepended(a.ASN())
	if err != nil {
		return pvr.ExportStatement{}, err
	}
	return a.SignExport(b.ASN(), 1, exported)
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
