// Example participant: the whole PVR deployment story through one
// lifecycle-managed object per AS.
//
// AS 64500 originates a small table and serves it — sealed per-prefix
// commitments batched into Merkle shard seals — over the in-memory
// transport. AS 64501 dials it, pins its key trust-on-first-use, and
// verifies every learned route against the sealed commitment chain.
// Live churn re-seals only the dirty shards each window. Then 64500
// equivocates — signs a second, different statement on one of its own
// seal topics — and the audit layer convicts it: 64501 starts rejecting
// its routes, and the conviction transfers to AS 64502 through gossip
// alone.
//
//	go run ./examples/participant
package main

import (
	"context"
	"fmt"
	"log"
	"net/netip"
	"time"

	"pvr"
)

func main() {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	mem := pvr.NewMemTransport()

	// The out-of-band PKI the paper assumes: the churn provider and the
	// pure auditor share it; the BGP neighbor instead pins keys
	// trust-on-first-use from the session.
	network := pvr.NewNetwork()
	provider, err := network.AddNode(64700)
	check(err)

	pfxs := []pvr.Prefix{
		pvr.MustParsePrefix("203.0.113.0/24"),
		pvr.MustParsePrefix("198.51.100.0/24"),
	}

	// The origin: proves over its table, serves BGP and audit gossip.
	// WithWindow(0) makes sealing explicit (Flush) so the demo is
	// deterministic; a daemon would use a timer window instead.
	origin, err := pvr.Open(ctx,
		pvr.WithASN(64500),
		pvr.WithTransport(mem),
		pvr.WithRegistry(network.Registry()),
		pvr.WithOriginate(pfxs...),
		pvr.WithShards(4),
		pvr.WithWindow(0),
		pvr.WithListen("origin"),
		pvr.WithGossipListen("origin-audit"),
		pvr.WithHoldTime(0),
	)
	check(err)
	defer origin.Close()

	// The neighbor: dials the origin and verifies what it learns.
	neighbor, err := pvr.Open(ctx,
		pvr.WithASN(64501),
		pvr.WithTransport(mem),
		pvr.WithPeers("origin"),
		pvr.WithGossipListen("neighbor-audit"),
		pvr.WithHoldTime(0),
	)
	check(err)
	defer neighbor.Close()

	// A pure auditor: no BGP adjacency with the origin at all.
	auditor, err := pvr.Open(ctx,
		pvr.WithASN(64502),
		pvr.WithTransport(mem),
		pvr.WithRegistry(network.Registry()),
		pvr.WithGossipListen("auditor-audit"),
		pvr.WithHoldTime(0),
	)
	check(err)
	defer auditor.Close()

	waitUntil(func() bool { return neighbor.Stats().RoutesVerified >= uint64(len(pfxs)) })
	fmt.Printf("neighbor verified the origin's table: %d sealed routes\n",
		neighbor.Stats().RoutesVerified)

	// Live churn: a fresh provider route dirties one prefix; the window
	// re-seals only that shard and re-advertises with the fresh seal.
	ann, err := provider.Announce(origin.ASN(), 1, pvr.Route{
		Prefix:  pfxs[0],
		Path:    pvr.NewPath(provider.ASN(), 64800),
		NextHop: netip.MustParseAddr("192.0.2.1"),
	})
	check(err)
	check(origin.Submit(ctx, pvr.AnnounceEvent(provider.ASN(), ann)))
	w, err := origin.Flush(ctx)
	check(err)
	fmt.Printf("churn window %d: rebuilt %d/%d shards for %d dirty prefix\n",
		w.Window, len(w.Rebuilt), w.TotalShards, w.DirtyPrefixes)

	// The neighbor reconciles with the origin's audit endpoint and now
	// holds its genuine seal statements.
	_, err = neighbor.Reconcile(ctx, "origin-audit")
	check(err)

	// Equivocation: the origin signs a different payload on a live seal
	// topic — what it would show a different neighbor. Detection is
	// immediate and the evidence is transferable.
	genuine := origin.Engine().Seals()[0].Statement()
	forged, err := origin.SignStatement(genuine.Topic, append([]byte("two-faced:"), genuine.Payload...))
	check(err)
	_, conflict, err := neighbor.Auditor().AddRecord(pvr.AuditRecord{Epoch: 1, S: forged})
	check(err)
	if conflict == nil || !neighbor.Auditor().Convicted(origin.ASN()) {
		log.Fatal("equivocation went undetected")
	}
	fmt.Printf("neighbor convicted %s: equivocation on %q\n", origin.ASN(), conflict.Topic)

	// The conviction spreads through gossip alone.
	_, err = auditor.Reconcile(ctx, "neighbor-audit")
	check(err)
	if !auditor.Auditor().Convicted(origin.ASN()) {
		log.Fatal("conviction did not transfer through gossip")
	}
	fmt.Println("auditor convicted the origin from gossiped evidence alone")

	// And the convicted origin's routes are now rejected.
	ann, err = provider.Announce(origin.ASN(), 1, pvr.Route{
		Prefix:  pfxs[1],
		Path:    pvr.NewPath(provider.ASN(), 64801),
		NextHop: netip.MustParseAddr("192.0.2.1"),
	})
	check(err)
	check(origin.Submit(ctx, pvr.AnnounceEvent(provider.ASN(), ann)))
	_, err = origin.Flush(ctx)
	check(err)
	waitUntil(func() bool { return neighbor.Stats().RoutesRejected > 0 })
	st := neighbor.Stats()
	fmt.Printf("neighbor now rejects the origin: %d verified before conviction, %d rejected after\n",
		st.RoutesVerified, st.RoutesRejected)
}

func waitUntil(cond func() bool) {
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			log.Fatal("timed out")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
