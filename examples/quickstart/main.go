// Quickstart: the paper's Figure 1 scenario through the public API.
//
// Network A (AS64500) promises its customer B (AS64510) that it will
// always export the shortest route it receives from its providers
// N1..N3. One protocol epoch runs: the providers announce signed routes,
// A commits to the §3.3 bit vector, and every neighbor verifies its
// disclosure — without learning anything beyond what BGP already reveals.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"net/netip"

	"pvr"
)

func main() {
	network := pvr.NewNetwork()
	a := mustNode(network, 64500)  // the prover A
	n1 := mustNode(network, 64501) // providers N1..N3
	n2 := mustNode(network, 64502)
	n3 := mustNode(network, 64503)
	b := mustNode(network, 64510) // the promisee B

	pfx := pvr.MustParsePrefix("203.0.113.0/24")
	const epoch = 1

	// A starts the epoch with a bit vector covering paths up to 32 hops.
	prover, err := a.NewProver(32)
	if err != nil {
		log.Fatal(err)
	}
	prover.BeginEpoch(epoch, pfx)

	// Each provider announces a signed route; A acknowledges with a
	// receipt (the provider keeps it — it is what makes later accusations
	// judge-proof).
	routes := map[*pvr.Node][]pvr.ASN{
		n1: {n1.ASN(), 64700, 64701, 64702}, // length 4
		n2: {n2.ASN(), 64800},               // length 2: the winner
		n3: {n3.ASN(), 64900, 64901},        // length 3
	}
	anns := map[*pvr.Node]pvr.Announcement{}
	for node, path := range routes {
		ann, err := node.Announce(a.ASN(), epoch, pvr.Route{
			Prefix:  pfx,
			Path:    pvr.NewPath(path...),
			NextHop: netip.MustParseAddr("192.0.2.1"),
		})
		if err != nil {
			log.Fatal(err)
		}
		receipt, err := prover.AcceptAnnouncement(ann)
		if err != nil {
			log.Fatal(err)
		}
		anns[node] = ann
		fmt.Printf("%s announced a %d-hop route; got receipt from %s\n",
			node.ASN(), ann.Route.PathLen(), receipt.Issuer)
	}

	// A commits to the bit vector and publishes it (in deployment the
	// commitment is gossiped among the neighbors for equivocation checks).
	commitment, err := prover.CommitMin()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nA committed to %d bit commitments for epoch %d\n",
		len(commitment.Commitments), epoch)

	// Each provider verifies its own disclosure: the bit at its route's
	// length must be 1. It learns nothing about the other providers.
	for node, ann := range anns {
		view, err := prover.DiscloseToProvider(node.ASN())
		if err != nil {
			log.Fatal(err)
		}
		if err := pvr.VerifyProviderView(network.Registry(), view, ann); err != nil {
			log.Fatalf("%s detected a violation: %v", node.ASN(), err)
		}
		fmt.Printf("%s verified its view (bit %d opens to 1)\n", node.ASN(), view.Position)
	}

	// B verifies the full vector, monotonicity, and that the export is
	// the committed minimum with valid provenance.
	view, err := prover.DiscloseToPromisee(b.ASN())
	if err != nil {
		log.Fatal(err)
	}
	if err := pvr.VerifyPromiseeView(network.Registry(), view); err != nil {
		log.Fatalf("B detected a violation: %v", err)
	}
	fmt.Printf("\nB verified the promise: exported route %s (path %s)\n",
		view.Export.Route.Prefix, view.Export.Route.Path)
	fmt.Println("promise kept: the export extends the shortest input, and nobody learned anything new")
}

func mustNode(n *pvr.Network, asn pvr.ASN) *pvr.Node {
	node, err := n.AddNode(asn)
	if err != nil {
		log.Fatal(err)
	}
	return node
}
