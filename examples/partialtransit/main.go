// Partial transit: the paper's Figure 2 policy as a route-flow graph.
//
// A's promise to B is "I will export some route via N2..N4 unless N1
// provides a shorter route" — a multi-operator graph (exists over r2..r4
// feeding a preference operator with r1). The example shows the three
// §2.2/§3.5 steps a skeptical B performs:
//
//  1. statically vet the declared rules against the promise (model check),
//
//  2. verify A's Merkle commitment over the evaluated graph, and
//
//  3. navigate the disclosed vertices without seeing anything α forbids.
//
//     go run ./examples/partialtransit
package main

import (
	"fmt"
	"log"
	mrand "math/rand"
	"net/netip"

	"pvr"
	"pvr/internal/rfg"
	"pvr/internal/route"
)

func main() {
	network := pvr.NewNetwork()
	a, err := network.AddNode(64500)
	if err != nil {
		log.Fatal(err)
	}
	bASN := pvr.ASN(64510)
	if _, err := network.AddNode(bASN); err != nil {
		log.Fatal(err)
	}

	// The declared rules: Fig. 2 with k = 4 inputs.
	graph, inputs, outVar, err := rfg.Fig2(4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("declared route-flow graph: inputs %v, output %s\n", inputs, outVar)

	// Step 1 — B vets the rules offline: does this graph keep the promise
	// "export iff any input exists"? And would it satisfy the stronger
	// "always shortest" promise? (No: that is the point of partial transit.)
	honest := rfg.ExistsFromSubset{Subset: inputs}
	if err := rfg.ModelCheck(graph, honest, inputs, outVar, 500, mrand.New(mrand.NewSource(1))); err != nil {
		log.Fatalf("graph does not implement the agreed promise: %v", err)
	}
	fmt.Printf("model check: graph implements %q\n", honest)
	tooStrong := rfg.ShortestOfSubset{Subset: inputs}
	if err := rfg.ModelCheck(graph, tooStrong, inputs, outVar, 500, mrand.New(mrand.NewSource(2))); err != nil {
		fmt.Printf("model check: graph correctly does NOT implement %q\n  (%v)\n", tooStrong, err)
	}

	// The access policy α: B sees the output and the operators, the edges
	// of the intermediate variable, and none of the input values.
	access := rfg.NewAccess()
	access.AllowAll(bASN, outVar.Label())
	access.AllowAll(bASN, rfg.OpID("prefer").Label())
	access.AllowAll(bASN, rfg.OpID("exists").Label())
	access.Allow(bASN, rfg.VarID("v").Label(), rfg.CompPreds, rfg.CompSuccs)

	// This epoch's inputs: N1 offers 5 hops, N3 offers 3 hops.
	epochInputs := map[rfg.VarID][]route.Route{
		inputs[0]: {mkRoute(64501, 5)},
		inputs[2]: {mkRoute(64503, 3)},
	}

	// Step 2 — A evaluates and commits; B checks the signed root.
	gp := a.NewGraphProver(graph, access)
	gc, err := gp.Commit(1, epochInputs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nA committed to the evaluated graph, root %s\n", gc.Root)

	// Step 3 — B navigates from the output, verifying every disclosure.
	seen, err := pvr.Navigate(network.Registry(), gc, outVar.Label(), func(label string) (*pvr.VertexDisclosure, error) {
		return gp.Disclose(bASN, label)
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("B navigated the disclosed graph:")
	for label, v := range seen {
		switch {
		case v.HasData && len(v.Routes) > 0:
			fmt.Printf("  %-14s value: %d-hop route via %s\n", label, v.Routes[0].PathLen(), firstHop(v.Routes[0]))
		case v.HasData && v.OpType != "":
			fmt.Printf("  %-14s operator: %s (reads %v)\n", label, v.OpType, v.Preds)
		default:
			fmt.Printf("  %-14s edges only (data withheld by α): preds %v\n", label, v.Preds)
		}
	}
	for _, in := range inputs {
		if _, leaked := seen[in.Label()]; leaked {
			log.Fatalf("confidentiality broken: B saw %s", in.Label())
		}
	}
	fmt.Println("confidentiality held: no input variable was disclosed to B")
}

func mkRoute(origin pvr.ASN, hops int) route.Route {
	path := make([]pvr.ASN, hops)
	path[0] = origin
	for i := 1; i < hops; i++ {
		path[i] = pvr.ASN(65000 + i)
	}
	return route.Route{
		Prefix:  pvr.MustParsePrefix("203.0.113.0/24"),
		Path:    pvr.NewPath(path...),
		NextHop: netip.MustParseAddr("192.0.2.7"),
	}
}

func firstHop(r route.Route) pvr.ASN {
	f, _ := r.Path.First()
	return f
}
