package pvr

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"

	"pvr/internal/sigs"
	"pvr/internal/store"
)

// Durable-state WAL record types. The window record is written ahead of
// publication: a seal window number is fsynced before any seal from
// that window reaches the auditor, the gossip mesh, or a BGP peer, so a
// crash can lose an unpublished window but never publish an unlogged
// one — and a restart therefore never re-seals under a window the
// network has already seen (which peers would convict as equivocation).
const (
	// dsWindow: u64 epoch | u64 window. Synchronous.
	dsWindow uint8 = 0x01
	// dsPin: u32 asn | u16 keylen | marshaled public key. Synchronous —
	// a trust-on-first-use pin that silently evaporated on restart would
	// let the next claimant of the ASN present a fresh key.
	dsPin uint8 = 0x02
	// dsNonce: u64 nonce stamp. Asynchronous — it rides the next group
	// commit, trading a bounded replay window (at most one flush
	// interval) for not paying an fsync per disclosure query.
	dsNonce uint8 = 0x03
)

// dsSnapVersion versions the snapshot payload layout.
const dsSnapVersion uint8 = 1

// durableState is the participant's materialized durable state and its
// write path into the store: the sealed (epoch, window) position,
// trust-on-first-use pins, and the disclosure-nonce high-water mark.
// Convictions are deliberately absent — they live in the evidence
// ledger, whose replay re-verifies every signature, so a tampered store
// cannot mint one.
type durableState struct {
	st   *store.Store
	logf func(format string, args ...any)

	mu       sync.Mutex
	epoch    uint64
	window   uint64
	pins     map[ASN][]byte
	nonceHWM uint64
}

func newDurableState(st *store.Store, logf func(string, ...any)) *durableState {
	return &durableState{st: st, logf: logf, pins: make(map[ASN][]byte)}
}

// recover folds a store recovery — snapshot first, then the WAL records
// behind it — into the materialized state.
func (d *durableState) recover(rec *store.Recovery) error {
	if rec.Snapshot != nil {
		if err := d.loadSnapshot(rec.Snapshot); err != nil {
			return err
		}
	}
	for _, r := range rec.Records {
		if err := d.apply(r); err != nil {
			return err
		}
	}
	return nil
}

func (d *durableState) apply(r store.Record) error {
	switch r.Type {
	case dsWindow:
		if len(r.Data) != 16 {
			return fmt.Errorf("pvr: durable state: window record of %d bytes", len(r.Data))
		}
		d.epoch = binary.BigEndian.Uint64(r.Data)
		d.window = binary.BigEndian.Uint64(r.Data[8:])
	case dsPin:
		if len(r.Data) < 6 {
			return fmt.Errorf("pvr: durable state: pin record of %d bytes", len(r.Data))
		}
		asn := ASN(binary.BigEndian.Uint32(r.Data))
		n := int(binary.BigEndian.Uint16(r.Data[4:]))
		if len(r.Data) != 6+n {
			return fmt.Errorf("pvr: durable state: pin record length mismatch")
		}
		d.pins[asn] = append([]byte(nil), r.Data[6:]...)
	case dsNonce:
		if len(r.Data) != 8 {
			return fmt.Errorf("pvr: durable state: nonce record of %d bytes", len(r.Data))
		}
		if s := binary.BigEndian.Uint64(r.Data); s > d.nonceHWM {
			d.nonceHWM = s
		}
	default:
		return fmt.Errorf("pvr: durable state: unknown record type %#x", r.Type)
	}
	return nil
}

// Snapshot payload:
//
//	u8 version | u64 epoch | u64 window | u64 nonceHWM |
//	u32 npins | npins × (u32 asn | u16 keylen | key)
//
// pins sorted by ASN so identical state serializes identically.
func (d *durableState) snapshotPayload() []byte {
	d.mu.Lock()
	defer d.mu.Unlock()
	buf := []byte{dsSnapVersion}
	buf = binary.BigEndian.AppendUint64(buf, d.epoch)
	buf = binary.BigEndian.AppendUint64(buf, d.window)
	buf = binary.BigEndian.AppendUint64(buf, d.nonceHWM)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(d.pins)))
	asns := make([]ASN, 0, len(d.pins))
	for a := range d.pins {
		asns = append(asns, a)
	}
	sort.Slice(asns, func(i, j int) bool { return asns[i] < asns[j] })
	for _, a := range asns {
		key := d.pins[a]
		buf = binary.BigEndian.AppendUint32(buf, uint32(a))
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(key)))
		buf = append(buf, key...)
	}
	return buf
}

func (d *durableState) loadSnapshot(b []byte) error {
	bad := func(what string) error {
		return fmt.Errorf("pvr: durable state: snapshot %s", what)
	}
	if len(b) < 1+8+8+8+4 {
		return bad("truncated")
	}
	if b[0] != dsSnapVersion {
		return fmt.Errorf("pvr: durable state: snapshot version %d not supported", b[0])
	}
	d.epoch = binary.BigEndian.Uint64(b[1:])
	d.window = binary.BigEndian.Uint64(b[9:])
	d.nonceHWM = binary.BigEndian.Uint64(b[17:])
	npins := int(binary.BigEndian.Uint32(b[25:]))
	off := 29
	for i := 0; i < npins; i++ {
		if len(b)-off < 6 {
			return bad("pin truncated")
		}
		asn := ASN(binary.BigEndian.Uint32(b[off:]))
		n := int(binary.BigEndian.Uint16(b[off+4:]))
		off += 6
		if len(b)-off < n {
			return bad("pin key truncated")
		}
		d.pins[asn] = append([]byte(nil), b[off:off+n]...)
		off += n
	}
	if off != len(b) {
		return bad("has trailing bytes")
	}
	return nil
}

// logWindow durably records the sealed position before it is published.
func (d *durableState) logWindow(epoch, window uint64) error {
	var buf [16]byte
	binary.BigEndian.PutUint64(buf[:8], epoch)
	binary.BigEndian.PutUint64(buf[8:], window)
	if err := d.st.Append(dsWindow, buf[:]); err != nil {
		return err
	}
	d.mu.Lock()
	d.epoch, d.window = epoch, window
	d.mu.Unlock()
	return nil
}

// logPin durably records a trust-on-first-use key pin.
func (d *durableState) logPin(asn ASN, key []byte) error {
	buf := binary.BigEndian.AppendUint32(nil, uint32(asn))
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(key)))
	buf = append(buf, key...)
	if err := d.st.Append(dsPin, buf); err != nil {
		return err
	}
	d.mu.Lock()
	d.pins[asn] = append([]byte(nil), key...)
	d.mu.Unlock()
	return nil
}

// logNonce records a served disclosure-query nonce stamp; it rides the
// next group commit.
func (d *durableState) logNonce(stamp uint64) {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], stamp)
	d.st.AppendAsync(dsNonce, buf[:])
	d.mu.Lock()
	if stamp > d.nonceHWM {
		d.nonceHWM = stamp
	}
	d.mu.Unlock()
}

func (d *durableState) nonceFloor() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.nonceHWM
}

// checkpoint snapshots the materialized state, compacting the WAL
// behind it. Run on clean shutdown so the next boot replays nothing.
func (d *durableState) checkpoint() error {
	return d.st.Snapshot(d.snapshotPayload())
}

// maybeSnapshot checkpoints when enough records have accumulated;
// called once per seal window so snapshot cost lands between windows,
// never on a query path.
func (d *durableState) maybeSnapshot() {
	if !d.st.SnapshotDue() {
		return
	}
	if err := d.checkpoint(); err != nil {
		d.logf("pvr: store snapshot: %v", err)
	}
}

// storeOptions maps the participant's StoreConfig onto store.Options,
// attaching the shared pvr_store_* metric set.
func (p *Participant) storeOptions() store.Options {
	return store.Options{
		FlushEvery:    p.cfg.storeCfg.FlushEvery,
		MaxBatch:      p.cfg.storeCfg.MaxBatch,
		SegmentBytes:  p.cfg.storeCfg.SegmentBytes,
		SnapshotEvery: p.cfg.storeCfg.SnapshotEvery,
		Metrics:       p.storeMet,
	}
}

// buildStore opens the durable store (when configured), recovers the
// participant's materialized state, and re-registers recovered
// trust-on-first-use pins. It is the first build step so its closer
// runs last: every other plane has flushed its final writes before the
// closing checkpoint makes the next boot replay-free.
func (p *Participant) buildStore() error {
	if p.cfg.storeDir == "" && p.cfg.storeBackend == nil {
		if p.cfg.storeFault != nil {
			return errConfigf("open", "WithStoreFault requires WithStore or WithStoreBackend")
		}
		return nil
	}
	b := p.cfg.storeBackend
	if b == nil {
		fb, err := store.NewFileBackend(p.cfg.storeDir)
		if err != nil {
			return wrapErr("open", err)
		}
		b = fb
	}
	if p.cfg.storeFault != nil {
		b = p.cfg.storeFault.Bind(b)
	}
	p.storeBk = b
	st, rec, err := store.Open(store.Sub(b, "state"), p.storeOptions())
	if err != nil {
		return wrapErr("open", err)
	}
	d := newDurableState(st, p.cfg.logf)
	if err := d.recover(rec); err != nil {
		_ = st.Close()
		return wrapErr("open", err)
	}
	p.dstate = d
	p.storeStats = StoreStats{
		Enabled:          true,
		RecoveredEpoch:   d.epoch,
		RecoveredWindow:  d.window,
		RecoveredPins:    len(d.pins),
		RecoveredRecords: len(rec.Records),
		NonceFloor:       d.nonceHWM,
		RecoveryTime:     rec.Elapsed,
	}
	// Recovered pins re-enter the registry only on the private
	// trust-on-first-use path; a shared registry is the out-of-band PKI
	// and nothing persisted locally may write into it (the same rule
	// verifySealedRoute enforces at pin time).
	if p.cfg.registry == nil {
		for asn, kb := range d.pins {
			k, err := sigs.UnmarshalPublicKey(kb)
			if err != nil {
				_ = st.Close()
				return wrapErr("open", fmt.Errorf("recovered pin for %s: %w", asn, err))
			}
			if _, added := p.reg.RegisterIfAbsent(asn, k); added {
				p.registered = append(p.registered, asn)
			}
		}
	}
	if d.epoch != 0 || len(rec.Records) > 0 || rec.Snapshot != nil {
		p.cfg.logf("pvr: %s recovered durable state in %s: epoch %d window %d, %d pins, nonce floor %d (%d WAL records past the snapshot)",
			p.asn, rec.Elapsed, d.epoch, d.window, len(d.pins), d.nonceHWM, len(rec.Records))
	}
	p.addCloser(func() {
		if err := d.checkpoint(); err != nil {
			p.cfg.logf("pvr: store checkpoint: %v", err)
		}
		if err := st.Close(); err != nil {
			p.cfg.logf("pvr: store close: %v", err)
		}
	})
	return nil
}
