package pvr

import (
	"context"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"

	"pvr/internal/netx"
)

// Frame is one transport message: an application type byte plus payload,
// length-prefixed on the wire.
type Frame = netx.Frame

// Conn is a framed, bidirectional transport connection. *netx.Conn (TCP)
// and the in-memory transport's connections both satisfy it; the BGP
// session FSM and the audit anti-entropy exchange run over it unchanged.
type Conn = netx.FrameConn

// Listener is an open listening endpoint. Connections are delivered to
// the handler passed to Transport.Listen; Close stops accepting and
// releases the address.
type Listener interface {
	// Addr is the bound address, dialable through the same Transport.
	Addr() string
	// Close stops the listener.
	Close() error
}

// Transport dials and listens: the pluggable byte layer beneath a
// Participant's BGP sessions and audit gossip. TCP() is the production
// implementation; NewMemTransport builds an in-process one for tests and
// simulations. Implementations must be safe for concurrent use.
type Transport interface {
	// Dial connects to addr, honoring ctx for cancellation and deadline.
	Dial(ctx context.Context, addr string) (Conn, error)
	// Listen binds addr ("" or ":0" forms ask the transport to pick) and
	// hands each accepted connection to handle on its own goroutine.
	Listen(addr string, handle func(Conn)) (Listener, error)
}

// TCP returns the production TCP transport with a default 5s dial
// timeout (a ctx deadline, when sooner, wins).
func TCP() Transport { return &tcpTransport{} }

type tcpTransport struct{}

type tcpListener struct {
	addr   net.Addr
	closer interface{ Close() error }
}

func (l *tcpListener) Addr() string { return l.addr.String() }
func (l *tcpListener) Close() error { return l.closer.Close() }

func (t *tcpTransport) Dial(ctx context.Context, addr string) (Conn, error) {
	d := net.Dialer{Timeout: 5 * time.Second}
	raw, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, errKind(KindTransport, "dial", err)
	}
	return netx.NewConn(raw), nil
}

func (t *tcpTransport) Listen(addr string, handle func(Conn)) (Listener, error) {
	bound, closer, err := netx.Listen(addr, func(c *netx.Conn) { handle(c) })
	if err != nil {
		return nil, errKind(KindTransport, "listen", err)
	}
	return &tcpListener{addr: bound, closer: closer}, nil
}

// MemTransport is an in-process Transport: Listen registers an address in
// the transport's private namespace and Dial connects to it over a framed
// net.Pipe, so the same session FSM, gossip protocol, and wire encodings
// run with zero sockets. Use one MemTransport per simulated network; it
// is safe for concurrent use.
type MemTransport struct {
	mu        sync.Mutex
	listeners map[string]*memListener
	next      int
}

// NewMemTransport builds an empty in-memory transport.
func NewMemTransport() *MemTransport {
	return &MemTransport{listeners: make(map[string]*memListener)}
}

type memListener struct {
	t      *MemTransport
	addr   string
	handle func(Conn)

	mu     sync.Mutex
	closed bool
	conns  map[*memConn]struct{}
}

// memConn is one half of a dialed pipe; closing it removes the pair's
// tracking entries so a long-lived listener does not accumulate dead
// connections across many short dials.
type memConn struct {
	Conn
	l    *memListener
	once sync.Once
}

func (c *memConn) Close() error {
	err := c.Conn.Close()
	c.once.Do(func() {
		c.l.mu.Lock()
		delete(c.l.conns, c)
		c.l.mu.Unlock()
	})
	return err
}

func (l *memListener) Addr() string { return l.addr }

// Close unregisters the address and tears down accepted connections.
func (l *memListener) Close() error {
	l.t.mu.Lock()
	delete(l.t.listeners, l.addr)
	l.t.mu.Unlock()
	l.mu.Lock()
	conns := make([]*memConn, 0, len(l.conns))
	for c := range l.conns {
		conns = append(conns, c)
	}
	l.conns, l.closed = nil, true
	l.mu.Unlock()
	for _, c := range conns {
		_ = c.Close()
	}
	return nil
}

// Listen registers addr; an empty addr or any ":0" form (":0",
// "127.0.0.1:0", …) allocates "mem:N", matching the TCP convention so
// configs port between transports. Duplicate registration is a
// transport error.
func (t *MemTransport) Listen(addr string, handle func(Conn)) (Listener, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if addr == "" || strings.HasSuffix(addr, ":0") {
		t.next++
		addr = fmt.Sprintf("mem:%d", t.next)
	}
	if _, dup := t.listeners[addr]; dup {
		return nil, errKind(KindTransport, "listen", fmt.Errorf("address %q already bound", addr))
	}
	l := &memListener{t: t, addr: addr, handle: handle}
	t.listeners[addr] = l
	return l, nil
}

// Dial connects to a listening address. The server side runs the
// listener's handler on its own goroutine, exactly like an accepted TCP
// connection.
func (t *MemTransport) Dial(ctx context.Context, addr string) (Conn, error) {
	if err := ctx.Err(); err != nil {
		return nil, errKind(KindCanceled, "dial", err)
	}
	t.mu.Lock()
	l := t.listeners[addr]
	t.mu.Unlock()
	if l == nil {
		return nil, errKind(KindNotFound, "dial", fmt.Errorf("no listener at %q", addr))
	}
	rawClient, rawServer := netx.Pipe()
	client := &memConn{Conn: rawClient, l: l}
	server := &memConn{Conn: rawServer, l: l}
	l.mu.Lock()
	if l.closed {
		// The listener was closed between the address lookup and here (a
		// Close racing a Dial, e.g. a peer shutting down mid-Open). Fail
		// like a refused TCP connection — a transport error, never a hang
		// waiting on a handler that will not run.
		l.mu.Unlock()
		_ = rawClient.Close()
		_ = rawServer.Close()
		return nil, errKind(KindTransport, "dial", fmt.Errorf("listener %q closed", addr))
	}
	if l.conns == nil {
		l.conns = make(map[*memConn]struct{})
	}
	l.conns[client] = struct{}{}
	l.conns[server] = struct{}{}
	l.mu.Unlock()
	go l.handle(server)
	return client, nil
}
