module pvr

go 1.24
