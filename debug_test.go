package pvr_test

// Smoke test of the observability plane through the public API: one
// participant serving its debug surface over HTTP must expose the metric
// families of every plane, and its trace ring must tell the full
// announce→seal→gossip→disclose story for an originated prefix.

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"pvr"
)

func TestDebugSurfaceServesAllPlanes(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	tr := pvr.NewMemTransport()
	reg := pvr.NewRegistry()
	pfx := pvr.MustParsePrefix("203.0.113.0/24")

	a, err := pvr.Open(ctx,
		pvr.WithASN(64500),
		pvr.WithTransport(tr),
		pvr.WithRegistry(reg),
		pvr.WithOriginate(pfx),
		pvr.WithShards(4),
		pvr.WithWindow(0),
		pvr.WithHoldTime(0),
		pvr.WithDiscloseListen("obs-a"),
		pvr.WithLogf(t.Logf),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	// A disclosure query against A completes the lifecycle: its serve is
	// the last event of the announce→seal→gossip→disclose story.
	observer, err := pvr.Open(ctx,
		pvr.WithASN(64503), pvr.WithTransport(tr), pvr.WithRegistry(reg),
		pvr.WithHoldTime(0), pvr.WithLogf(t.Logf))
	if err != nil {
		t.Fatal(err)
	}
	defer observer.Close()
	if _, err := observer.QueryDisclosure(ctx, a.DiscloseAddr(), pvr.Query{
		Prefix: pfx, Epoch: 1, Role: pvr.RoleObserver,
	}); err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(a.DebugHandler())
	defer srv.Close()

	// /metrics: Prometheus text exposition with every plane represented.
	body := httpGet(t, srv.URL+"/metrics")
	families := strings.Count(body, "# TYPE ")
	if families < 25 {
		t.Fatalf("/metrics exposes %d families, want >= 25", families)
	}
	for _, family := range []string{
		"pvr_engine_seals_total",               // engine
		"pvr_upd_events_total",                 // update plane
		"pvr_audit_rounds_total",               // audit network
		"pvr_disc_served_total",                // disclosure query plane
		"pvr_netx_frames_out_total",            // framing layer
		"pvr_bgp_updates_in_total",             // BGP sessions
		"pvr_routes_verified_total",            // participant
		"pvr_sigmemo_hits_total",               // seal-signature memo
		"pvr_engine_shard_seal_seconds_bucket", // histogram exposition
	} {
		if !strings.Contains(body, family) {
			t.Errorf("/metrics missing %s", family)
		}
	}
	if got := a.Metrics().Families(); got < 25 {
		t.Errorf("registry holds %d families, want >= 25", got)
	}

	// /trace: the lifecycle events in causal order for the prefix.
	var events []pvr.TraceEvent
	if err := json.Unmarshal([]byte(httpGet(t, srv.URL+"/trace")), &events); err != nil {
		t.Fatalf("/trace is not a JSON event array: %v", err)
	}
	order := []string{"AnnounceAccepted", "ShardSealed", "SealGossiped", "DisclosureServed"}
	next := 0
	for _, ev := range events {
		if next < len(order) && ev.Kind.String() == order[next] {
			next++
		}
	}
	if next != len(order) {
		kinds := make([]string, len(events))
		for i, ev := range events {
			kinds[i] = ev.Kind.String()
		}
		t.Fatalf("trace missing lifecycle step %q; got %v", order[next], kinds)
	}

	// ?n= caps the count; a bad value is a 400, not a panic.
	if err := json.Unmarshal([]byte(httpGet(t, srv.URL+"/trace?n=2")), &events); err != nil {
		t.Fatal(err)
	}
	if len(events) > 2 {
		t.Fatalf("/trace?n=2 returned %d events", len(events))
	}
	resp, err := http.Get(srv.URL + "/trace?n=bogus")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("/trace?n=bogus: %d, want 400", resp.StatusCode)
	}

	// /debug/pprof is mounted.
	if !strings.Contains(httpGet(t, srv.URL+"/debug/pprof/"), "profile") {
		t.Error("/debug/pprof/ index not served")
	}
}

func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d", url, resp.StatusCode)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
