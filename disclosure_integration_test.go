package pvr_test

// Public-API-only integration test of the disclosure query plane: the
// α-gated DISCLOSE/VIEW/DENY protocol end to end over both the TCP and
// in-memory transports. A provider and the promisee fetch and verify
// their views; a third party asking for a provider view is denied with
// ErrAccessDenied; and a fetched seal that conflicts with what gossip
// already holds becomes equivocation evidence with a ledger conviction.

import (
	"context"
	"errors"
	"net/netip"
	"testing"
	"time"

	"pvr"
)

func TestDisclosureQueryPlaneOverTCP(t *testing.T) {
	testDisclosureQueryPlane(t, func() pvr.Transport { return pvr.TCP() }, "127.0.0.1:0")
}

func TestDisclosureQueryPlaneOverMem(t *testing.T) {
	testDisclosureQueryPlane(t, func() pvr.Transport { return pvr.NewMemTransport() }, "disc-a")
}

func testDisclosureQueryPlane(t *testing.T, newTransport func() pvr.Transport, listenAddr string) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	tr := newTransport()

	// A shared out-of-band PKI: every party can authenticate to A's
	// disclosure plane, and A's seals verify everywhere.
	reg := pvr.NewRegistry()
	pfx := pvr.MustParsePrefix("203.0.113.0/24")
	ledgerPath := t.TempDir() + "/promisee.ledger"

	// A: the prover under audit. It originates the prefix, serves the
	// disclosure query plane, and its α names only 64502 as promisee.
	a, err := pvr.Open(ctx,
		pvr.WithASN(64500),
		pvr.WithTransport(tr),
		pvr.WithRegistry(reg),
		pvr.WithOriginate(pfx),
		pvr.WithShards(4),
		pvr.WithWindow(0),
		pvr.WithHoldTime(0),
		pvr.WithDiscloseListen(listenAddr),
		pvr.WithPromisees(64502),
		pvr.WithLogf(t.Logf),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	addr := a.DiscloseAddr()
	if addr == "" {
		t.Fatal("no bound disclosure address")
	}

	open := func(asn pvr.ASN, opts ...pvr.Option) *pvr.Participant {
		t.Helper()
		p, err := pvr.Open(ctx, append([]pvr.Option{
			pvr.WithASN(asn), pvr.WithTransport(tr), pvr.WithRegistry(reg),
			pvr.WithHoldTime(0), pvr.WithLogf(t.Logf),
		}, opts...)...)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	provider := open(64501)
	defer provider.Close()
	promisee := open(64502, pvr.WithLedger(ledgerPath))
	defer promisee.Close()
	third := open(64503)
	defer third.Close()

	// The provider offers A an input route, which A ingests through the
	// streaming plane and re-seals; from here on A's committed minimum
	// covers two inputs (synthetic upstream at length 1, provider at 3).
	ann, err := provider.Announce(a.ASN(), 1, pvr.Route{
		Prefix:  pfx,
		Path:    pvr.NewPath(provider.ASN(), 65010, 65011),
		NextHop: netip.MustParseAddr("192.0.2.7"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Submit(ctx, pvr.AnnounceEvent(provider.ASN(), ann)); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Flush(ctx); err != nil {
		t.Fatal(err)
	}

	// Provider-role query: granted, and the opened bit verifies against
	// the announcement the provider itself kept.
	pd, err := provider.QueryDisclosure(ctx, addr, pvr.Query{
		Prefix: pfx, Epoch: 1, Role: pvr.RoleProvider, Prover: a.ASN(), Announcement: &ann,
	})
	if err != nil {
		t.Fatalf("provider query: %v", err)
	}
	if pd.Role != pvr.RoleProvider || pd.Provider == nil || pd.Prover != a.ASN() {
		t.Fatalf("provider disclosure malformed: %+v", pd)
	}

	// Promisee-role query: granted the full vector, provenance, export.
	md, err := promisee.RequestDisclosure(ctx, addr, pfx, 1)
	if err != nil {
		t.Fatalf("promisee query: %v", err)
	}
	if md.Role != pvr.RolePromisee || md.Promisee == nil || md.Promisee.Export.Prover != a.ASN() {
		t.Fatalf("promisee disclosure malformed: %+v", md)
	}
	if md.Window != a.Stats().Window {
		t.Fatalf("promisee disclosure window %d, server at %d", md.Window, a.Stats().Window)
	}

	// α denials: a third party asking for a provider or promisee view is
	// refused with a typed ErrAccessDenied; its observer query succeeds
	// but carries only the sealed commitment.
	if _, err := third.QueryDisclosure(ctx, addr, pvr.Query{Prefix: pfx, Epoch: 1, Role: pvr.RoleProvider, Announcement: &ann}); !errors.Is(err, pvr.ErrAccessDenied) {
		t.Fatalf("third-party provider query: %v, want ErrAccessDenied", err)
	}
	if _, err := third.RequestDisclosure(ctx, addr, pfx, 1); !errors.Is(err, pvr.ErrAccessDenied) {
		t.Fatalf("third-party promisee query: %v, want ErrAccessDenied", err)
	}
	var pe *pvr.Error
	if _, err := third.RequestDisclosure(ctx, addr, pfx, 1); !errors.As(err, &pe) || pe.Kind != pvr.KindAccessDenied {
		t.Fatalf("denial does not expose KindAccessDenied via errors.As: %v", err)
	}
	od, err := third.QueryDisclosure(ctx, addr, pvr.Query{Prefix: pfx, Epoch: 1, Role: pvr.RoleObserver})
	if err != nil {
		t.Fatalf("third-party observer query: %v", err)
	}
	if od.Sealed == nil || od.Provider != nil || od.Promisee != nil {
		t.Fatalf("observer disclosure carries role-gated material: %+v", od)
	}

	// Unknown material is a typed not-found, not a hang or a mystery.
	if _, err := third.QueryDisclosure(ctx, addr, pvr.Query{Prefix: pvr.MustParsePrefix("198.51.100.0/24"), Epoch: 1, Role: pvr.RoleObserver}); !errors.Is(err, pvr.ErrNotFound) {
		t.Fatalf("unknown-prefix query: %v, want ErrNotFound", err)
	}

	if st := a.Stats(); st.DisclosuresServed < 3 || st.DisclosuresDenied < 3 {
		t.Fatalf("server counters served=%d denied=%d, want >=3 each", st.DisclosuresServed, st.DisclosuresDenied)
	}

	// Equivocation: A churns once more, advancing the commitment window
	// to a seal topic the promisee has not fetched yet, then signs a
	// second, different payload on that very topic — the two-faced
	// statement it would show a different neighbor. The promisee hears
	// the forged one first (as gossip would deliver it), so the seal its
	// next query fetches conflicts, is convicted, and the evidence lands
	// in the ledger.
	ann2, err := provider.Announce(a.ASN(), 1, pvr.Route{
		Prefix:  pfx,
		Path:    pvr.NewPath(provider.ASN(), 65012),
		NextHop: netip.MustParseAddr("192.0.2.8"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Submit(ctx, pvr.AnnounceEvent(provider.ASN(), ann2)); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	sc, err := a.Engine().Commitment(pfx)
	if err != nil {
		t.Fatal(err)
	}
	genuine := sc.Seal.Statement()
	forged, err := a.SignStatement(genuine.Topic, append(append([]byte(nil), genuine.Payload...), 0xFF))
	if err != nil {
		t.Fatal(err)
	}
	if _, conflict, err := promisee.Auditor().AddRecord(pvr.AuditRecord{Epoch: sc.Seal.Epoch, S: forged}); err != nil {
		t.Fatal(err)
	} else if conflict != nil {
		t.Fatal("forged statement alone already conflicted; the fetch should detect it")
	}
	if _, err := promisee.RequestDisclosure(ctx, addr, pfx, 1); !errors.Is(err, pvr.ErrConvicted) {
		t.Fatalf("query against an equivocating prover: %v, want ErrConvicted", err)
	}
	if !promisee.Auditor().Convicted(a.ASN()) {
		t.Fatal("promisee did not convict the equivocating prover")
	}
	// Once convicted, even well-formed queries are refused client-side.
	if _, err := promisee.RequestDisclosure(ctx, addr, pfx, 1); !errors.Is(err, pvr.ErrConvicted) {
		t.Fatalf("query after conviction: %v, want ErrConvicted", err)
	}

	// The conviction is persistent: reopening the ledger replays the
	// evidence, and a fresh participant over it starts convicted.
	if err := promisee.Close(); err != nil {
		t.Fatal(err)
	}
	led, recs, err := pvr.OpenLedger(ledgerPath)
	if err != nil {
		t.Fatal(err)
	}
	defer led.Close()
	if len(recs) == 0 {
		t.Fatal("ledger holds no evidence after the conviction")
	}
	found := false
	for _, rec := range recs {
		if rec.Conflict != nil && rec.Conflict.Origin == a.ASN() {
			found = true
		}
	}
	if !found {
		t.Fatalf("ledger evidence does not accuse %s", a.ASN())
	}
}
