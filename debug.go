package pvr

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/pprof"
	"strconv"

	"pvr/internal/bgp"
	"pvr/internal/netx"
	"pvr/internal/obs"
)

// TraceEvent is one entry of the participant's epoch-trace ring: a typed
// lifecycle event (announce accepted, shard sealed, seal gossiped,
// disclosure served, conviction recorded, …) stamped with its epoch,
// window, and prefix. See TraceEvents and the /trace debug endpoint.
type TraceEvent = obs.Event

// traceRingSize bounds the participant's lifecycle-event ring. At ~100 B
// an event this is a few hundred KB — enough to hold the full
// announce→seal→gossip→disclose story for recent windows without ever
// growing.
const traceRingSize = 4096

// initObs stands up the participant's observability plane: the metric
// registry every subsystem exports into, the lifecycle-event tracer, and
// the participant-level counters that used to be bare atomics. Called
// once from Open, before any build step.
func (p *Participant) initObs() {
	p.obsReg = obs.NewRegistry()
	p.tracer = obs.NewTracer(traceRingSize)
	p.bgpMet = bgp.NewMetrics(p.obsReg)
	p.verified = obs.NewCounter(p.obsReg, "pvr_routes_verified_total", "learned routes whose sealed commitment chain verified")
	p.rejected = obs.NewCounter(p.obsReg, "pvr_routes_rejected_total", "learned routes rejected (verification failure or convicted peer)")
	p.sessionsOpened = obs.NewCounter(p.obsReg, "pvr_sessions_opened_total", "BGP sessions ever admitted, both directions")
	p.queriesSent = obs.NewCounter(p.obsReg, "pvr_disc_client_queries_total", "disclosure queries issued as a client")
	obs.NewGaugeFunc(p.obsReg, "pvr_bgp_sessions", "live BGP sessions, both directions", func() float64 {
		return float64(p.sessions.len())
	})
	obs.NewCounterFunc(p.obsReg, "pvr_sigmemo_hits_total", "seal-signature checks answered by the verify memo", func() float64 {
		return float64(p.discSealMemo.Hits())
	})
	obs.NewCounterFunc(p.obsReg, "pvr_sigmemo_misses_total", "seal-signature checks that ran the full verification", func() float64 {
		return float64(p.discSealMemo.Misses())
	})
	// netx counters are process totals (every participant and every dialer
	// in the process shares the frame and buffer-pool paths), exported here
	// so one scrape shows the wire alongside the planes.
	netx.RegisterMetrics(p.obsReg)
}

// Metrics exposes the participant's metric registry, into which every
// plane (engine, update plane, audit network, disclosure query plane,
// framing layer, BGP sessions) exports its families.
func (p *Participant) Metrics() *obs.Registry { return p.obsReg }

// WriteMetrics writes the participant's full metric state to w in the
// Prometheus text exposition format.
func (p *Participant) WriteMetrics(w io.Writer) error { return p.obsReg.WritePrometheus(w) }

// TraceEvents returns up to n of the most recent lifecycle events,
// oldest first. n <= 0 returns everything the ring holds.
func (p *Participant) TraceEvents(n int) []TraceEvent {
	if n <= 0 {
		n = traceRingSize
	}
	return p.tracer.Recent(n)
}

// DebugHandler returns the participant's debug surface, ready to mount on
// an http.Server (cmd/pvrd serves it under -debug-listen):
//
//	/metrics        Prometheus text exposition of every plane's families
//	/trace          most recent lifecycle events as a JSON array (?n= caps)
//	/debug/pprof/   the standard runtime profiles
//
// The handler holds no locks across requests and is safe to serve while
// the participant runs full tilt.
func (p *Participant) DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = p.obsReg.WritePrometheus(w)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		n := 0
		if s := r.URL.Query().Get("n"); s != "" {
			v, err := strconv.Atoi(s)
			if err != nil {
				http.Error(w, "bad n: "+err.Error(), http.StatusBadRequest)
				return
			}
			n = v
		}
		evs := p.TraceEvents(n)
		if evs == nil {
			evs = []TraceEvent{}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(evs)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
