package pvr

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"pvr/internal/bgp"
	"pvr/internal/netx"
	"pvr/internal/obs"
	"pvr/internal/obs/fleet"
	"pvr/internal/store"
)

// TraceEvent is one entry of the participant's epoch-trace ring: a typed
// lifecycle event (announce accepted, shard sealed, seal gossiped,
// disclosure served, conviction recorded, …) stamped with its epoch,
// window, and prefix. See TraceEvents and the /trace debug endpoint.
type TraceEvent = obs.Event

// TraceID is the 128-bit distributed-trace identity minted where an
// announcement enters the system and propagated on every wire hop
// (gossip, sealed BGP re-advertisement, disclosure queries).
type TraceID = obs.TraceID

// SpanID is the 64-bit per-hop span identity within a trace.
type SpanID = obs.SpanID

// TraceContext is a (TraceID, SpanID) pair — the unit that propagates
// across participants. See Query.Trace and Disclosure.Trace.
type TraceContext = obs.TraceContext

// NewTraceContext mints a fresh root trace context (obs.NewTraceContext).
func NewTraceContext() TraceContext { return obs.NewTraceContext() }

// traceRingSize bounds the participant's lifecycle-event ring. At ~100 B
// an event this is a few hundred KB — enough to hold the full
// announce→seal→gossip→disclose story for recent windows without ever
// growing.
const traceRingSize = 4096

// historyRingSize bounds the participant's metric time series: at the
// default one-sample-per-window cadence this covers hours of run time
// in a few MB.
const historyRingSize = 512

// initObs stands up the participant's observability plane: the metric
// registry every subsystem exports into, the lifecycle-event tracer, and
// the participant-level counters that used to be bare atomics. Called
// once from Open, before any build step.
func (p *Participant) initObs() {
	p.obsReg = obs.NewRegistry()
	p.tracer = obs.NewTracer(traceRingSize)
	p.history = fleet.NewHistory(historyRingSize)
	p.bgpMet = bgp.NewMetrics(p.obsReg)
	// The pvr_store_* families register unconditionally like every other
	// plane's; the state store and the evidence ledger share this set.
	p.storeMet = store.NewMetrics(p.obsReg)
	p.verified = obs.NewCounter(p.obsReg, "pvr_routes_verified_total", "learned routes whose sealed commitment chain verified")
	p.rejected = obs.NewCounter(p.obsReg, "pvr_routes_rejected_total", "learned routes rejected (verification failure or convicted peer)")
	p.sessionsOpened = obs.NewCounter(p.obsReg, "pvr_sessions_opened_total", "BGP sessions ever admitted, both directions")
	p.queriesSent = obs.NewCounter(p.obsReg, "pvr_disc_client_queries_total", "disclosure queries issued as a client")
	obs.NewGaugeFunc(p.obsReg, "pvr_bgp_sessions", "live BGP sessions, both directions", func() float64 {
		return float64(p.sessions.len())
	})
	obs.NewCounterFunc(p.obsReg, "pvr_sigmemo_hits_total", "seal-signature checks answered by the verify memo", func() float64 {
		return float64(p.discSealMemo.Hits())
	})
	obs.NewCounterFunc(p.obsReg, "pvr_sigmemo_misses_total", "seal-signature checks that ran the full verification", func() float64 {
		return float64(p.discSealMemo.Misses())
	})
	// netx counters are process totals (every participant and every dialer
	// in the process shares the frame and buffer-pool paths), exported here
	// so one scrape shows the wire alongside the planes.
	netx.RegisterMetrics(p.obsReg)
}

// Metrics exposes the participant's metric registry, into which every
// plane (engine, update plane, audit network, disclosure query plane,
// framing layer, BGP sessions) exports its families.
func (p *Participant) Metrics() *obs.Registry { return p.obsReg }

// WriteMetrics writes the participant's full metric state to w in the
// Prometheus text exposition format.
func (p *Participant) WriteMetrics(w io.Writer) error { return p.obsReg.WritePrometheus(w) }

// TraceEvents returns up to n of the most recent lifecycle events,
// oldest first. n <= 0 returns everything the ring holds.
func (p *Participant) TraceEvents(n int) []TraceEvent {
	if n <= 0 {
		n = traceRingSize
	}
	return p.tracer.Recent(n)
}

// TraceEventsSince returns every retained event with Seq >= seq plus the
// cursor to pass next time — the incremental pull a fleet collector
// polls with (/trace?since= serves the same pair over HTTP). If the
// ring wrapped past seq the result starts at the oldest retained event;
// compare the first event's Seq against the cursor to detect the gap.
func (p *Participant) TraceEventsSince(seq uint64) ([]TraceEvent, uint64) {
	return p.tracer.Since(seq)
}

// FleetSnapshot captures this participant for a fleet collector: events
// since the cursor, the next cursor, and a flat metric snapshot. See
// FleetSource for the polling adapter.
func (p *Participant) FleetSnapshot(since uint64) fleet.Snapshot {
	evs, next := p.tracer.Since(since)
	return fleet.Snapshot{
		Participant: p.asn.String(),
		Events:      evs,
		Next:        next,
		Metrics:     p.obsReg.Snapshot(),
	}
}

// FleetSource adapts the participant into a fleet.Source, so an
// in-process collector (netsim, tests) can poll it alongside
// HTTP-scraped daemons.
func (p *Participant) FleetSource() *fleet.TracerSource {
	return fleet.NewTracerSource(p.asn.String(), p.tracer, p.obsReg)
}

// SampleMetrics records one point of the participant's metric registry
// into its bounded history ring (served at /metrics/history). Run
// samples automatically once per seal window; deterministic drivers
// call this directly.
func (p *Participant) SampleMetrics() {
	p.history.Record(time.Now(), p.obsReg.Snapshot())
}

// MetricsHistory returns the sampled metric time series, oldest first.
func (p *Participant) MetricsHistory() []fleet.Point { return p.history.Points() }

// WriteMetricsHistory streams the sampled series as JSONL (one point
// per line) — what pvrbench dumps next to its BENCH_*.json files.
func (p *Participant) WriteMetricsHistory(w io.Writer) error { return p.history.WriteJSONL(w) }

// DebugHandler returns the participant's debug surface, ready to mount on
// an http.Server (cmd/pvrd serves it under -debug-listen):
//
//	/metrics          Prometheus text exposition of every plane's families
//	/metrics/history  sampled metric time series as a JSON array
//	                  (?format=jsonl streams one point per line)
//	/trace            most recent lifecycle events as a JSON array (?n=
//	                  caps); with ?since=<cursor> an incremental envelope
//	                  {"next": N, "events": [...]} for fleet collectors
//	/debug/pprof/     the standard runtime profiles
//
// The handler holds no locks across requests and is safe to serve while
// the participant runs full tilt.
func (p *Participant) DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = p.obsReg.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics/history", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("format") == "jsonl" {
			w.Header().Set("Content-Type", "application/x-ndjson")
			_ = p.history.WriteJSONL(w)
			return
		}
		pts := p.MetricsHistory()
		if pts == nil {
			pts = []fleet.Point{}
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(pts)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		if s := r.URL.Query().Get("since"); s != "" {
			seq, err := strconv.ParseUint(s, 10, 64)
			if err != nil {
				http.Error(w, "bad since: "+err.Error(), http.StatusBadRequest)
				return
			}
			evs, next := p.TraceEventsSince(seq)
			if evs == nil {
				evs = []TraceEvent{}
			}
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(struct {
				Next   uint64       `json:"next"`
				Events []TraceEvent `json:"events"`
			}{next, evs})
			return
		}
		n := 0
		if s := r.URL.Query().Get("n"); s != "" {
			v, err := strconv.Atoi(s)
			if err != nil {
				http.Error(w, "bad n: "+err.Error(), http.StatusBadRequest)
				return
			}
			n = v
		}
		evs := p.TraceEvents(n)
		if evs == nil {
			evs = []TraceEvent{}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(evs)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
