package pvr

// White-box test of the participant's shared seal memo: one VerifyMemo
// spans the gossip observe path (the auditor verifies statements through
// it), BGP-carried seal checks, and the disclosure query plane. A seal
// whose signature was settled when it arrived via gossip must NOT be
// re-verified when a later disclosure query fetches the same seal — the
// whole point of sharing the memo across planes.

import (
	"context"
	"testing"
	"time"

	"pvr/internal/auditnet"
	"pvr/internal/sigs"
)

func TestGossipVerifiedSealNotReverifiedOnQuery(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	tr := NewMemTransport()
	reg := sigs.NewRegistry()
	pfx := MustParsePrefix("203.0.113.0/24")

	a, err := Open(ctx,
		WithASN(64500),
		WithTransport(tr),
		WithRegistry(reg),
		WithOriginate(pfx),
		WithShards(2),
		WithHoldTime(0),
		WithDiscloseListen("sealmemo-a"),
		WithPromisees(64502),
		WithLogf(t.Logf),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := Open(ctx,
		WithASN(64502),
		WithTransport(tr),
		WithRegistry(reg),
		WithHoldTime(0),
		WithLogf(t.Logf),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	// B hears A's shard seal through gossip first. The auditor verifies
	// the statement against the shared registry THROUGH the shared memo,
	// so the verdict is settled once here.
	sc, err := a.Engine().Commitment(pfx)
	if err != nil {
		t.Fatal(err)
	}
	st := sc.Seal.Statement()
	added, conflict, err := b.Auditor().AddRecord(auditnet.Record{Epoch: sc.Seal.Epoch, S: st})
	if err != nil || conflict != nil || !added {
		t.Fatalf("gossip ingest: added=%v conflict=%v err=%v", added, conflict, err)
	}
	if !b.discSealMemo.Seen(st.Origin, st.Payload, st.Sig) {
		t.Fatal("gossip-verified seal statement is not in the shared memo")
	}
	missesAfterGossip := b.discSealMemo.Misses()
	if missesAfterGossip == 0 {
		t.Fatal("gossip ingest bypassed the shared memo entirely")
	}

	// The disclosure query fetches the very seal gossip already settled:
	// the pipeline's seal check and the observe-statement check must both
	// be memo hits — zero new signature derivations for this seal.
	hitsBefore := b.discSealMemo.Hits()
	d, err := b.RequestDisclosure(ctx, a.DiscloseAddr(), pfx, 1)
	if err != nil {
		t.Fatalf("promisee query: %v", err)
	}
	if d.Promisee == nil {
		t.Fatalf("promisee disclosure malformed: %+v", d)
	}
	if got := b.discSealMemo.Misses(); got != missesAfterGossip {
		t.Fatalf("query re-verified a gossip-settled seal: misses %d -> %d", missesAfterGossip, got)
	}
	if b.discSealMemo.Hits() <= hitsBefore {
		t.Fatal("query did not consult the shared seal memo")
	}
}
