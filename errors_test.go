package pvr

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"pvr/internal/bgp"
	"pvr/internal/engine"
	"pvr/internal/netx"
	"pvr/internal/updplane"
)

// TestErrorTaxonomyBridgesInternalSentinels pins the contract that makes
// the redesigned surface usable: any internal error wrapped by the public
// API matches both its public Kind sentinel (errors.Is) and the original
// internal sentinel (through Unwrap), so neither new nor legacy callers
// break.
func TestErrorTaxonomyBridgesInternalSentinels(t *testing.T) {
	cases := []struct {
		name     string
		internal error
		sentinel *Error
		kind     Kind
	}{
		{"queue-full", updplane.ErrQueueFull, ErrBackpressure, KindBackpressure},
		{"session-closed", bgp.ErrSessionClosed, ErrSessionClosed, KindSessionClosed},
		{"convicted", engine.ErrConvictedProver, ErrConvicted, KindConvicted},
		{"plane-closed", updplane.ErrClosed, ErrClosed, KindClosed},
		{"conn-closed", netx.ErrClosed, ErrClosed, KindClosed},
		{"ctx-cancelled", context.Canceled, ErrCanceled, KindCanceled},
		{"ctx-deadline", context.DeadlineExceeded, ErrCanceled, KindCanceled},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wrapped := wrapErr("op", fmt.Errorf("outer: %w", tc.internal))
			if !errors.Is(wrapped, tc.sentinel) {
				t.Errorf("errors.Is(wrapped, %v sentinel) = false", tc.kind)
			}
			if !errors.Is(wrapped, tc.internal) {
				t.Errorf("wrapped error lost its internal cause %v", tc.internal)
			}
			var e *Error
			if !errors.As(wrapped, &e) || e.Kind != tc.kind {
				t.Errorf("errors.As kind = %v, want %v", e.Kind, tc.kind)
			}
		})
	}
}

// TestErrorSentinelsAreDisjoint verifies kinds do not cross-match.
func TestErrorSentinelsAreDisjoint(t *testing.T) {
	wrapped := wrapErr("op", updplane.ErrQueueFull)
	for _, other := range []*Error{ErrConfig, ErrTransport, ErrSessionClosed, ErrConvicted, ErrClosed, ErrVerification, ErrNotFound} {
		if errors.Is(wrapped, other) {
			t.Errorf("backpressure error matched %s sentinel", other.Kind)
		}
	}
}

// TestDeprecatedErrQueueFullStillMatches keeps the one-release
// compatibility promise: code matching the deprecated ErrQueueFull alias
// still recognizes both raw plane errors and wrapped public ones.
func TestDeprecatedErrQueueFullStillMatches(t *testing.T) {
	if !errors.Is(updplane.ErrQueueFull, ErrQueueFull) {
		t.Error("raw plane error no longer matches deprecated ErrQueueFull")
	}
	if !errors.Is(wrapErr("submit", updplane.ErrQueueFull), ErrQueueFull) {
		t.Error("wrapped error no longer matches deprecated ErrQueueFull")
	}
}

func TestWrapErrIdempotentAndNilSafe(t *testing.T) {
	if wrapErr("op", nil) != nil {
		t.Error("wrapErr(nil) != nil")
	}
	once := wrapErr("op", updplane.ErrQueueFull)
	if twice := wrapErr("op", once); twice != once {
		t.Errorf("double wrap of same op changed the error: %v", twice)
	}
}
