package pvr_test

import (
	"net/netip"
	"testing"
	"time"

	"pvr"
	"pvr/internal/aspath"
	"pvr/internal/bgp"
	"pvr/internal/core"
	"pvr/internal/netx"
	"pvr/internal/prefix"
	"pvr/internal/route"
	"pvr/internal/sigs"
)

// TestIntegrationSessionCarriesVerifiableAnnouncement wires the layers
// together over a real TCP socket: a provider runs a BGP session to the
// prover, sends an UPDATE whose attachment carries a PVR announcement
// signature, and the prover verifies it, accepts it into an epoch, and
// produces a promisee view that checks out.
func TestIntegrationSessionCarriesVerifiableAnnouncement(t *testing.T) {
	const (
		providerASN = aspath.ASN(64501)
		proverASN   = aspath.ASN(64500)
		promisee    = aspath.ASN(64510)
		epoch       = uint64(42)
	)
	pfx := prefix.MustParse("203.0.113.0/24")

	// PKI shared out of band.
	reg := sigs.NewRegistry()
	providerKey, err := sigs.GenerateEd25519()
	if err != nil {
		t.Fatal(err)
	}
	proverKey, err := sigs.GenerateEd25519()
	if err != nil {
		t.Fatal(err)
	}
	reg.Register(providerASN, providerKey.Public())
	reg.Register(proverASN, proverKey.Public())

	// The provider's signed input route, to travel inside the UPDATE.
	r := route.Route{
		Prefix:  pfx,
		Path:    aspath.New(providerASN, 64900),
		NextHop: netip.MustParseAddr("192.0.2.9"),
	}
	ann, err := core.NewAnnouncement(providerKey, providerASN, proverASN, epoch, r)
	if err != nil {
		t.Fatal(err)
	}

	// Prover side: a TCP listener running the BGP FSM; updates land in a
	// channel.
	got := make(chan bgp.Update, 1)
	addr, closer, err := netx.Listen("127.0.0.1:0", func(c *netx.Conn) {
		s := bgp.NewSession(c, bgp.Open{ASN: proverASN, RouterID: 1}, bgp.SessionHooks{
			OnUpdate: func(u bgp.Update) { got <- u },
		})
		_ = s.Run()
	})
	if err != nil {
		t.Fatal(err)
	}
	defer closer.Close()

	// Provider side: dial, establish, send the update with the PVR
	// attachment (epoch + signature bytes serialized by the caller).
	conn, err := netx.Dial(addr.String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	client := bgp.NewSession(conn, bgp.Open{ASN: providerASN, RouterID: 2}, bgp.SessionHooks{})
	go client.Run()
	deadline := time.Now().Add(5 * time.Second)
	for client.State() != bgp.StateEstablished {
		if time.Now().After(deadline) {
			t.Fatalf("session stuck in %v", client.State())
		}
		time.Sleep(time.Millisecond)
	}
	u := bgp.Update{
		Announced:   []route.Route{r},
		Attachments: map[string][]byte{"pvr/ann-sig": ann.Sig},
	}
	if err := client.SendUpdate(u); err != nil {
		t.Fatal(err)
	}

	// Prover receives the update over the wire and reconstructs the
	// announcement from route + attachment.
	var recv bgp.Update
	select {
	case recv = <-got:
	case <-time.After(5 * time.Second):
		t.Fatal("update not delivered")
	}
	if len(recv.Announced) != 1 || !recv.Announced[0].Equal(r) {
		t.Fatal("route mangled in transit")
	}
	rebuilt := pvr.Announcement{
		Epoch:    epoch,
		Provider: providerASN,
		To:       proverASN,
		Route:    recv.Announced[0],
		Sig:      recv.Attachments["pvr/ann-sig"],
	}

	// The prover runs the PVR protocol on the wire-delivered announcement.
	prover, err := core.NewProver(proverASN, proverKey, reg, 16)
	if err != nil {
		t.Fatal(err)
	}
	prover.BeginEpoch(epoch, pfx)
	if _, err := prover.AcceptAnnouncement(rebuilt); err != nil {
		t.Fatalf("wire-delivered announcement rejected: %v", err)
	}
	if _, err := prover.CommitMin(); err != nil {
		t.Fatal(err)
	}
	view, err := prover.DiscloseToPromisee(promisee)
	if err != nil {
		t.Fatal(err)
	}
	if err := pvr.VerifyPromiseeView(reg, view); err != nil {
		t.Fatalf("end-to-end verification failed: %v", err)
	}
	if view.Winner == nil || view.Winner.Provider != providerASN {
		t.Error("provenance lost across the wire")
	}
	client.Close()
}
