package pvr_test

// Strict conformance checks of the /metrics Prometheus text exposition:
// every sample line must parse, every series must belong to a declared
// family, and every live histogram family must expose monotone buckets,
// a +Inf bucket equal to its _count, and a _sum — for each label set.

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"pvr"
	"pvr/internal/obs/fleet"
)

// promSample is one parsed exposition line.
type promSample struct {
	name   string            // metric name (including _bucket/_sum/_count suffix)
	labels map[string]string // parsed label set (may be empty)
	value  float64
}

// parsePromStrict parses the exposition text, failing the test on any
// line that does not conform.
func parsePromStrict(t *testing.T, body string) (types map[string]string, samples []promSample) {
	t.Helper()
	types = make(map[string]string)
	for ln, line := range strings.Split(body, "\n") {
		line = strings.TrimRight(line, "\r")
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 {
				t.Fatalf("line %d: malformed TYPE: %q", ln+1, line)
			}
			switch f[3] {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				t.Fatalf("line %d: unknown TYPE %q", ln+1, f[3])
			}
			types[f[2]] = f[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		s, err := parsePromSample(line)
		if err != nil {
			t.Fatalf("line %d: %v", ln+1, err)
		}
		samples = append(samples, s)
	}
	return types, samples
}

func parsePromSample(line string) (promSample, error) {
	s := promSample{labels: map[string]string{}}
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		s.name = rest[:i]
		end := strings.LastIndexByte(rest, '}')
		if end < i {
			return s, fmt.Errorf("unbalanced braces: %q", line)
		}
		lbl := rest[i+1 : end]
		for len(lbl) > 0 {
			eq := strings.IndexByte(lbl, '=')
			if eq < 0 || len(lbl) < eq+2 || lbl[eq+1] != '"' {
				return s, fmt.Errorf("malformed label in %q", line)
			}
			key := lbl[:eq]
			cl := strings.IndexByte(lbl[eq+2:], '"')
			if cl < 0 {
				return s, fmt.Errorf("unterminated label value in %q", line)
			}
			s.labels[key] = lbl[eq+2 : eq+2+cl]
			lbl = lbl[eq+2+cl+1:]
			lbl = strings.TrimPrefix(lbl, ",")
		}
		rest = strings.TrimSpace(rest[end+1:])
	} else {
		sp := strings.IndexByte(rest, ' ')
		if sp < 0 {
			return s, fmt.Errorf("no value in %q", line)
		}
		s.name, rest = rest[:sp], strings.TrimSpace(rest[sp+1:])
	}
	v, err := strconv.ParseFloat(strings.Fields(rest)[0], 64)
	if err != nil {
		return s, fmt.Errorf("bad value in %q: %v", line, err)
	}
	s.value = v
	return s, nil
}

// labelKeyWithout renders a label set (minus one key) canonically.
func labelKeyWithout(labels map[string]string, drop string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if k != drop {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%q,", k, labels[k])
	}
	return b.String()
}

func TestMetricsPrometheusConformance(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	tr := pvr.NewMemTransport()
	reg := pvr.NewRegistry()
	pfx := pvr.MustParsePrefix("203.0.113.0/24")

	a, err := pvr.Open(ctx,
		pvr.WithASN(64500), pvr.WithTransport(tr), pvr.WithRegistry(reg),
		pvr.WithOriginate(pfx), pvr.WithShards(4), pvr.WithWindow(0),
		pvr.WithHoldTime(0), pvr.WithDiscloseListen("conform-a"), pvr.WithLogf(t.Logf))
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	// Exercise the disclosure plane so its latency histograms are live.
	obsP, err := pvr.Open(ctx,
		pvr.WithASN(64503), pvr.WithTransport(tr), pvr.WithRegistry(reg),
		pvr.WithHoldTime(0), pvr.WithLogf(t.Logf))
	if err != nil {
		t.Fatal(err)
	}
	defer obsP.Close()
	if _, err := obsP.QueryDisclosure(ctx, a.DiscloseAddr(), pvr.Query{
		Prefix: pfx, Epoch: 1, Role: pvr.RoleObserver,
	}); err != nil {
		t.Fatal(err)
	}

	var sb strings.Builder
	if err := a.WriteMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	types, samples := parsePromStrict(t, sb.String())

	// Every series must belong to a declared family.
	family := func(name string) string {
		for _, suf := range []string{"_bucket", "_sum", "_count", "_max"} {
			if f, ok := strings.CutSuffix(name, suf); ok {
				if _, declared := types[f]; declared {
					return f
				}
			}
		}
		return name
	}
	for _, s := range samples {
		if _, ok := types[family(s.name)]; !ok {
			t.Errorf("series %s has no # TYPE declaration", s.name)
		}
	}

	// For every histogram family and label set: bucket counts must be
	// monotone in ascending le, the +Inf bucket must equal _count, and
	// _sum must be present.
	type group struct {
		les    []float64
		counts map[float64]float64
		sum    *float64
		count  *float64
	}
	groups := make(map[string]*group) // key: family + "|" + labels-sans-le
	get := func(fam string, labels map[string]string) *group {
		k := fam + "|" + labelKeyWithout(labels, "le")
		g := groups[k]
		if g == nil {
			g = &group{counts: make(map[float64]float64)}
			groups[k] = g
		}
		return g
	}
	histFamilies := 0
	for _, s := range samples {
		fam := family(s.name)
		if types[fam] != "histogram" {
			continue
		}
		switch {
		case strings.HasSuffix(s.name, "_bucket"):
			leStr, ok := s.labels["le"]
			if !ok {
				t.Fatalf("histogram bucket %s without le label", s.name)
			}
			le := math.Inf(1)
			if leStr != "+Inf" {
				if le, err = strconv.ParseFloat(leStr, 64); err != nil {
					t.Fatalf("bad le %q on %s", leStr, s.name)
				}
			}
			g := get(fam, s.labels)
			g.les = append(g.les, le)
			g.counts[le] = s.value
		case strings.HasSuffix(s.name, "_sum"):
			v := s.value
			get(fam, s.labels).sum = &v
		case strings.HasSuffix(s.name, "_count"):
			v := s.value
			get(fam, s.labels).count = &v
		}
	}
	for fam, typ := range types {
		if typ == "histogram" {
			histFamilies++
			_ = fam
		}
	}
	if histFamilies == 0 {
		t.Fatal("no histogram families live — the conformance check checked nothing")
	}
	if len(groups) == 0 {
		t.Fatal("no histogram series collected")
	}
	for key, g := range groups {
		sort.Float64s(g.les)
		if len(g.les) == 0 || !math.IsInf(g.les[len(g.les)-1], 1) {
			t.Errorf("%s: no +Inf bucket", key)
			continue
		}
		prev := -1.0
		for _, le := range g.les {
			if c := g.counts[le]; c < prev {
				t.Errorf("%s: bucket le=%v count %v < previous %v (non-monotone)", key, le, c, prev)
			} else {
				prev = c
			}
		}
		if g.count == nil {
			t.Errorf("%s: missing _count", key)
		} else if inf := g.counts[math.Inf(1)]; inf != *g.count {
			t.Errorf("%s: +Inf bucket %v != _count %v", key, inf, *g.count)
		}
		if g.sum == nil {
			t.Errorf("%s: missing _sum", key)
		}
	}
}

func TestTraceSinceCursorEndpoint(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	tr := pvr.NewMemTransport()
	pfx := pvr.MustParsePrefix("198.51.100.0/24")
	a, err := pvr.Open(ctx,
		pvr.WithASN(64510), pvr.WithTransport(tr), pvr.WithOriginate(pfx),
		pvr.WithWindow(0), pvr.WithHoldTime(0), pvr.WithLogf(t.Logf))
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	srv := httptest.NewServer(a.DebugHandler())
	defer srv.Close()

	var env struct {
		Next   uint64           `json:"next"`
		Events []pvr.TraceEvent `json:"events"`
	}
	if err := json.Unmarshal([]byte(httpGet(t, srv.URL+"/trace?since=0")), &env); err != nil {
		t.Fatalf("/trace?since=0 is not an envelope: %v", err)
	}
	if len(env.Events) == 0 || env.Next == 0 {
		t.Fatalf("envelope empty: %+v", env)
	}
	// Traced events exist: the originated prefix's accept/seal chain.
	traced := 0
	for _, ev := range env.Events {
		if !ev.Trace.IsZero() {
			traced++
		}
	}
	if traced == 0 {
		t.Fatal("no traced events in the envelope")
	}
	// Incremental pull from the cursor is empty while idle.
	cur := env.Next
	if err := json.Unmarshal([]byte(httpGet(t, fmt.Sprintf("%s/trace?since=%d", srv.URL, cur))), &env); err != nil {
		t.Fatal(err)
	}
	if len(env.Events) != 0 || env.Next != cur {
		t.Fatalf("idle re-poll moved: %d events, next %d (cursor %d)", len(env.Events), env.Next, cur)
	}
	// Malformed cursor is a 400.
	resp, err := http.Get(srv.URL + "/trace?since=bogus")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("/trace?since=bogus: %d, want 400", resp.StatusCode)
	}
}

func TestMetricsHistoryEndpoint(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	tr := pvr.NewMemTransport()
	a, err := pvr.Open(ctx,
		pvr.WithASN(64511), pvr.WithTransport(tr),
		pvr.WithWindow(0), pvr.WithHoldTime(0), pvr.WithLogf(t.Logf))
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	a.SampleMetrics()
	a.SampleMetrics()

	srv := httptest.NewServer(a.DebugHandler())
	defer srv.Close()

	var pts []fleet.Point
	if err := json.Unmarshal([]byte(httpGet(t, srv.URL+"/metrics/history")), &pts); err != nil {
		t.Fatalf("/metrics/history is not a point array: %v", err)
	}
	if len(pts) != 2 {
		t.Fatalf("history has %d points, want 2", len(pts))
	}
	if len(pts[0].Values) == 0 {
		t.Fatal("history point has no metric values")
	}
	// JSONL form: one JSON object per line.
	body := httpGet(t, srv.URL+"/metrics/history?format=jsonl")
	lines := strings.Split(strings.TrimSpace(body), "\n")
	if len(lines) != 2 {
		t.Fatalf("jsonl has %d lines, want 2", len(lines))
	}
	var p fleet.Point
	if err := json.Unmarshal([]byte(lines[0]), &p); err != nil {
		t.Fatalf("jsonl line does not parse: %v", err)
	}
}

func TestFleetCollectorStitchesTwoParticipants(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	tr := pvr.NewMemTransport()
	reg := pvr.NewRegistry()
	pfx := pvr.MustParsePrefix("203.0.113.0/24")

	a, err := pvr.Open(ctx,
		pvr.WithASN(64500), pvr.WithTransport(tr), pvr.WithRegistry(reg),
		pvr.WithOriginate(pfx), pvr.WithWindow(0), pvr.WithHoldTime(0),
		pvr.WithDiscloseListen("fleet-a"), pvr.WithLogf(t.Logf))
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := pvr.Open(ctx,
		pvr.WithASN(64503), pvr.WithTransport(tr), pvr.WithRegistry(reg),
		pvr.WithHoldTime(0), pvr.WithLogf(t.Logf))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	d, err := b.QueryDisclosure(ctx, a.DiscloseAddr(), pvr.Query{
		Prefix: pfx, Epoch: 1, Role: pvr.RoleObserver,
	})
	if err != nil {
		t.Fatal(err)
	}
	if d.Trace.IsZero() {
		t.Fatal("disclosure carried no trace — the seal's chain was lost on the wire")
	}

	c := fleet.NewCollector(a.FleetSource(), b.FleetSource())
	if err := c.Poll(); err != nil {
		t.Fatal(err)
	}
	// The seal's trace must stitch across both participants: minted at
	// A's announce ingestion, and re-recorded at B when the fetched seal
	// entered B's audit pool.
	ch := c.Chain(d.Trace.TraceID)
	if ch == nil {
		t.Fatalf("no chain for seal trace %s", d.Trace.TraceID)
	}
	if !ch.Stitched() {
		t.Fatalf("chain not stitched across participants: %+v", ch.Spans)
	}
	parts := ch.Participants()
	if len(parts) != 2 {
		t.Fatalf("chain participants = %v, want both", parts)
	}
	st := c.Stats()
	if st.Stitched == 0 || st.Participants != 2 {
		t.Fatalf("fleet stats = %+v", st)
	}
	// FleetSnapshot agrees with the source adapter.
	snap := a.FleetSnapshot(0)
	if snap.Participant != a.ASN().String() || len(snap.Events) == 0 || snap.Metrics == nil {
		t.Fatalf("FleetSnapshot = %+v", snap)
	}
}
