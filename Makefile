# Standard-library-only Go module; these targets just wrap the toolchain.

GO ?= go

.PHONY: all build test race vet fmt bench bench-smoke benchgate metricsmoke api apicheck examples clean

all: build

build:
	$(GO) build ./...

test: metricsmoke
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l .

# bench emits BENCH_engine.json (E10 engine-vs-serial rows),
# BENCH_gossip.json (E11 audit-gossip rows), BENCH_stream.json (E12
# update-plane churn rows), BENCH_query.json (E13 disclosure query-plane
# rows), BENCH_trace.json (E16 distributed-tracing rows), and
# BENCH_priv.json (E17 privacy-plane rows), and BENCH_store.json (E18
# durable-store rows), consumed by the perf
# trajectory, plus the printed tables on stdout. Each file carries a
# "meta" envelope recording the run's toolchain and commit.
bench:
	$(GO) run ./cmd/pvrbench -e engine -json BENCH_engine.json
	$(GO) run ./cmd/pvrbench -e gossip -json BENCH_gossip.json
	$(GO) run ./cmd/pvrbench -e stream -json BENCH_stream.json
	$(GO) run ./cmd/pvrbench -e query -json BENCH_query.json
	$(GO) run ./cmd/pvrbench -e trace -json BENCH_trace.json
	$(GO) run ./cmd/pvrbench -e priv -json BENCH_priv.json
	$(GO) run ./cmd/pvrbench -e store -json BENCH_store.json

# bench-smoke runs the experiment harnesses at tiny sizes and fails if
# any JSON output comes back empty — catches benchmark-harness rot in
# CI without paying for the full sweeps.
bench-smoke:
	$(GO) run ./cmd/pvrbench -e engine -prefixes 50 -json BENCH_engine.json
	$(GO) run ./cmd/pvrbench -e gossip -nodes 8 -json BENCH_gossip.json
	$(GO) run ./cmd/pvrbench -e stream -prefixes 400 -json BENCH_stream.json
	$(GO) run ./cmd/pvrbench -e query -prefixes 64 -json BENCH_query.json
	$(GO) run ./cmd/pvrbench -e trace -nodes 50 -json BENCH_trace.json
	$(GO) run ./cmd/pvrbench -e priv -prefixes 6 -json BENCH_priv.json
	$(GO) run ./cmd/pvrbench -e store -appenders 8 -json BENCH_store.json
	grep -q '"prefixes"' BENCH_engine.json
	grep -q '"nodes"' BENCH_gossip.json
	grep -q '"updates_per_sec"' BENCH_stream.json
	grep -q '"speedup"' BENCH_stream.json
	grep -q '"qps"' BENCH_query.json
	grep -q '"denied"' BENCH_query.json
	grep -q '"fleet_stitched"' BENCH_trace.json
	grep -q '"proof_size_bytes"' BENCH_priv.json
	grep -q '"ring_verify_p50_us"' BENCH_priv.json
	grep -q '"speedup"' BENCH_store.json
	grep -q '"recovery_ms"' BENCH_store.json

# benchgate re-runs the engine epoch at a small size and fails when its
# allocs/op regresses more than 15% — or its shard-seal p99 more than
# 20% — against the checked-in BENCH_engine.json baseline; run
# `make bench` to refresh the baseline when an increase is intentional.
benchgate:
	./scripts/benchgate.sh

# metricsmoke boots one pvrd, scrapes its /metrics endpoint, and fails
# unless every plane's metric families show up — the end-to-end check
# that the observability plumbing stays wired.
metricsmoke:
	./scripts/metricsmoke.sh

# api regenerates the public-API snapshot that apicheck (and CI) diff
# against; run it whenever a PR intentionally changes the pvr surface.
# One generator (in the script) serves both targets so they cannot drift.
api:
	./scripts/apicheck.sh --update

apicheck:
	./scripts/apicheck.sh

# examples vets and builds every example program against the current API.
examples:
	$(GO) vet ./examples/...
	$(GO) build ./examples/...

clean:
	rm -f BENCH_engine.json BENCH_gossip.json BENCH_stream.json BENCH_query.json BENCH_trace.json BENCH_priv.json BENCH_store.json
