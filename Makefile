# Standard-library-only Go module; these targets just wrap the toolchain.

GO ?= go

.PHONY: all build test race vet fmt bench clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l .

# bench emits BENCH_engine.json: the E10 engine-vs-serial rows consumed
# by the perf trajectory, plus the printed tables on stdout.
bench:
	$(GO) run ./cmd/pvrbench -e engine -json BENCH_engine.json

clean:
	rm -f BENCH_engine.json
