package pvr_test

// Public-API-only durability tests: a Participant is killed mid-window
// by a fault injected into its real write path (not a mock), reopened
// on the same store, and must resume the sealed window sequence past
// everything it ever published — while trust-on-first-use pins and
// convictions survive restarts of the peer that holds them.

import (
	"context"
	"net/netip"
	"testing"
	"time"

	"pvr"
)

func TestParticipantCrashRestartDurability(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	mem := pvr.NewMemTransport()

	// Identity keys outlive the "process": a restart passes the same
	// signer, the way a daemon reloads its key file.
	sA, err := pvr.GenerateEd25519()
	if err != nil {
		t.Fatal(err)
	}
	sB, err := pvr.GenerateEd25519()
	if err != nil {
		t.Fatal(err)
	}
	dirA, dirB := t.TempDir(), t.TempDir()
	faultA := pvr.NewStoreFault()

	network := pvr.NewNetwork()
	provider, err := network.AddNode(64700)
	if err != nil {
		t.Fatal(err)
	}
	providerKey, err := network.Registry().Lookup(provider.ASN())
	if err != nil {
		t.Fatal(err)
	}

	pfxs := []pvr.Prefix{
		pvr.MustParsePrefix("203.0.113.0/24"),
		pvr.MustParsePrefix("198.51.100.0/24"),
		pvr.MustParsePrefix("192.0.2.0/24"),
	}
	openA := func(extra ...pvr.Option) (*pvr.Participant, error) {
		opts := []pvr.Option{
			pvr.WithASN(64500),
			pvr.WithTransport(mem),
			pvr.WithSigner(sA),
			pvr.WithOriginate(pfxs...),
			pvr.WithShards(4),
			pvr.WithWindow(0),
			pvr.WithListen("a"),
			pvr.WithGossipListen("ga"),
			pvr.WithStore(dirA),
			pvr.WithStoreFault(faultA),
			pvr.WithHoldTime(0),
			pvr.WithLogf(t.Logf),
		}
		a, err := pvr.Open(ctx, append(opts, extra...)...)
		if err != nil {
			return nil, err
		}
		// A runs a private trust-on-first-use registry; the churn
		// provider's key arrives out of band.
		a.Registry().Register(provider.ASN(), providerKey)
		return a, nil
	}

	a, err := openA()
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if st := a.Stats().Store; !st.Enabled || st.RecoveredEpoch != 0 {
		t.Fatalf("first boot recovered epoch %d, want a cold start", st.RecoveredEpoch)
	}

	// B dials A, pins A's key trust-on-first-use, and persists the pin
	// in its own store. It also listens so the restarted A can dial back.
	b, err := pvr.Open(ctx,
		pvr.WithASN(64501),
		pvr.WithTransport(mem),
		pvr.WithSigner(sB),
		pvr.WithPeers("a"),
		pvr.WithListen("b"),
		pvr.WithGossipListen("gb"),
		pvr.WithStore(dirB),
		pvr.WithWindow(0),
		pvr.WithHoldTime(0),
		pvr.WithLogf(t.Logf),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	waitFor(t, "B to verify A's table", func() bool {
		return b.Stats().RoutesVerified >= uint64(len(pfxs))
	})

	// Advance the sealed sequence with live churn so the crash lands on
	// a participant with published history.
	for round := 0; round < 2; round++ {
		ann, err := provider.Announce(a.ASN(), 1, pvr.Route{
			Prefix:  pfxs[0],
			Path:    pvr.NewPath(provider.ASN(), pvr.ASN(64800+uint32(round))),
			NextHop: netip.MustParseAddr("192.0.2.1"),
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := a.Submit(ctx, pvr.AnnounceEvent(provider.ASN(), ann)); err != nil {
			t.Fatal(err)
		}
		if _, err := a.Flush(ctx); err != nil {
			t.Fatal(err)
		}
	}
	windowPublished := a.Stats().Window
	waitFor(t, "B to verify the churn re-advertisements", func() bool {
		return b.Stats().RoutesVerified >= uint64(len(pfxs)+2)
	})

	// Kill A mid-window: the write-ahead window record of the next seal
	// tears partway through the WAL append, and the store behaves dead
	// from then on. Publication of the torn window must be suppressed.
	faultA.CrashAfterBytes(8)
	ann, err := provider.Announce(a.ASN(), 1, pvr.Route{
		Prefix:  pfxs[1],
		Path:    pvr.NewPath(provider.ASN(), 64999),
		NextHop: netip.MustParseAddr("192.0.2.1"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Submit(ctx, pvr.AnnounceEvent(provider.ASN(), ann)); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if !faultA.Crashed() {
		t.Fatal("armed crash did not trip on the mid-window WAL append")
	}
	a.Close()

	// Restart on the same store. Recovery must surface the last window
	// that could have been published (the torn one was not), and the
	// engine must resume past it — never reusing a published window
	// number, which peers would read as equivocation.
	a2, err := openA(pvr.WithPeers("b"))
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	defer a2.Close()
	st := a2.Stats()
	if !st.Store.Enabled || st.Store.RecoveredEpoch != 1 {
		t.Fatalf("recovered epoch = %d, want 1", st.Store.RecoveredEpoch)
	}
	if st.Store.RecoveredWindow != windowPublished {
		t.Fatalf("recovered window = %d, want last published %d", st.Store.RecoveredWindow, windowPublished)
	}
	if st.Store.RecoveredRecords == 0 {
		t.Fatal("crash restart replayed no WAL records")
	}
	if st.Window != windowPublished+1 {
		t.Fatalf("post-restart seal window = %d, want %d (recovered+1)", st.Window, windowPublished+1)
	}

	// B — never restarted, still holding every pre-crash seal statement —
	// verifies the re-sealed table over the fresh session without
	// convicting A: re-seals after restart are not equivocations.
	verified := b.Stats().RoutesVerified
	waitFor(t, "B to verify A's post-restart table", func() bool {
		return b.Stats().RoutesVerified >= verified+uint64(len(pfxs))
	})
	if b.Auditor().Convicted(a2.ASN()) {
		t.Fatal("B convicted A for restarting (false equivocation)")
	}

	// A genuine post-restart equivocation still convicts. B first pulls
	// A's full statement set over gossip, so the forgery lands on a
	// topic B genuinely holds.
	if _, err := b.Reconcile(ctx, "ga"); err != nil {
		t.Fatal(err)
	}
	seals := a2.Engine().Seals()
	if len(seals) == 0 {
		t.Fatal("A2 has no seals")
	}
	genuine := seals[0].Statement()
	forged, err := a2.SignStatement(genuine.Topic, append(append([]byte(nil), genuine.Payload...), 0xFF))
	if err != nil {
		t.Fatal(err)
	}
	_, conflict, err := b.Auditor().AddRecord(pvr.AuditRecord{Epoch: seals[0].Epoch, S: forged})
	if err != nil {
		t.Fatal(err)
	}
	if conflict == nil {
		t.Fatal("post-restart equivocation went undetected")
	}
	if !b.Auditor().Convicted(a2.ASN()) {
		t.Fatal("B did not convict A after the post-restart equivocation")
	}

	// Restart B: the trust-on-first-use pin and the conviction both
	// survive — the pin from the state store, the conviction from the
	// evidence ledger riding the same backend (replayed and re-verified,
	// never trusted as stored bytes).
	b.Close()
	b2, err := pvr.Open(ctx,
		pvr.WithASN(64501),
		pvr.WithTransport(mem),
		pvr.WithSigner(sB),
		pvr.WithGossipListen("gb"),
		pvr.WithStore(dirB),
		pvr.WithWindow(0),
		pvr.WithHoldTime(0),
		pvr.WithLogf(t.Logf),
	)
	if err != nil {
		t.Fatalf("reopen B: %v", err)
	}
	defer b2.Close()
	if got := b2.Stats().Store.RecoveredPins; got != 1 {
		t.Fatalf("B recovered %d pins, want 1 (A's key)", got)
	}
	if !b2.Auditor().Convicted(a2.ASN()) {
		t.Fatal("conviction did not survive B's restart")
	}

	// And it spreads network-wide from the restarted holder: C picks the
	// evidence up over gossip and convicts too.
	c, err := pvr.Open(ctx,
		pvr.WithASN(64502),
		pvr.WithTransport(mem),
		pvr.WithHoldTime(0),
		pvr.WithLogf(t.Logf),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Registry().Register(a2.ASN(), sA.Public())
	if c.Auditor().Convicted(a2.ASN()) {
		t.Fatal("C convicted A before gossiping with anyone")
	}
	if _, err := c.Reconcile(ctx, "gb"); err != nil {
		t.Fatal(err)
	}
	if !c.Auditor().Convicted(a2.ASN()) {
		t.Fatal("C did not convict A from evidence gossiped after B's restart")
	}
}

// TestCleanShutdownNeedsNoReplay pins the graceful-shutdown contract:
// Close checkpoints (final group commit + snapshot), so the next boot
// recovers entirely from the snapshot with zero WAL records to replay.
func TestCleanShutdownNeedsNoReplay(t *testing.T) {
	ctx := context.Background()
	ms := pvr.NewMemStore()
	s, err := pvr.GenerateEd25519()
	if err != nil {
		t.Fatal(err)
	}
	open := func() *pvr.Participant {
		t.Helper()
		p, err := pvr.Open(ctx,
			pvr.WithASN(64510),
			pvr.WithSigner(s),
			pvr.WithStoreBackend(ms),
			pvr.WithOriginate(pvr.MustParsePrefix("203.0.113.0/24")),
			pvr.WithShards(2),
			pvr.WithWindow(0),
			pvr.WithHoldTime(0),
		)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}

	p := open()
	w := p.Stats().Window // the open-time epoch seal (window 0 on a cold start)
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	p2 := open()
	st := p2.Stats()
	if st.Store.RecoveredRecords != 0 {
		t.Fatalf("clean shutdown left %d WAL records to replay, want 0", st.Store.RecoveredRecords)
	}
	if st.Store.RecoveredWindow != w {
		t.Fatalf("recovered window = %d, want %d", st.Store.RecoveredWindow, w)
	}
	if st.Window != w+1 {
		t.Fatalf("resumed seal window = %d, want %d", st.Window, w+1)
	}
	if err := p2.Close(); err != nil {
		t.Fatal(err)
	}

	p3 := open()
	defer p3.Close()
	if got := p3.Stats().Store.RecoveredRecords; got != 0 {
		t.Fatalf("second clean restart replayed %d records, want 0", got)
	}
	if got := p3.Stats().Window; got != w+2 {
		t.Fatalf("windows across restarts = %d, want strictly advancing to %d", got, w+2)
	}
}
