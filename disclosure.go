package pvr

import (
	"context"
	"fmt"

	"pvr/internal/core"
	"pvr/internal/discplane"
	"pvr/internal/engine"
	"pvr/internal/obs"
	"pvr/internal/privplane"
	"pvr/internal/sigs"
)

// Role is a requester's relationship to the prover for one prefix — the
// α classes of §2.2 that decide which view a disclosure query is granted.
type Role = discplane.Role

// Roles for Query.Role.
const (
	// RoleObserver (any third party) is granted the sealed commitment and
	// its inclusion proof only.
	RoleObserver = discplane.RoleObserver
	// RoleProvider (a neighbor that provided an input route this epoch) is
	// granted the §3.3 single-bit opening for its own route length.
	RoleProvider = discplane.RoleProvider
	// RolePromisee (the neighbor the promise was made to) is granted the
	// full opened vector, the winning input, and the export statement.
	RolePromisee = discplane.RolePromisee
	// RoleAuditor (any third party, when the prover seals with
	// WithZKDisclosure) is granted the sealed commitment plus a
	// zero-knowledge proof that the committed promise holds — no bit is
	// opened. Auditor queries may be anonymous; the proof is its own gate.
	RoleAuditor = discplane.RoleAuditor
)

// Privacy-plane types (internal/privplane): ring-signature identities for
// anonymous provider queries and the zero-knowledge auditor material.
type (
	// RingKey is a participant's ring-signing identity: a dedicated RSA
	// key, separate from its Ed25519 protocol key.
	RingKey = privplane.RingKey
	// RingDirectory maps ASNs to ring public keys the way Registry maps
	// them to signing keys.
	RingDirectory = privplane.Directory
	// VectorView is the auditor-facing zero-knowledge material: the
	// Pedersen commitment vector a seal binds plus the proof that it
	// commits to a well-formed monotone bit vector.
	VectorView = privplane.VectorView
)

// Ring-key constructors (see WithRingKey / WithRingDirectory).
var (
	// GenerateRingKey draws a fresh RSA ring key for an ASN.
	GenerateRingKey = privplane.GenerateRingKey
	// NewRingKey wraps an existing RSA private key as a ring key.
	NewRingKey = privplane.NewRingKey
	// NewRingDirectory builds an empty ring-key directory.
	NewRingDirectory = privplane.NewDirectory
)

// Query selects one on-demand disclosure: which (prefix, epoch), in what
// claimed role. The participant fills in its identity, signs the wire
// query, and verifies the answer; see QueryDisclosure.
type Query struct {
	// Prefix and Epoch select the commitment the query is about.
	Prefix Prefix
	Epoch  uint64
	// Role is the view requested under α (zero value: RolePromisee).
	Role Role
	// Prover, when nonzero, addresses the query to that serving AS: the
	// binding is signed, a different server refuses it, and the answer
	// is cross-checked against it. Leave zero only when the prover is
	// not yet known (a first trust-on-first-use contact).
	Prover ASN
	// Announcement must be set for RoleProvider: the input announcement
	// this participant sent the prover, which the opened bit is checked
	// against (§3.3: N_i verifies b_{|r_i|} = 1 for its own route length).
	Announcement *Announcement
	// Anonymous, for RoleProvider, authenticates the query with a ring
	// signature over Ring instead of this participant's Ed25519 signature:
	// the server learns only "some provider in the ring asked" (anonymity
	// set k = len(Ring)). Requires WithRingKey and a Ring of at least two
	// declared providers including this participant.
	Anonymous bool
	// Ring is the anonymity set for an Anonymous query: ASNs that all
	// provided a route for Prefix this epoch. Order is irrelevant (the
	// wire carries it canonically sorted).
	Ring []ASN
	// Trace, when set, propagates a distributed-trace context with the
	// query so the server's DisclosureServed event joins the caller's
	// chain; left zero, QueryDisclosure mints a fresh one.
	Trace TraceContext
}

// Disclosure is a fetched, fully verified on-demand view: the typed
// result of QueryDisclosure after the wire answer passed the verification
// Pipeline and the seal was cross-checked against the audit network's
// statement store.
type Disclosure struct {
	// Prover is the AS the view discloses for; Role is the granted role.
	Prover ASN
	Role   Role
	// Prefix, Epoch, and Window locate the commitment.
	Prefix Prefix
	Epoch  uint64
	Window uint64
	// Sealed is the authenticated per-prefix commitment (every role).
	Sealed *SealedCommitment
	// Provider is the verified §3.3 provider view (RoleProvider only).
	Provider *EngineProviderView
	// Promisee is the verified §3.3 promisee view (RolePromisee only).
	Promisee *EnginePromiseeView
	// Vector is the verified zero-knowledge opening (RoleAuditor only):
	// the Pedersen vector matched the sealed digest and its proof of
	// well-formedness and monotonicity verified — the promise holds.
	Vector *VectorView
	// KeyPinned reports that the prover's key was pinned
	// trust-on-first-use during this query (private registries only).
	KeyPinned bool
	// Trace is the distributed-trace context the granted view carried —
	// the SEAL's trace (minted where the sealed announcement was ingested),
	// not the query's, so it links the fetched state back to its origin.
	Trace TraceContext
}

// RequestDisclosure fetches and verifies this participant's promisee view
// of (prefix, epoch) from the disclosure query plane at peer (an address
// dialed through the participant's transport; the peer serves it via
// WithDiscloseListen). It is QueryDisclosure with Role RolePromisee — the
// everyday "prove to me you kept your promise for this prefix" call.
func (p *Participant) RequestDisclosure(ctx context.Context, peer string, pfx Prefix, epoch uint64) (*Disclosure, error) {
	return p.QueryDisclosure(ctx, peer, Query{Prefix: pfx, Epoch: epoch, Role: RolePromisee})
}

// RequestAnonymousDisclosure fetches and verifies this participant's §3.3
// provider view WITHOUT identifying itself: the query is authenticated by
// a ring signature over ring (every member a declared provider for pfx
// this epoch, this participant among them), so the serving prover learns
// only that some member of the ring asked — anonymity set k = len(ring).
// Requires WithRingKey; ann is the input announcement this participant
// sent the prover, whose route length selects the opened bit.
func (p *Participant) RequestAnonymousDisclosure(ctx context.Context, peer string, pfx Prefix, epoch uint64, ring []ASN, ann *Announcement) (*Disclosure, error) {
	return p.QueryDisclosure(ctx, peer, Query{
		Prefix: pfx, Epoch: epoch, Role: RoleProvider,
		Anonymous: true, Ring: ring, Announcement: ann,
	})
}

// RequestAuditProof fetches and verifies a zero-knowledge opening of
// (prefix, epoch) as a third party: the sealed commitment plus a proof
// that the committed promise holds, with no bit opened. The serving
// prover must seal with WithZKDisclosure.
func (p *Participant) RequestAuditProof(ctx context.Context, peer string, pfx Prefix, epoch uint64) (*Disclosure, error) {
	return p.QueryDisclosure(ctx, peer, Query{Prefix: pfx, Epoch: epoch, Role: RoleAuditor})
}

// QueryDisclosure runs one on-demand disclosure query against the plane
// at peer: dial, send the signed DISCLOSE, and verify whatever comes
// back. A granted view is piped through the verification Pipeline
// (banlist-checked, signature-cached) and its shard seal is fed to the
// participant's Auditor — a fetched seal that conflicts with what gossip
// already holds is equivocation evidence, convicted and ledgered before
// this returns with an error matching ErrConvicted. Denials surface as
// ErrAccessDenied (α refused) or ErrNotFound (unknown prefix or epoch).
//
// When the participant runs a private registry (no WithRegistry) and does
// not yet know the prover's key, the view's key is verified against the
// full chain and pinned trust-on-first-use, exactly like the BGP path;
// with a shared out-of-band registry, unknown provers are rejected.
func (p *Participant) QueryDisclosure(ctx context.Context, peer string, q Query) (*Disclosure, error) {
	role := q.Role
	if role == 0 {
		role = RolePromisee
	}
	if role == RoleProvider && q.Announcement == nil {
		return nil, errConfigf("query", "RoleProvider requires Query.Announcement (the input route to check the opened bit against)")
	}
	if q.Anonymous {
		if role != RoleProvider {
			return nil, errConfigf("query", "Anonymous queries carry only RoleProvider (the auditor role is anonymous by construction)")
		}
		if p.ringKey == nil {
			return nil, errConfigf("query", "Anonymous queries require WithRingKey")
		}
		if len(q.Ring) < 2 {
			return nil, errConfigf("query", "Anonymous queries need a ring of at least 2 providers, got %d", len(q.Ring))
		}
	}
	conn, err := p.transport.Dial(ctx, peer)
	if err != nil {
		return nil, wrapErr("query", err)
	}
	defer conn.Close()

	qtc := q.Trace
	if qtc.IsZero() {
		qtc = obs.NewTraceContext()
	}
	var view *discplane.View
	if q.Anonymous {
		ring, rerr := privplane.CanonicalRing(q.Ring)
		if rerr != nil {
			return nil, errKind(KindConfig, "query", rerr)
		}
		aq := &discplane.AnonQuery{
			Prover: q.Prover, Epoch: q.Epoch, Prefix: q.Prefix,
			Position: uint32(q.Announcement.Route.PathLen()),
			Ring:     ring, Trace: qtc,
		}
		if err := aq.Sign(p.priv, p.ringKey); err != nil {
			return nil, wrapErr("query", err)
		}
		if view, err = discplane.FetchAnonContext(ctx, conn, aq); err != nil {
			return nil, wrapErr("query", err)
		}
	} else {
		dq := &discplane.Query{Requester: p.asn, Prover: q.Prover, Role: role, Epoch: q.Epoch, Prefix: q.Prefix, Trace: qtc}
		if err := dq.Sign(p.signer); err != nil {
			return nil, wrapErr("query", err)
		}
		if view, err = discplane.FetchContext(ctx, conn, dq); err != nil {
			return nil, wrapErr("query", err)
		}
	}
	p.queriesSent.Inc()
	seal := view.Sealed.Seal
	prover := seal.Prover
	if q.Prover != 0 && prover != q.Prover {
		return nil, errKind(KindVerification, "query",
			fmt.Errorf("queried %s, answered with a seal from %s", q.Prover, prover))
	}
	if p.auditor.Convicted(prover) {
		return nil, errKind(KindConvicted, "query", fmt.Errorf("%s stands convicted by audit", prover))
	}

	// Resolve the verification registry: the participant's own, or — on a
	// private trust-on-first-use registry meeting this prover for the
	// first time — a scratch registry holding the view's candidate key,
	// committed only after the whole chain verifies (the same rule as the
	// BGP session path: a shared PKI is never written from peer input).
	reg := p.reg
	var pinned sigs.PublicKey
	if _, lerr := p.reg.Lookup(prover); lerr != nil {
		if p.cfg.registry != nil {
			return nil, errKind(KindVerification, "query",
				fmt.Errorf("no key for %s in the shared registry (trust-on-first-use is disabled when the PKI is out-of-band)", prover))
		}
		if len(view.Key) == 0 {
			return nil, errKind(KindVerification, "query", fmt.Errorf("no key for %s and the view carries none", prover))
		}
		k, kerr := sigs.UnmarshalPublicKey(view.Key)
		if kerr != nil {
			return nil, errKind(KindVerification, "query", kerr)
		}
		// Trust-on-first-use authenticates the seal chain rooted in the
		// candidate key; gated views whose material is co-signed by third
		// parties (a promisee view's winning announcement) additionally
		// need those signers resolvable, which is the paper's out-of-band
		// PKI assumption — without it the check fails typed, not silently.
		scratch := sigs.NewRegistry()
		scratch.Register(prover, k)
		pinned, reg = k, scratch
	}

	d := &Disclosure{
		Prover: prover, Role: role,
		Prefix: q.Prefix, Epoch: seal.Epoch, Window: seal.Window,
		Sealed: view.Sealed,
		Trace:  view.Trace,
	}
	// Every fetched view goes through the verification Pipeline: the same
	// banlist gate, seal-signature memoization, and §3.3 content checks
	// the in-process path uses. The seal memo is shared across this
	// participant's queries (not with the TOFU scratch path, whose
	// verdicts are registry-relative), so auditing many prefixes of one
	// prover pays each distinct shard-seal signature check once.
	pl := engine.NewPipeline(reg, 1)
	defer pl.Close()
	if reg == p.reg {
		pl.ShareSealMemo(p.discSealMemo)
	}
	pl.SetBanlist(p.auditor.Convicted)
	switch role {
	case RoleProvider:
		pv := &engine.ProviderView{Sealed: view.Sealed, Position: int(view.Position), Opening: *view.Opening}
		pl.SubmitProvider(pv, *q.Announcement)
		d.Provider = pv
	case RolePromisee:
		mv := &engine.PromiseeView{Sealed: view.Sealed, Openings: view.Openings, Winner: view.Winner, Export: *view.Export}
		if view.ExportOpening != nil {
			mv.ExportOpening = *view.ExportOpening
		}
		pl.SubmitPromisee(mv, p.asn)
		d.Promisee = mv
	case RoleAuditor:
		sc := view.Sealed
		vv := &VectorView{Commitments: view.ZKCommitments, Proof: view.ZKProof}
		pl.Submit(q.Prefix, prover, func(ver sigs.Verifier) error {
			if err := sc.Verify(ver); err != nil {
				return err
			}
			// The seal chain is authenticated; now the zero-knowledge half:
			// the Pedersen vector must digest to what the leaf binds, and
			// its well-formedness/monotonicity proof must verify under the
			// seal-bound context.
			return p.priv.VerifyAuditorProof(sc, vv)
		})
		d.Vector = vv
	default:
		sc := view.Sealed
		pl.Submit(q.Prefix, prover, func(ver sigs.Verifier) error { return sc.Verify(ver) })
	}
	res := pl.Drain()
	if verr := res[0].Err; verr != nil {
		// A *core.Violation stays reachable through Unwrap: catching the
		// prover breaking its promise is a successful verification outcome
		// for the protocol, reported as the error it is.
		return nil, errKind(KindVerification, "query", verr)
	}
	if pinned != nil {
		p.reg.Register(prover, pinned)
		d.KeyPinned = true
		fp := pinned.Fingerprint()
		p.cfg.logf("pvr: %s pinned %s's key (trust-on-first-use via disclosure query, fp %x…)", p.asn, prover, fp[:6])
	}
	// Cross-check the fetched seal against the audit network: the seal
	// this server showed us must be the same statement it gossips. A
	// conflict is transferable evidence — judged, convicted, and ledgered
	// by ObserveStatement before we report it. The view's trace (the
	// seal's own chain) travels with the statement so a conviction here
	// stitches back to the announcement that produced the seal.
	conflict, aerr := p.auditor.ObserveStatementTraced(seal.Epoch, seal.Statement(), view.Trace)
	if aerr != nil {
		return nil, wrapErr("query", aerr)
	}
	if conflict != nil {
		return nil, errKind(KindConvicted, "query",
			fmt.Errorf("fetched seal for %s equivocates with gossip on %s: %s convicted", q.Prefix, conflict.Topic, prover))
	}
	return d, nil
}

// Announce signs an input route offered to a neighboring prover for an
// epoch (the route's first AS must be this participant). The counterpart
// of Node.Announce for Participant identities: a provider announces
// through this, the prover ingests via Submit(AnnounceEvent(...)), and
// the provider later audits the prover with a RoleProvider
// QueryDisclosure carrying this same announcement.
func (p *Participant) Announce(to ASN, epoch uint64, r Route) (Announcement, error) {
	a, err := core.NewAnnouncement(p.signer, p.asn, to, epoch, r)
	return a, wrapErr("announce", err)
}

// DiscloseAddr returns the bound disclosure query-plane address ("" when
// not serving).
func (p *Participant) DiscloseAddr() string {
	if p.discLis == nil {
		return ""
	}
	return p.discLis.Addr()
}
