package pvr_test

// Godoc Example functions: compiler- and CI-checked documentation of the
// public API contract. Each runs under go test; the // Output: comments
// pin the observable behaviour.

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net/netip"
	"time"

	"pvr"
)

// ExampleParticipant is the deployment story in miniature: one
// lifecycle-managed Participant per AS over the in-memory transport. The
// origin proves over its table and serves it; the neighbor dials, pins
// the origin's key trust-on-first-use, and verifies every learned route
// against the sealed commitment chain.
func ExampleParticipant() {
	ctx := context.Background()
	mem := pvr.NewMemTransport()

	origin, err := pvr.Open(ctx,
		pvr.WithASN(64500),
		pvr.WithTransport(mem),
		pvr.WithOriginate(pvr.MustParsePrefix("203.0.113.0/24")),
		pvr.WithWindow(0), // seal on explicit Flush only
		pvr.WithListen("origin"),
		pvr.WithHoldTime(0),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer origin.Close()

	neighbor, err := pvr.Open(ctx,
		pvr.WithASN(64501),
		pvr.WithTransport(mem),
		pvr.WithPeers("origin"),
		pvr.WithHoldTime(0),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer neighbor.Close()

	for neighbor.Stats().RoutesVerified < 1 {
		time.Sleep(time.Millisecond)
	}
	st := neighbor.Stats()
	fmt.Printf("verified %d sealed route(s), rejected %d\n", st.RoutesVerified, st.RoutesRejected)
	// Output: verified 1 sealed route(s), rejected 0
}

// ExampleProver runs one epoch of the §3.3 minimum-route protocol: the
// provider announces a signed route, the prover commits to the bit
// vector, and the promisee verifies the disclosure.
func ExampleProver() {
	network := pvr.NewNetwork()
	a, _ := network.AddNode(64500)        // the prover A
	n1, _ := network.AddNode(64501)       // provider N1
	promisee, _ := network.AddNode(64510) // promisee B

	pfx := pvr.MustParsePrefix("203.0.113.0/24")
	prover, err := a.NewProver(32)
	if err != nil {
		log.Fatal(err)
	}
	prover.BeginEpoch(1, pfx)

	ann, err := n1.Announce(a.ASN(), 1, pvr.Route{
		Prefix:  pfx,
		Path:    pvr.NewPath(n1.ASN(), 64800),
		NextHop: netip.MustParseAddr("192.0.2.1"),
	})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := prover.AcceptAnnouncement(ann); err != nil {
		log.Fatal(err)
	}
	if _, err := prover.CommitMin(); err != nil {
		log.Fatal(err)
	}
	view, err := prover.DiscloseToPromisee(promisee.ASN())
	if err != nil {
		log.Fatal(err)
	}
	if err := pvr.VerifyPromiseeView(network.Registry(), view); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("promise kept: exported %s over %d-hop input\n",
		view.Export.Route.Prefix, ann.Route.PathLen())
	// Output: promise kept: exported 203.0.113.0/24 over 2-hop input
}

// ExampleAuditor shows equivocation detection from signed statements
// alone: two validly signed, different payloads on one topic convict the
// origin, and the evidence is transferable to any third party.
func ExampleAuditor() {
	reg := pvr.NewRegistry()
	signer, err := pvr.GenerateEd25519()
	if err != nil {
		log.Fatal(err)
	}
	liar := pvr.ASN(64500)
	reg.Register(liar, signer.Public())

	auditor, err := pvr.NewAuditor(pvr.AuditorConfig{ASN: 64501, Registry: reg})
	if err != nil {
		log.Fatal(err)
	}
	sign := func(payload string) pvr.Statement {
		sig, err := signer.Sign([]byte(payload))
		if err != nil {
			log.Fatal(err)
		}
		return pvr.Statement{Origin: liar, Topic: "seal/epoch-1", Payload: []byte(payload), Sig: sig}
	}
	if _, _, err := auditor.AddRecord(pvr.AuditRecord{Epoch: 1, S: sign("root-A")}); err != nil {
		log.Fatal(err)
	}
	// The same topic, a different validly signed payload: equivocation.
	_, conflict, err := auditor.AddRecord(pvr.AuditRecord{Epoch: 1, S: sign("root-B")})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("conflict detected: %v\nconvicted: %v\n", conflict != nil, auditor.Convicted(liar))
	// Output:
	// conflict detected: true
	// convicted: true
}

// ExampleParticipant_RequestDisclosure is the disclosure query plane in
// miniature: a prover serves α-gated on-demand views of its sealed table
// (WithDiscloseListen), the declared promisee fetches and verifies its
// full §3.3 view over the wire, and a third party asking for the same
// view is denied with a typed ErrAccessDenied — the paper's privacy
// boundary, enforced across a trust boundary instead of by caller
// convention.
func ExampleParticipant_RequestDisclosure() {
	ctx := context.Background()
	mem := pvr.NewMemTransport()
	reg := pvr.NewRegistry() // shared out-of-band PKI

	pfx := pvr.MustParsePrefix("203.0.113.0/24")
	prover, err := pvr.Open(ctx,
		pvr.WithASN(64500),
		pvr.WithTransport(mem),
		pvr.WithRegistry(reg),
		pvr.WithOriginate(pfx),
		pvr.WithWindow(0),
		pvr.WithHoldTime(0),
		pvr.WithDiscloseListen("disc"),
		pvr.WithPromisees(64501), // α: only 64501 gets the promisee view
	)
	if err != nil {
		log.Fatal(err)
	}
	defer prover.Close()

	promisee, err := pvr.Open(ctx,
		pvr.WithASN(64501), pvr.WithTransport(mem), pvr.WithRegistry(reg), pvr.WithHoldTime(0))
	if err != nil {
		log.Fatal(err)
	}
	defer promisee.Close()
	d, err := promisee.RequestDisclosure(ctx, "disc", pfx, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s view of %s from %s: verified\n", d.Role, d.Prefix, d.Prover)

	third, err := pvr.Open(ctx,
		pvr.WithASN(64502), pvr.WithTransport(mem), pvr.WithRegistry(reg), pvr.WithHoldTime(0))
	if err != nil {
		log.Fatal(err)
	}
	defer third.Close()
	_, err = third.RequestDisclosure(ctx, "disc", pfx, 1)
	fmt.Printf("third party denied under α: %v\n", errors.Is(err, pvr.ErrAccessDenied))

	// The sealed commitment itself is public material: the same third
	// party may always fetch and verify it as an observer.
	od, err := third.QueryDisclosure(ctx, "disc", pvr.Query{Prefix: pfx, Epoch: 1, Role: pvr.RoleObserver})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s view of %s from %s: verified\n", od.Role, od.Prefix, od.Prover)
	// Output:
	// promisee view of 203.0.113.0/24 from AS64500: verified
	// third party denied under α: true
	// observer view of 203.0.113.0/24 from AS64500: verified
}
