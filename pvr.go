// Package pvr is the public API of this repository: an implementation of
// private and verifiable routing (PVR) from "Having Your Cake and Eating
// It Too: Routing Security with Privacy Protections" (Gurney, Haeberlen,
// Zhou, Sherr, Loo — HotNets-X, 2011).
//
// PVR lets an autonomous system prove to its neighbors that it kept its
// routing promises ("I exported the shortest route you gave me") without
// revealing anything the routing protocol does not already reveal. The
// package exposes:
//
//   - Network / Node: key management for the participating ASes.
//   - The §3.3 minimum-operator protocol (Prover, ProviderView,
//     PromiseeView and their verifiers) and the §3.2 existential protocol.
//   - Route-flow graphs (§2.1) with operators, access control α (§2.2),
//     promise model checking, and the generalized Merkle commitment with
//     selective disclosure (§3.5–3.7).
//   - Commitment gossip for equivocation detection, transferable evidence,
//     and a third-party Judge (§2.3).
//   - The sharded multi-prefix Engine with Merkle-batched shard seals and
//     the streaming UpdatePlane that re-seals only dirty shards under
//     live BGP churn (§3.8 batching).
//   - The disclosure query plane: on-demand, α-gated views of any sealed
//     (prefix, epoch) over the wire — providers, the promisee, and third
//     parties each granted exactly their entitlement, denials typed as
//     ErrAccessDenied (Participant.QueryDisclosure, WithDiscloseListen).
//   - Simulation drivers (RunFig1, RunConvergence, RunEngineEpoch,
//     RunGossip, RunChurn) used by the examples and the experiment
//     harness.
//
// A minimal session, with A proving its shortest-route promise:
//
//	net := pvr.NewNetwork()
//	a, _ := net.AddNode(64500)     // the prover A
//	n1, _ := net.AddNode(64501)    // provider N1
//	b, _ := net.AddNode(64502)     // promisee B
//
//	prover, _ := a.NewProver(32)
//	prover.BeginEpoch(1, pfx)
//	ann, _ := n1.Announce(a.ASN(), 1, route)
//	receipt, _ := prover.AcceptAnnouncement(ann)
//	_, _ = prover.CommitMin()
//	view, _ := prover.DiscloseToPromisee(b.ASN())
//	err := pvr.VerifyPromiseeView(net.Registry(), view)   // b's check
//	_ = receipt
//
// See examples/ for complete programs and EXPERIMENTS.md for the
// reproduction of the paper's quantitative claims.
package pvr

import (
	"sort"
	"sync"

	"pvr/internal/aspath"
	"pvr/internal/auditnet"
	"pvr/internal/core"
	"pvr/internal/engine"
	"pvr/internal/evidence"
	"pvr/internal/gossip"
	"pvr/internal/netsim"
	"pvr/internal/prefix"
	"pvr/internal/rfg"
	"pvr/internal/route"
	"pvr/internal/sigs"
	"pvr/internal/updplane"
)

// ASN is an autonomous system number.
type ASN = aspath.ASN

// Prefix is an IP prefix; see ParsePrefix.
type Prefix = prefix.Prefix

// Route is a BGP route with attributes.
type Route = route.Route

// Path is a BGP AS_PATH.
type Path = aspath.Path

// NewPath builds an AS_SEQUENCE path, leftmost (most recent) first.
func NewPath(asns ...ASN) Path { return aspath.New(asns...) }

// ParsePrefix parses CIDR notation ("203.0.113.0/24").
func ParsePrefix(s string) (Prefix, error) { return prefix.Parse(s) }

// MustParsePrefix is ParsePrefix that panics on error, for literals.
func MustParsePrefix(s string) Prefix { return prefix.MustParse(s) }

// Core protocol types (§3.2–§3.3). A Prover is the promise-making AS; the
// views are what it disclosed to each class of neighbor.
type (
	// Prover is network A: it gathers signed inputs, commits, exports,
	// and discloses.
	Prover = core.Prover
	// Announcement is a provider's signed input route.
	Announcement = core.Announcement
	// Receipt is the prover's signed acknowledgement of an announcement.
	Receipt = core.Receipt
	// MinCommitment is the signed §3.3 bit-vector commitment.
	MinCommitment = core.MinCommitment
	// ProviderView is the disclosure a provider N_i verifies.
	ProviderView = core.ProviderView
	// PromiseeView is the disclosure the promisee B verifies.
	PromiseeView = core.PromiseeView
	// Violation is a detected promise violation.
	Violation = core.Violation
	// GraphProver commits to and discloses a route-flow graph (§3.5–3.7).
	GraphProver = core.GraphProver
	// GraphCommitment is the signed Merkle root over a route-flow graph.
	GraphCommitment = core.GraphCommitment
	// VertexDisclosure reveals one graph vertex under α.
	VertexDisclosure = core.VertexDisclosure
	// ExportStatement is A's signed statement of what it exported (§3.3).
	ExportStatement = core.ExportStatement
)

// Route-flow graph types (§2.1–2.2).
type (
	// Graph is a route-flow graph of operator and variable vertices.
	Graph = rfg.Graph
	// Access is the α visibility policy.
	Access = rfg.Access
	// Promise is a verifiable contract over graph inputs and outputs.
	Promise = rfg.Promise
)

// Evidence and judging (§2.3).
type (
	// Evidence is a transferable accusation with supporting material.
	Evidence = evidence.Evidence
	// Verdict is the judge's decision.
	Verdict = evidence.Verdict
	// GossipPool detects commitment equivocation between neighbors.
	GossipPool = gossip.Pool
	// Statement is a signed gossip utterance (for PVR: a seal or
	// commitment) by its origin on a topic.
	Statement = gossip.Statement
	// Conflict is a detected equivocation: two validly signed, different
	// payloads from the same origin on the same topic.
	Conflict = gossip.Conflict
)

// Audit network types (internal/auditnet): the deployable accountability
// layer. An Auditor keeps an epoch-indexed statement store with
// per-(origin, epoch) Merkle digests, reconciles it with peers via
// anti-entropy exchanges (digests first, only missing statements on the
// wire), persists confirmed equivocation evidence to an append-only
// Ledger, and maintains the convicted-AS set that Pipeline.SetBanlist
// consults.
type (
	// Auditor is one node of the audit network.
	Auditor = auditnet.Auditor
	// AuditorConfig parameterizes NewAuditor.
	AuditorConfig = auditnet.Config
	// AuditRecord is a signed statement filed under its epoch, the unit
	// the network disseminates.
	AuditRecord = auditnet.Record
	// AuditStats reports what one anti-entropy exchange moved.
	AuditStats = auditnet.Stats
	// Ledger is the persistent append-only evidence log.
	Ledger = auditnet.Ledger
	// LedgerRecord is one replayed evidence entry.
	LedgerRecord = auditnet.LedgerRecord
	// Conviction is one convicted-AS entry with the judge's explanation.
	Conviction = auditnet.Conviction
)

// NewAuditor builds an audit-network node; OpenLedger opens (creating if
// absent) an evidence ledger and returns its replayed records, which
// AuditorConfig.Replay feeds through verification and the judge.
var (
	NewAuditor = auditnet.New
	OpenLedger = auditnet.OpenLedger
)

// Registry maps ASNs to verification keys.
type Registry = sigs.Registry

// NewRegistry creates an empty key registry (a Network and a Participant
// each manage one; this is for wiring them by hand).
var NewRegistry = sigs.NewRegistry

// Verifier is the read side of a Registry; *Registry implements it.
type Verifier = sigs.Verifier

// Engine types: the sharded multi-prefix prover (internal/engine). Where a
// Prover handles one (prefix, epoch), an Engine handles an AS's whole
// table: hash-sharded per-prefix state, concurrent announcement ingest,
// one Merkle-batched commitment signature per shard at epoch seal, and a
// worker-pool verification pipeline on the receiving side.
type (
	// Engine is the sharded multi-prefix prover.
	Engine = engine.ProverEngine
	// EngineConfig parameterizes NewEngine; zero values are defaulted.
	EngineConfig = engine.Config
	// EngineSeal is one shard's signed Merkle-batched epoch commitment.
	EngineSeal = engine.Seal
	// SealedCommitment is a per-prefix commitment authenticated by a shard
	// seal plus inclusion proof instead of its own signature.
	SealedCommitment = engine.SealedCommitment
	// EngineProviderView is the engine's §3.3 disclosure to a provider.
	EngineProviderView = engine.ProviderView
	// EnginePromiseeView is the engine's §3.3 disclosure to the promisee.
	EnginePromiseeView = engine.PromiseeView
	// Pipeline is the channel-fed worker pool for parallel disclosure
	// verification with a cached key registry.
	Pipeline = engine.Pipeline
	// VerifyResult is one pipeline verification outcome.
	VerifyResult = engine.Result
)

// NewEngine builds a sharded multi-prefix prover engine. Config.ASN,
// Signer, and Registry are required; NewPipeline builds the matching
// verification pool (workers must be positive).
var (
	NewEngine   = engine.New
	NewPipeline = engine.NewPipeline
	// VerifyEngineProviderView is N_i's check of an engine disclosure.
	VerifyEngineProviderView = engine.VerifyProviderView
	// VerifyEnginePromiseeView is B's check of an engine disclosure.
	VerifyEnginePromiseeView = engine.VerifyPromiseeView
)

// Update-plane types (internal/updplane): the streaming layer between a
// live BGP feed and the engine. An UpdatePlane consumes announce/withdraw
// events through a bounded backpressured queue, applies them through the
// BGP RIB decision process, and re-seals only the dirty shards each
// commitment window (engine SealDirty) — the §3.8 batching argument
// applied to continuous churn instead of static table re-seals.
type (
	// UpdatePlane is the streaming update plane.
	UpdatePlane = updplane.Plane
	// UpdatePlaneConfig parameterizes NewUpdatePlane; Engine is required.
	UpdatePlaneConfig = updplane.Config
	// UpdateEvent is one feed item (announce or withdraw).
	UpdateEvent = updplane.Event
	// UpdateWindow reports one sealed commitment window.
	UpdateWindow = updplane.WindowResult
	// UpdatePlaneStats is a snapshot of plane counters and seal-latency
	// quantiles.
	UpdatePlaneStats = updplane.Stats
)

// NewUpdatePlane starts a streaming update plane over an Engine;
// AnnounceEvent and WithdrawEvent build its feed items. The backpressure
// signal from UpdatePlane.TrySubmit matches ErrQueueFull (deprecated) and,
// through the Participant surface, ErrBackpressure.
var (
	NewUpdatePlane = updplane.New
	AnnounceEvent  = updplane.AnnounceEvent
	WithdrawEvent  = updplane.WithdrawEvent
)

// Re-exported verification functions: these are what each neighbor runs.
var (
	// VerifyProviderView is N_i's §3.3 check.
	VerifyProviderView = core.VerifyProviderView
	// VerifyPromiseeView is B's §3.3 check.
	VerifyPromiseeView = core.VerifyPromiseeView
	// VerifyVertexDisclosure validates a graph disclosure against a root.
	VerifyVertexDisclosure = core.VerifyVertexDisclosure
	// Navigate walks a disclosed route-flow graph under α.
	Navigate = core.Navigate
	// IsViolation extracts a promise violation from a verification error.
	IsViolation = core.IsViolation
	// Judge renders a third-party verdict on evidence.
	Judge = evidence.Judge
)

// Judge verdicts.
const (
	Guilty   = evidence.Guilty
	Unproven = evidence.Unproven
)

// Simulation drivers for experiments and examples.
type (
	// Fig1Config parameterizes a run of the paper's Fig. 1 scenario.
	Fig1Config = netsim.Fig1Config
	// Fig1Result is what the neighbors observed.
	Fig1Result = netsim.Fig1Result
	// Fault selects an injected Byzantine behaviour.
	Fault = netsim.Fault
)

// Faults for Fig1Config.
const (
	FaultNone        = netsim.FaultNone
	FaultSuppress    = netsim.FaultSuppress
	FaultWrongExport = netsim.FaultWrongExport
	FaultEquivocate  = netsim.FaultEquivocate
)

// RunFig1 executes one epoch of the Fig. 1 scenario with fault injection.
var RunFig1 = netsim.RunFig1

// Engine-scale simulation driver (experiment E10): a whole-table epoch
// through the sharded engine with pipelined verification.
type (
	// EngineRunConfig parameterizes RunEngineEpoch.
	EngineRunConfig = netsim.EngineRunConfig
	// EngineRunResult reports counts and the cost split.
	EngineRunResult = netsim.EngineRunResult
)

// RunEngineEpoch runs one multi-prefix epoch through a sharded engine.
var RunEngineEpoch = netsim.RunEngineEpoch

// Gossip-convergence simulation driver (experiment E11): an audit network
// of N nodes running anti-entropy rounds, with an injected cross-shard
// equivocation and per-epoch statement deltas.
type (
	// GossipConfig parameterizes RunGossip.
	GossipConfig = netsim.GossipConfig
	// GossipResult reports detection latency and reconciliation cost.
	GossipResult = netsim.GossipResult
)

// RunGossip executes one gossip-convergence run; RunGossipContext is the
// context-bounded variant (cancellation observed at round boundaries).
var (
	RunGossip        = netsim.RunGossip
	RunGossipContext = netsim.RunGossipContext
)

// Streaming-churn simulation driver (experiment E12): a table under live
// announce/withdraw churn driven through the update plane, with
// dirty-shard invariants checked, an optional full-reseal baseline, and
// equivocation-under-churn audit.
type (
	// ChurnConfig parameterizes RunChurn.
	ChurnConfig = netsim.ChurnConfig
	// ChurnResult reports per-window costs, invariants, and detection.
	ChurnResult = netsim.ChurnResult
)

// RunChurn executes one streaming-churn run; RunChurnContext is the
// context-bounded variant (cancellation observed at window boundaries).
var (
	RunChurn        = netsim.RunChurn
	RunChurnContext = netsim.RunChurnContext
)

// Disclosure-query simulation driver (experiment E13): one prover serving
// its sealed multi-prefix table over the DISCLOSE/VIEW/DENY query plane,
// with concurrent clients issuing a deterministic mix of entitled and
// unentitled queries — measuring query latency, throughput, and α-denial
// correctness at scale.
type (
	// QueryRunConfig parameterizes RunQuery.
	QueryRunConfig = netsim.QueryConfig
	// QueryRunResult reports throughput, latency quantiles, and the
	// α-correctness counters.
	QueryRunResult = netsim.QueryResult
)

// RunQuery executes one disclosure-query run; RunQueryContext is the
// context-bounded variant (cancellation observed between queries).
var (
	RunQuery        = netsim.RunQuery
	RunQueryContext = netsim.RunQueryContext
)

// Network is the set of participating ASes and their public keys: the
// out-of-band PKI the paper assumes. Safe for concurrent use; reads
// (Node, Members) take only the read side of the lock.
type Network struct {
	mu    sync.RWMutex
	reg   *sigs.Registry
	nodes map[ASN]*Node
}

// NewNetwork creates an empty network.
func NewNetwork() *Network {
	return &Network{reg: sigs.NewRegistry(), nodes: make(map[ASN]*Node)}
}

// Registry exposes the verification-key registry used by all Verify*
// functions.
func (n *Network) Registry() *Registry { return n.reg }

// AddNode creates a node with a fresh Ed25519 key and registers it.
func (n *Network) AddNode(asn ASN) (*Node, error) {
	return n.addNode(asn, func() (sigs.Signer, error) { return sigs.GenerateEd25519() })
}

// AddNodeRSA creates a node with an RSA key of the given size (the paper's
// §3.8 cost discussion assumes RSA-1024).
func (n *Network) AddNodeRSA(asn ASN, bits int) (*Node, error) {
	return n.addNode(asn, func() (sigs.Signer, error) { return sigs.GenerateRSA(bits) })
}

func (n *Network) addNode(asn ASN, gen func() (sigs.Signer, error)) (*Node, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, dup := n.nodes[asn]; dup {
		return nil, errConfigf("add-node", "node %s already exists", asn)
	}
	s, err := gen()
	if err != nil {
		// Key-generation failures (an invalid RSA size, a broken entropy
		// source) surface through the documented error taxonomy instead of
		// leaking raw internal sigs errors.
		return nil, errKind(KindConfig, "add-node", err)
	}
	node := &Node{asn: asn, signer: s, net: n}
	n.nodes[asn] = node
	n.reg.Register(asn, s.Public())
	return node, nil
}

// Node returns a previously added node.
func (n *Network) Node(asn ASN) (*Node, bool) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	node, ok := n.nodes[asn]
	return node, ok
}

// Members lists the network's ASNs in ascending order.
func (n *Network) Members() []ASN {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make([]ASN, 0, len(n.nodes))
	for a := range n.nodes {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Node is one AS: an identity that can announce routes, make promises
// (prove), and verify neighbors' disclosures.
type Node struct {
	asn    ASN
	signer sigs.Signer
	net    *Network
}

// ASN returns the node's AS number.
func (nd *Node) ASN() ASN { return nd.asn }

// Announce signs an input route offered to a neighboring prover for an
// epoch (the route's first AS must be this node).
func (nd *Node) Announce(to ASN, epoch uint64, r Route) (Announcement, error) {
	return core.NewAnnouncement(nd.signer, nd.asn, to, epoch, r)
}

// NewProver creates a §3.3 prover for this node with bit-vector length
// maxLen (the maximum AS-path length, K in the paper).
func (nd *Node) NewProver(maxLen int) (*Prover, error) {
	return core.NewProver(nd.asn, nd.signer, nd.net.reg, maxLen)
}

// NewGraphProver creates a §3.5–3.7 prover over a route-flow graph and an
// access policy.
func (nd *Node) NewGraphProver(g *Graph, access *Access) *GraphProver {
	return core.NewGraphProver(nd.asn, nd.signer, g, access)
}

// SignExport signs an export statement for a route offered to the given
// promisee. Honest provers export through their Prover or Engine
// disclosures; this is for simulations that model Byzantine exports.
func (nd *Node) SignExport(to ASN, epoch uint64, r Route) (ExportStatement, error) {
	return core.NewExportStatement(nd.signer, nd.asn, to, epoch, r, false)
}

// NewGossipPool creates this node's equivocation-detection pool.
func (nd *Node) NewGossipPool() *GossipPool {
	return gossip.NewPool(nd.net.reg)
}

// NewEngine creates this node's sharded multi-prefix prover engine. The
// identity fields (ASN, Signer, Registry) are filled from the node; set
// MaxLen, Shards, and Workers in cfg or leave them zero for defaults.
func (nd *Node) NewEngine(cfg EngineConfig) (*Engine, error) {
	cfg.ASN = nd.asn
	cfg.Signer = nd.signer
	cfg.Registry = nd.net.reg
	return engine.New(cfg)
}
