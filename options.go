package pvr

import (
	"time"

	"pvr/internal/sigs"
)

// Signer is a private signing key (Ed25519 or RSA); see GenerateEd25519.
type Signer = sigs.Signer

// GenerateEd25519 generates a fresh Ed25519 signing key, the default
// scheme for Participant identities.
var GenerateEd25519 = sigs.GenerateEd25519

// Option configures a Participant at Open time. Options are applied in
// order; invalid values surface as ErrConfig from Open.
type Option func(*participantConfig) error

// participantConfig is the resolved option set.
type participantConfig struct {
	asn       ASN
	signer    Signer
	registry  *Registry
	transport Transport

	listen    string
	peers     []string
	hold      uint16
	originate []Prefix

	maxLen  int
	shards  int
	workers int

	window   time.Duration
	queue    int
	maxBatch int
	churn    int

	gossipListen   string
	gossipPeers    []string
	gossipInterval time.Duration
	ledgerPath     string

	discloseListen string
	promisees      []ASN

	storeDir     string
	storeBackend StoreBackend
	storeFault   *StoreFault
	storeCfg     StoreConfig

	zkBind  bool
	ringKey *RingKey
	ringDir *RingDirectory

	logf func(format string, args ...any)
}

func defaultConfig() *participantConfig {
	return &participantConfig{
		hold:           9,
		maxLen:         32,
		window:         250 * time.Millisecond,
		queue:          1024,
		gossipInterval: 2 * time.Second,
		logf:           func(string, ...any) {},
	}
}

// WithASN sets the participant's AS number. Required.
func WithASN(asn ASN) Option {
	return func(c *participantConfig) error {
		if asn == 0 {
			return errConfigf("option", "ASN must be nonzero")
		}
		c.asn = asn
		return nil
	}
}

// WithSigner supplies the participant's signing key; by default Open
// generates a fresh Ed25519 key.
func WithSigner(s Signer) Option {
	return func(c *participantConfig) error {
		if s == nil {
			return errConfigf("option", "Signer must be non-nil")
		}
		c.signer = s
		return nil
	}
}

// WithRegistry shares a verification-key registry (e.g. a Network's) with
// the participant instead of starting from an empty trust-on-first-use
// one. The participant registers its own key in it.
func WithRegistry(r *Registry) Option {
	return func(c *participantConfig) error {
		if r == nil {
			return errConfigf("option", "Registry must be non-nil")
		}
		c.registry = r
		return nil
	}
}

// WithTransport selects the byte transport for BGP sessions and audit
// gossip. Default: TCP().
func WithTransport(t Transport) Option {
	return func(c *participantConfig) error {
		if t == nil {
			return errConfigf("option", "Transport must be non-nil")
		}
		c.transport = t
		return nil
	}
}

// WithListen serves BGP sessions on addr: established peers receive every
// sealed route with its commitment chain attached, and re-advertisements
// as streaming windows re-seal.
func WithListen(addr string) Option {
	return func(c *participantConfig) error { c.listen = addr; return nil }
}

// WithPeers dials BGP sessions to the given addresses at Open: learned
// routes are verified against the peer's sealed commitments (key pinned
// trust-on-first-use when the registry does not already know the peer).
func WithPeers(addrs ...string) Option {
	return func(c *participantConfig) error {
		c.peers = append(c.peers, addrs...)
		return nil
	}
}

// WithHoldTime sets the BGP hold time in seconds (0 disables keepalives
// and hold timing). Default 9.
func WithHoldTime(seconds uint16) Option {
	return func(c *participantConfig) error { c.hold = seconds; return nil }
}

// WithOriginate declares the prefixes this participant originates: each is
// announced by the participant's synthetic upstream provider, committed by
// the engine, and sealed into the first epoch at Open.
func WithOriginate(prefixes ...Prefix) Option {
	return func(c *participantConfig) error {
		c.originate = append(c.originate, prefixes...)
		return nil
	}
}

// WithMaxLen sets the §3.3 bit-vector length (maximum AS-path length K).
// Default 32.
func WithMaxLen(n int) Option {
	return func(c *participantConfig) error {
		if n <= 0 {
			return errConfigf("option", "MaxLen must be positive, got %d", n)
		}
		c.maxLen = n
		return nil
	}
}

// WithShards sets the engine shard count (0 = one per CPU).
func WithShards(n int) Option {
	return func(c *participantConfig) error {
		if n < 0 {
			return errConfigf("option", "Shards must be non-negative, got %d", n)
		}
		c.shards = n
		return nil
	}
}

// WithWorkers sizes the update plane's dirty-prefix rebuild pool
// (0 = GOMAXPROCS).
func WithWorkers(n int) Option {
	return func(c *participantConfig) error {
		if n < 0 {
			return errConfigf("option", "Workers must be non-negative, got %d", n)
		}
		c.workers = n
		return nil
	}
}

// WithWindow sets the streaming commitment window: a window seals at most
// this long after its first event. Zero makes windows seal only on
// MaxBatch overflow or explicit Flush (the deterministic mode tests use).
// Default 250ms.
func WithWindow(d time.Duration) Option {
	return func(c *participantConfig) error {
		if d < 0 {
			return errConfigf("option", "Window must be non-negative, got %s", d)
		}
		c.window = d
		return nil
	}
}

// WithQueueSize bounds the update-plane ingest queue (default 1024).
func WithQueueSize(n int) Option {
	return func(c *participantConfig) error {
		if n < 0 {
			return errConfigf("option", "QueueSize must be non-negative, got %d", n)
		}
		c.queue = n
		return nil
	}
}

// WithMaxBatch forces a streaming window once this many events have
// accumulated (default 4096).
func WithMaxBatch(n int) Option {
	return func(c *participantConfig) error {
		if n < 0 {
			return errConfigf("option", "MaxBatch must be non-negative, got %d", n)
		}
		c.maxBatch = n
		return nil
	}
}

// WithChurn runs a synthetic churn feed of n trace events over the
// originated prefixes after Run starts — the demo workload cmd/pvrd
// exposes as -stream. Requires WithOriginate.
func WithChurn(events int) Option {
	return func(c *participantConfig) error {
		if events < 0 {
			return errConfigf("option", "Churn must be non-negative, got %d", events)
		}
		c.churn = events
		return nil
	}
}

// WithGossipListen serves audit anti-entropy exchanges on addr.
func WithGossipListen(addr string) Option {
	return func(c *participantConfig) error { c.gossipListen = addr; return nil }
}

// WithGossipPeers dials the given audit peers every gossip interval,
// reconciling statement stores and spreading equivocation evidence.
func WithGossipPeers(addrs ...string) Option {
	return func(c *participantConfig) error {
		c.gossipPeers = append(c.gossipPeers, addrs...)
		return nil
	}
}

// WithGossipInterval sets the anti-entropy round interval (default 2s).
func WithGossipInterval(d time.Duration) Option {
	return func(c *participantConfig) error {
		if d <= 0 {
			return errConfigf("option", "GossipInterval must be positive, got %s", d)
		}
		c.gossipInterval = d
		return nil
	}
}

// WithDiscloseListen serves the disclosure query plane on addr: remote
// providers, promisees, and auditors fetch on-demand (prefix, epoch)
// views with QueryDisclosure / RequestDisclosure, each answered with
// exactly the material the access policy α grants the requesting ASN —
// and a typed denial (ErrAccessDenied on the client) otherwise.
func WithDiscloseListen(addr string) Option {
	return func(c *participantConfig) error { c.discloseListen = addr; return nil }
}

// WithPromisees declares the promisee half of α: the ASNs this
// participant's routing promise is made to, and therefore the only
// requesters the disclosure query plane grants a full promisee view
// (opened vector, winning input, export statement). Providers are
// derived from the engine's accepted announcements; everyone else is a
// third party and gets only the sealed commitment.
func WithPromisees(asns ...ASN) Option {
	return func(c *participantConfig) error {
		for _, a := range asns {
			if a == 0 {
				return errConfigf("option", "promisee ASN must be nonzero")
			}
		}
		c.promisees = append(c.promisees, asns...)
		return nil
	}
}

// WithZKDisclosure makes the engine bind a Pedersen commitment vector
// into every shard-seal leaf, enabling zero-knowledge third-party
// openings: auditors query with RoleAuditor and receive a proof that the
// sealed promise holds — the bit vector is well-formed and monotone —
// without any bit being opened. Costs one Pedersen commitment per vector
// element at seal time.
func WithZKDisclosure() Option {
	return func(c *participantConfig) error { c.zkBind = true; return nil }
}

// WithRingKey supplies the participant's ring-signing identity (a
// dedicated RSA key, separate from the Ed25519 protocol key) and registers
// it in the ring directory. Required for issuing anonymous provider
// queries; see GenerateRingKey.
func WithRingKey(k *RingKey) Option {
	return func(c *participantConfig) error {
		if k == nil {
			return errConfigf("option", "RingKey must be non-nil")
		}
		c.ringKey = k
		return nil
	}
}

// WithRingDirectory shares a ring-key directory across participants (the
// ring-signature analogue of WithRegistry): servers resolve ring members'
// public keys from it when checking anonymous queries, and clients build
// rings from it when signing. Default: a private empty directory, which
// can be populated via Participant.RingDirectory.
func WithRingDirectory(d *RingDirectory) Option {
	return func(c *participantConfig) error {
		if d == nil {
			return errConfigf("option", "RingDirectory must be non-nil")
		}
		c.ringDir = d
		return nil
	}
}

// WithLedger persists confirmed equivocation evidence to the file at
// path; convictions survive restarts (the ledger is replayed and
// re-verified at Open).
func WithLedger(path string) Option {
	return func(c *participantConfig) error { c.ledgerPath = path; return nil }
}

// WithLogf directs the participant's operational log lines (session
// events, window summaries, verification results) to fn, e.g.
// log.Printf. Default: discard.
func WithLogf(fn func(format string, args ...any)) Option {
	return func(c *participantConfig) error {
		if fn == nil {
			return errConfigf("option", "Logf must be non-nil")
		}
		c.logf = fn
		return nil
	}
}
