package pvr_test

// Public-API-only integration test of the privacy plane: anonymous
// ring-signed provider queries and zero-knowledge auditor openings, end
// to end over the in-memory transport. Two providers share a ring; each
// fetches its own §3.3 bit without the prover learning which of them
// asked, and a third party verifies "the promise holds" against the
// sealed commitment with no bit opened.

import (
	"context"
	"errors"
	"net/netip"
	"testing"
	"time"

	"pvr"
)

func TestPrivacyPlaneAnonymousAndAuditorQueries(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	tr := pvr.NewMemTransport()
	reg := pvr.NewRegistry()
	rd := pvr.NewRingDirectory()
	pfx := pvr.MustParsePrefix("203.0.113.0/24")

	// A: the prover. It seals with ZK bindings and serves the query plane;
	// the shared ring directory is how it resolves ring members' keys.
	a, err := pvr.Open(ctx,
		pvr.WithASN(64500),
		pvr.WithTransport(tr),
		pvr.WithRegistry(reg),
		pvr.WithRingDirectory(rd),
		pvr.WithZKDisclosure(),
		pvr.WithOriginate(pfx),
		pvr.WithWindow(0),
		pvr.WithHoldTime(0),
		pvr.WithDiscloseListen("priv-a"),
		pvr.WithPromisees(64502),
		pvr.WithLogf(t.Logf),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	addr := a.DiscloseAddr()

	open := func(asn pvr.ASN, opts ...pvr.Option) *pvr.Participant {
		t.Helper()
		p, err := pvr.Open(ctx, append([]pvr.Option{
			pvr.WithASN(asn), pvr.WithTransport(tr), pvr.WithRegistry(reg),
			pvr.WithRingDirectory(rd), pvr.WithHoldTime(0), pvr.WithLogf(t.Logf),
		}, opts...)...)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	rk1, err := pvr.GenerateRingKey(64501)
	if err != nil {
		t.Fatal(err)
	}
	rk2, err := pvr.GenerateRingKey(64504)
	if err != nil {
		t.Fatal(err)
	}
	p1 := open(64501, pvr.WithRingKey(rk1))
	defer p1.Close()
	p2 := open(64504, pvr.WithRingKey(rk2))
	defer p2.Close()
	third := open(64503)
	defer third.Close()

	// Both providers offer A input routes of different lengths, so their
	// anonymous queries open different bits.
	announce := func(p *pvr.Participant, hops ...pvr.ASN) pvr.Announcement {
		t.Helper()
		ann, err := p.Announce(a.ASN(), 1, pvr.Route{
			Prefix:  pfx,
			Path:    pvr.NewPath(append([]pvr.ASN{p.ASN()}, hops...)...),
			NextHop: netip.MustParseAddr("192.0.2.7"),
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := a.Submit(ctx, pvr.AnnounceEvent(p.ASN(), ann)); err != nil {
			t.Fatal(err)
		}
		return ann
	}
	ann1 := announce(p1, 65010, 65011)
	ann2 := announce(p2, 65012)
	if _, err := a.Flush(ctx); err != nil {
		t.Fatal(err)
	}

	// Anonymous provider queries: each ring member is granted and verifies
	// its own bit; the ring is all A can learn about who asked.
	ring := []pvr.ASN{p1.ASN(), p2.ASN()}
	d1, err := p1.RequestAnonymousDisclosure(ctx, addr, pfx, 1, ring, &ann1)
	if err != nil {
		t.Fatalf("p1 anonymous query: %v", err)
	}
	if d1.Role != pvr.RoleProvider || d1.Provider == nil {
		t.Fatalf("p1 anonymous disclosure malformed: %+v", d1)
	}
	d2, err := p2.RequestAnonymousDisclosure(ctx, addr, pfx, 1, ring, &ann2)
	if err != nil {
		t.Fatalf("p2 anonymous query: %v", err)
	}
	if d2.Provider.Position == d1.Provider.Position {
		t.Fatal("distinct route lengths opened the same position")
	}

	// Without a ring key, anonymous mode is a config error before any
	// bytes leave the host.
	if _, err := third.RequestAnonymousDisclosure(ctx, addr, pfx, 1, ring, &ann1); !errors.Is(err, pvr.ErrConfig) {
		t.Fatalf("anonymous query without WithRingKey: %v, want ErrConfig", err)
	}

	// An outsider in the ring — even with a registered ring key — is
	// rejected by the server: rings must be subsets of the declared
	// providers. (third never announced a route for pfx.)
	rk3, err := pvr.GenerateRingKey(third.ASN())
	if err != nil {
		t.Fatal(err)
	}
	rd.Register(third.ASN(), rk3.Public())
	if _, err := p1.RequestAnonymousDisclosure(ctx, addr, pfx, 1,
		[]pvr.ASN{p1.ASN(), third.ASN()}, &ann1); !errors.Is(err, pvr.ErrAccessDenied) {
		t.Fatalf("ring with an outsider: %v, want ErrAccessDenied", err)
	}

	// Zero-knowledge auditor opening: the third party (no entitlement at
	// all) verifies that A's sealed promise holds, with no bit opened.
	ad, err := third.RequestAuditProof(ctx, addr, pfx, 1)
	if err != nil {
		t.Fatalf("auditor query: %v", err)
	}
	if ad.Role != pvr.RoleAuditor || ad.Vector == nil || ad.Vector.Proof == nil {
		t.Fatalf("auditor disclosure malformed: %+v", ad)
	}
	if ad.Provider != nil || ad.Promisee != nil {
		t.Fatal("auditor disclosure carries opened material")
	}

	// A prover that does not seal with WithZKDisclosure has no vector to
	// open: the auditor query is a typed not-found.
	plain, err := pvr.Open(ctx,
		pvr.WithASN(64510), pvr.WithTransport(tr), pvr.WithRegistry(reg),
		pvr.WithOriginate(pfx), pvr.WithWindow(0), pvr.WithHoldTime(0),
		pvr.WithDiscloseListen("priv-plain"), pvr.WithLogf(t.Logf),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	if _, err := third.RequestAuditProof(ctx, plain.DiscloseAddr(), pfx, 1); !errors.Is(err, pvr.ErrNotFound) {
		t.Fatalf("auditor query against a non-ZK prover: %v, want ErrNotFound", err)
	}
}
