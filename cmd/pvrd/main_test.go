package main

import (
	"bytes"
	"context"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"pvr"
)

// TestSIGTERMCheckpointsStore runs the real daemon binary with -store,
// stops it with SIGTERM, and asserts the graceful-shutdown contract: the
// store is checkpointed on the way down, so reopening it replays zero
// WAL records and resumes the sealed window sequence.
func TestSIGTERMCheckpointsStore(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the daemon binary")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "pvrd")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("build pvrd: %v\n%s", err, out)
	}

	storeDir := filepath.Join(dir, "state")
	var stderr bytes.Buffer
	cmd := exec.Command(bin,
		"-listen", "127.0.0.1:0",
		"-asn", "64500",
		"-originate", "203.0.113.0/24,198.51.100.0/24",
		"-shards", "2",
		"-hold", "0",
		"-store", storeDir,
	)
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// The daemon logs "up as ..." once Open (and the initial epoch seal,
	// already write-ahead logged to the store) has finished.
	deadline := time.Now().Add(15 * time.Second)
	for !strings.Contains(stderr.String(), "up as") {
		if time.Now().After(deadline) {
			t.Fatalf("daemon never came up; log:\n%s", stderr.String())
		}
		time.Sleep(20 * time.Millisecond)
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("daemon exited uncleanly on SIGTERM: %v\nlog:\n%s", err, stderr.String())
	}
	if !strings.Contains(stderr.String(), "shut down") {
		t.Fatalf("no shutdown summary logged:\n%s", stderr.String())
	}

	// Reopen the daemon's store through the library: a clean stop must
	// have checkpointed, leaving nothing to replay.
	p, err := pvr.Open(context.Background(),
		pvr.WithASN(64500),
		pvr.WithStore(storeDir),
		pvr.WithOriginate(pvr.MustParsePrefix("203.0.113.0/24"), pvr.MustParsePrefix("198.51.100.0/24")),
		pvr.WithShards(2),
		pvr.WithHoldTime(0),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	st := p.Stats().Store
	if !st.Enabled || st.RecoveredEpoch != 1 {
		t.Fatalf("recovered epoch = %d, want 1", st.RecoveredEpoch)
	}
	if st.RecoveredRecords != 0 {
		t.Fatalf("SIGTERM stop left %d WAL records to replay, want 0 (checkpoint missing)", st.RecoveredRecords)
	}
	if got := p.Stats().Window; got != st.RecoveredWindow+1 {
		t.Fatalf("resumed window = %d, want %d (recovered %d + 1)", got, st.RecoveredWindow+1, st.RecoveredWindow)
	}
}
