// Command pvrd is a small BGP speaker daemon demonstrating the substrate
// over real TCP: it runs the session FSM (OPEN exchange, keepalives, hold
// timer) and exchanges UPDATE messages whose attachments carry PVR
// signatures.
//
// Listener:
//
//	pvrd -listen 127.0.0.1:1790 -asn 64500 -originate 203.0.113.0/24
//
// Dialer:
//
//	pvrd -connect 127.0.0.1:1790 -asn 64501
//
// The dialer prints every route it learns, verifying the announcement
// signature attached by the listener. Stop with Ctrl-C.
package main

import (
	"flag"
	"fmt"
	"net/netip"
	"os"
	"os/signal"
	"time"

	"pvr/internal/aspath"
	"pvr/internal/bgp"
	"pvr/internal/netx"
	"pvr/internal/prefix"
	"pvr/internal/route"
	"pvr/internal/sigs"
)

func main() {
	listen := flag.String("listen", "", "listen address (server mode)")
	connect := flag.String("connect", "", "peer address (client mode)")
	asn := flag.Uint("asn", 64500, "local AS number")
	originate := flag.String("originate", "", "prefix to originate (server mode)")
	hold := flag.Uint("hold", 9, "hold time seconds (0 disables)")
	flag.Parse()

	if (*listen == "") == (*connect == "") {
		fmt.Fprintln(os.Stderr, "exactly one of -listen or -connect is required")
		os.Exit(2)
	}
	local := bgp.Open{ASN: aspath.ASN(*asn), HoldTime: uint16(*hold), RouterID: uint32(*asn)}
	signer, err := sigs.GenerateEd25519()
	if err != nil {
		fatal(err)
	}
	reg := sigs.NewRegistry()
	reg.Register(local.ASN, signer.Public())

	if *listen != "" {
		serve(*listen, local, signer, *originate)
		return
	}
	dial(*connect, local)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pvrd:", err)
	os.Exit(1)
}

func serve(addr string, local bgp.Open, signer sigs.Signer, originate string) {
	var origin route.Route
	haveOrigin := false
	if originate != "" {
		p, err := prefix.Parse(originate)
		if err != nil {
			fatal(err)
		}
		path, err := aspath.Path{}.Prepend(local.ASN, 1)
		if err != nil {
			fatal(err)
		}
		origin = route.Route{
			Prefix:  p,
			Path:    path,
			NextHop: mustAddr("192.0.2.1"),
			Origin:  route.OriginIGP,
		}
		haveOrigin = true
	}
	bound, closer, err := netx.Listen(addr, func(c *netx.Conn) {
		fmt.Printf("pvrd: connection from %s\n", c.RemoteAddr())
		s := bgp.NewSession(c, local, bgp.SessionHooks{
			OnEstablished: func(peer bgp.Open) {
				fmt.Printf("pvrd: established with %s\n", peer.ASN)
			},
			OnClose: func(err error) {
				fmt.Printf("pvrd: session closed: %v\n", err)
			},
		})
		go func() {
			// Once established, push the originated route with a PVR
			// signature attachment.
			for s.State() != bgp.StateEstablished {
				if s.State() == bgp.StateClosed {
					return
				}
				time.Sleep(10 * time.Millisecond)
			}
			if !haveOrigin {
				return
			}
			body, err := origin.MarshalBinary()
			if err != nil {
				return
			}
			sig, err := signer.Sign(body)
			if err != nil {
				return
			}
			u := bgp.Update{
				Announced:   []route.Route{origin},
				Attachments: map[string][]byte{"pvr/sig": sig},
			}
			if err := s.SendUpdate(u); err != nil {
				fmt.Printf("pvrd: send: %v\n", err)
			}
		}()
		_ = s.Run()
	})
	if err != nil {
		fatal(err)
	}
	defer closer.Close()
	fmt.Printf("pvrd: listening on %s as %s\n", bound, local.ASN)
	waitInterrupt()
}

func dial(addr string, local bgp.Open) {
	conn, err := netx.Dial(addr, 5*time.Second)
	if err != nil {
		fatal(err)
	}
	s := bgp.NewSession(conn, local, bgp.SessionHooks{
		OnEstablished: func(peer bgp.Open) {
			fmt.Printf("pvrd: established with %s (hold %ds)\n", peer.ASN, peer.HoldTime)
		},
		OnUpdate: func(u bgp.Update) {
			for _, r := range u.Announced {
				sig := u.Attachments["pvr/sig"]
				fmt.Printf("pvrd: learned %s (pvr signature: %d bytes)\n", r, len(sig))
			}
			for _, w := range u.Withdrawn {
				fmt.Printf("pvrd: withdrawn %s\n", w)
			}
		},
		OnClose: func(err error) {
			fmt.Printf("pvrd: session closed: %v\n", err)
			os.Exit(0)
		},
	})
	go func() { _ = s.Run() }()
	waitInterrupt()
	s.Close()
}

func waitInterrupt() {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt)
	<-ch
	fmt.Println("pvrd: shutting down")
}

func mustAddr(s string) netip.Addr {
	return netip.MustParseAddr(s)
}
