// Command pvrd is the PVR daemon: one pvr.Participant per process,
// configured from flags. It proves over the prefixes it originates
// (sealing per-prefix commitments into Merkle-batched shard seals),
// serves them to BGP peers with the commitment chain attached, verifies
// what peers advertise (pinning unknown keys trust-on-first-use), joins
// the audit gossip network, and persists equivocation evidence.
//
// Listener:
//
//	pvrd -listen 127.0.0.1:1790 -asn 64500 -originate 203.0.113.0/24,198.51.100.0/24 -shards 4
//
// Dialer:
//
//	pvrd -connect 127.0.0.1:1790 -asn 64501
//
// With -stream N the listener additionally runs N synthetic churn events
// through the streaming update plane: each -window only the dirty shards
// re-seal and the changed prefixes re-advertise to every live session.
// -gossip-listen / -gossip-peers / -gossip-every / -ledger join the audit
// network; routes from a convicted origin are rejected.
//
// pvrd shuts down cleanly on SIGINT/SIGTERM: sessions close with CEASE,
// the update plane seals its final window, and the ledger is flushed.
// The heavy lifting all lives in pvr.Participant — this file only maps
// flags onto functional options.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"pvr"
)

func main() {
	listen := flag.String("listen", "", "serve BGP sessions on this address")
	connect := flag.String("connect", "", "comma-separated BGP peers to dial")
	asn := flag.Uint("asn", 64500, "local AS number")
	originate := flag.String("originate", "", "comma-separated prefixes to originate")
	shards := flag.Int("shards", 0, "engine shard count (0 = one per CPU)")
	hold := flag.Uint("hold", 9, "hold time seconds (0 disables)")
	stream := flag.Int("stream", 0, "run the update plane over this many synthetic churn events (0 = off)")
	window := flag.Duration("window", 250*time.Millisecond, "update-plane commitment window")
	queue := flag.Int("queue", 1024, "update-plane ingest queue bound")
	gossipListen := flag.String("gossip-listen", "", "serve audit anti-entropy exchanges on this address")
	gossipPeers := flag.String("gossip-peers", "", "comma-separated audit peers to reconcile with periodically")
	gossipEvery := flag.Duration("gossip-every", 2*time.Second, "anti-entropy round interval")
	ledger := flag.String("ledger", "", "persistent evidence ledger file (audit convictions survive restarts)")
	flag.Parse()

	if *listen == "" && *connect == "" && *gossipListen == "" {
		fmt.Fprintln(os.Stderr, "at least one of -listen, -connect, or -gossip-listen is required")
		os.Exit(2)
	}
	log.SetFlags(0)
	log.SetPrefix("pvrd: ")

	opts := []pvr.Option{
		pvr.WithASN(pvr.ASN(*asn)),
		pvr.WithTransport(pvr.TCP()),
		pvr.WithShards(*shards),
		pvr.WithHoldTime(uint16(*hold)),
		pvr.WithWindow(*window),
		pvr.WithQueueSize(*queue),
		pvr.WithChurn(*stream),
		pvr.WithGossipInterval(*gossipEvery),
		pvr.WithLogf(log.Printf),
	}
	if *listen != "" {
		opts = append(opts, pvr.WithListen(*listen))
	}
	if peers := splitList(*connect); len(peers) > 0 {
		opts = append(opts, pvr.WithPeers(peers...))
	}
	for _, s := range splitList(*originate) {
		p, err := pvr.ParsePrefix(s)
		if err != nil {
			fatal(err)
		}
		opts = append(opts, pvr.WithOriginate(p))
	}
	if *gossipListen != "" {
		opts = append(opts, pvr.WithGossipListen(*gossipListen))
	}
	if peers := splitList(*gossipPeers); len(peers) > 0 {
		opts = append(opts, pvr.WithGossipPeers(peers...))
	}
	if *ledger != "" {
		opts = append(opts, pvr.WithLedger(*ledger))
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	p, err := pvr.Open(ctx, opts...)
	if err != nil {
		fatal(err)
	}
	log.Printf("up as %s (%d prefixes, %d shards)", p.ASN(), p.Stats().Prefixes, p.Stats().Shards)
	if *connect != "" && *listen == "" {
		// Classic dial mode exits when its last BGP session ends, not
		// only on SIGINT; watch the session gauge and cancel.
		go func() {
			for ctx.Err() == nil {
				// The cumulative counter cannot miss a session that opens
				// and dies between polls.
				if st := p.Stats(); st.SessionsOpened > 0 && st.Sessions == 0 {
					log.Printf("all sessions closed, exiting")
					stop()
					return
				}
				time.Sleep(100 * time.Millisecond)
			}
		}()
	}
	if err := p.Run(ctx); err != nil {
		fatal(err)
	}
	st := p.Stats()
	log.Printf("shut down: window %d, %d prefixes sealed, %d routes verified, %d rejected, %d audit records, %d convictions",
		st.Window, st.Prefixes, st.RoutesVerified, st.RoutesRejected, st.AuditRecords, st.Convictions)
	log.Printf("update plane: %d events, %d windows, %d shards rebuilt, %d reused, seal p50 %s p99 %s",
		st.Plane.EventsIn, st.Plane.Windows, st.Plane.RebuiltShards, st.Plane.ReusedShards,
		st.Plane.SealP50.Round(time.Microsecond), st.Plane.SealP99.Round(time.Microsecond))
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pvrd:", err)
	os.Exit(1)
}
