// Command pvrd is a small BGP speaker daemon demonstrating the substrate
// over real TCP: it runs the session FSM (OPEN exchange, keepalives, hold
// timer) and exchanges UPDATE messages whose attachments carry PVR engine
// state — per-prefix commitments sealed into Merkle-batched shard roots —
// instead of one signature per route.
//
// The listener owns a sharded ProverEngine: it ingests signed announcements
// for every originated prefix (from a synthetic upstream provider standing
// in for its provider sessions), seals the epoch, and serves each route
// with its sealed commitment (commitment bytes, inclusion proof, shard
// seal, and the speaker's public key) attached.
//
// Listener:
//
//	pvrd -listen 127.0.0.1:1790 -asn 64500 -originate 203.0.113.0/24,198.51.100.0/24 -shards 4
//
// Dialer:
//
//	pvrd -connect 127.0.0.1:1790 -asn 64501
//
// The dialer pins the listener's key trust-on-first-use (standing in for
// the paper's out-of-band PKI), then verifies every learned route: the
// route body's own signature, the shard-seal signature, the prefix→shard
// binding, and Merkle inclusion of the commitment under the sealed root.
//
// With -stream N the listener additionally runs the streaming update
// plane (internal/updplane): N synthetic churn events flow through the
// upstream feed, each -window the plane re-seals only the dirty shards,
// and changed routes are re-advertised to every live session with the
// fresh window seals attached (-queue bounds the ingest queue).
//
// Both modes can additionally join the audit network (internal/auditnet):
// -gossip-listen serves anti-entropy exchanges, -gossip-peers dials the
// given peers every -gossip-every, and -ledger persists confirmed
// equivocation evidence across restarts. The listener seeds its auditor
// with its own shard seals (streaming windows included); the dialer
// audits what it learns, and routes from a convicted peer are rejected.
//
// pvrd shuts down cleanly on SIGINT/SIGTERM: the accept loop is
// cancelled, open BGP sessions are closed with CEASE, the gossip
// exchanger stops, and the evidence ledger is flushed and closed before
// exit.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"net/netip"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"pvr/internal/aspath"
	"pvr/internal/auditnet"
	"pvr/internal/bgp"
	"pvr/internal/core"
	"pvr/internal/engine"
	"pvr/internal/merkle"
	"pvr/internal/netx"
	"pvr/internal/prefix"
	"pvr/internal/route"
	"pvr/internal/sigs"
	"pvr/internal/trace"
	"pvr/internal/updplane"
)

// gossipOpts carries the audit-network flags shared by both modes.
type gossipOpts struct {
	listen string
	peers  []string
	every  time.Duration
	ledger string
}

// streamOpts carries the update-plane flags (listener mode).
type streamOpts struct {
	events int
	window time.Duration
	queue  int
}

func main() {
	listen := flag.String("listen", "", "listen address (server mode)")
	connect := flag.String("connect", "", "peer address (client mode)")
	asn := flag.Uint("asn", 64500, "local AS number")
	originate := flag.String("originate", "", "comma-separated prefixes to originate (server mode)")
	shards := flag.Int("shards", 0, "engine shard count (0 = one per CPU)")
	hold := flag.Uint("hold", 9, "hold time seconds (0 disables)")
	streamN := flag.Int("stream", 0, "run the update plane over this many synthetic churn events (server mode, 0 = off)")
	window := flag.Duration("window", 250*time.Millisecond, "update-plane commitment window")
	queue := flag.Int("queue", 1024, "update-plane ingest queue bound")
	gossipListen := flag.String("gossip-listen", "", "serve audit anti-entropy exchanges on this address")
	gossipPeers := flag.String("gossip-peers", "", "comma-separated audit peers to reconcile with periodically")
	gossipEvery := flag.Duration("gossip-every", 2*time.Second, "anti-entropy round interval")
	ledgerPath := flag.String("ledger", "", "persistent evidence ledger file (audit convictions survive restarts)")
	flag.Parse()

	if (*listen == "") == (*connect == "") {
		fmt.Fprintln(os.Stderr, "exactly one of -listen or -connect is required")
		os.Exit(2)
	}
	local := bgp.Open{ASN: aspath.ASN(*asn), HoldTime: uint16(*hold), RouterID: uint32(*asn)}
	g := gossipOpts{listen: *gossipListen, every: *gossipEvery, ledger: *ledgerPath}
	for _, p := range strings.Split(*gossipPeers, ",") {
		if p = strings.TrimSpace(p); p != "" {
			g.peers = append(g.peers, p)
		}
	}
	st := streamOpts{events: *streamN, window: *window, queue: *queue}

	// shutdown is closed on SIGINT/SIGTERM; every long-lived component
	// registers a closer and main runs them, newest first, before exit.
	shutdown := make(chan struct{})
	go func() {
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
		<-ch
		fmt.Println("pvrd: shutting down")
		close(shutdown)
	}()

	if *listen != "" {
		serve(*listen, local, *originate, *shards, g, st, shutdown)
		return
	}
	dial(*connect, local, g, shutdown)
}

// closers runs registered cleanup functions newest-first on shutdown.
type closers struct {
	mu  sync.Mutex
	fns []func()
}

func (c *closers) add(fn func()) {
	c.mu.Lock()
	c.fns = append(c.fns, fn)
	c.mu.Unlock()
}

func (c *closers) run() {
	c.mu.Lock()
	fns := c.fns
	c.fns = nil
	c.mu.Unlock()
	for i := len(fns) - 1; i >= 0; i-- {
		fns[i]()
	}
}

// sessionSet tracks live BGP sessions so shutdown (and the update plane)
// can reach them.
type sessionSet struct {
	mu       sync.Mutex
	sessions map[*bgp.Session]bool
}

func newSessionSet() *sessionSet {
	return &sessionSet{sessions: make(map[*bgp.Session]bool)}
}

func (ss *sessionSet) add(s *bgp.Session)    { ss.mu.Lock(); ss.sessions[s] = true; ss.mu.Unlock() }
func (ss *sessionSet) remove(s *bgp.Session) { ss.mu.Lock(); delete(ss.sessions, s); ss.mu.Unlock() }

func (ss *sessionSet) each(fn func(*bgp.Session)) {
	ss.mu.Lock()
	open := make([]*bgp.Session, 0, len(ss.sessions))
	for s := range ss.sessions {
		open = append(open, s)
	}
	ss.mu.Unlock()
	for _, s := range open {
		fn(s)
	}
}

// newAuditor stands up the local audit node over the daemon's registry,
// replaying the evidence ledger when one is configured. The returned
// ledger (nil when not configured) must be closed on shutdown so the
// final fsync'd state is flushed before exit.
func newAuditor(local aspath.ASN, reg *sigs.Registry, g gossipOpts) (*auditnet.Auditor, *auditnet.Ledger, error) {
	cfg := auditnet.Config{ASN: local, Registry: reg}
	var led *auditnet.Ledger
	if g.ledger != "" {
		l, recs, err := auditnet.OpenLedger(g.ledger)
		if err != nil {
			return nil, nil, err
		}
		led = l
		cfg.Ledger, cfg.Replay = l, recs
		if len(recs) > 0 {
			fmt.Printf("pvrd: replayed %d evidence records from %s\n", len(recs), g.ledger)
		}
	}
	a, err := auditnet.New(cfg)
	if err != nil {
		if led != nil {
			led.Close()
		}
		return nil, nil, err
	}
	for _, c := range a.Convictions() {
		fmt.Printf("pvrd: audit: %s stands convicted (%s)\n", c.ASN, c.Detail)
	}
	return a, led, nil
}

// startGossip wires the auditor into the network: a listener answering
// anti-entropy exchanges and a ticker reconciling with each peer. The
// registered closers stop both.
func startGossip(a *auditnet.Auditor, g gossipOpts, cl *closers) error {
	if g.listen != "" {
		bound, closer, err := netx.Listen(g.listen, func(c *netx.Conn) {
			defer c.Close()
			for {
				if _, err := a.Respond(c); err != nil {
					return // peer hung up or protocol error; drop the conn
				}
			}
		})
		if err != nil {
			return err
		}
		cl.add(func() { closer.Close() })
		fmt.Printf("pvrd: audit gossip listening on %s\n", bound)
	}
	if len(g.peers) > 0 {
		stop := make(chan struct{})
		done := make(chan struct{})
		cl.add(func() { close(stop); <-done })
		go func() {
			defer close(done)
			tick := time.NewTicker(g.every)
			defer tick.Stop()
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
				}
				for _, peer := range g.peers {
					st, err := reconcileOnce(a, peer)
					if err != nil {
						fmt.Printf("pvrd: audit %s: %v\n", peer, err)
						continue
					}
					if st.NewStatements > 0 || st.NewConflicts > 0 {
						fmt.Printf("pvrd: audit %s: +%d statements, +%d convictions (%d B)\n",
							peer, st.NewStatements, st.NewConflicts, st.Bytes())
					}
				}
			}
		}()
	}
	return nil
}

func reconcileOnce(a *auditnet.Auditor, peer string) (*auditnet.Stats, error) {
	conn, err := netx.Dial(peer, 3*time.Second)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	return a.Reconcile(conn)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pvrd:", err)
	os.Exit(1)
}

// engineState is the listener's prover state: the engine itself plus the
// synthetic upstream provider that stands in for provider sessions.
type engineState struct {
	reg      *sigs.Registry
	signer   sigs.Signer
	key      []byte // marshaled public key, attached to updates
	eng      *engine.ProverEngine
	upstream aspath.ASN
	upSigner sigs.Signer
	pfxs     []prefix.Prefix
}

// buildEngineState stands up the PKI and engine and ingests one
// announcement per originated prefix from the synthetic upstream
// provider, sealing the initial epoch.
func buildEngineState(local bgp.Open, originate string, shards int) (*engineState, error) {
	signer, err := sigs.GenerateEd25519()
	if err != nil {
		return nil, err
	}
	upstream := aspath.ASN(uint32(local.ASN) + 1000)
	upSigner, err := sigs.GenerateEd25519()
	if err != nil {
		return nil, err
	}
	reg := sigs.NewRegistry()
	reg.Register(local.ASN, signer.Public())
	reg.Register(upstream, upSigner.Public())

	eng, err := engine.New(engine.Config{
		ASN: local.ASN, Signer: signer, Registry: reg, Shards: shards,
	})
	if err != nil {
		return nil, err
	}
	eng.BeginEpoch(1)

	st := &engineState{
		reg: reg, signer: signer, eng: eng,
		upstream: upstream, upSigner: upSigner,
	}
	if st.key, err = signer.Public().Marshal(); err != nil {
		return nil, err
	}
	for _, s := range strings.Split(originate, ",") {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		p, err := prefix.Parse(s)
		if err != nil {
			return nil, err
		}
		st.pfxs = append(st.pfxs, p)
	}
	for _, p := range st.pfxs {
		ann, err := st.upstreamAnnouncement(p, 1)
		if err != nil {
			return nil, err
		}
		if _, err := eng.AcceptAnnouncement(ann); err != nil {
			return nil, err
		}
	}
	if len(st.pfxs) > 0 {
		if _, err = eng.SealEpoch(); err != nil {
			return nil, err
		}
	}
	return st, nil
}

// upstreamAnnouncement synthesizes the upstream provider's signed route
// for a prefix with the given AS-path length.
func (st *engineState) upstreamAnnouncement(p prefix.Prefix, pathLen int) (core.Announcement, error) {
	asns := make([]aspath.ASN, pathLen)
	asns[0] = st.upstream
	for i := 1; i < pathLen; i++ {
		asns[i] = aspath.ASN(65000 + i)
	}
	r := route.Route{
		Prefix:  p,
		Path:    aspath.New(asns...),
		NextHop: netip.MustParseAddr("192.0.2.1"),
	}
	return core.NewAnnouncement(st.upSigner, st.upstream, st.eng.ASN(), 1, r)
}

// updateFor builds the UPDATE advertising one prefix with its current
// commitment chain attached; ok is false when the prefix is no longer in
// the sealed table (callers withdraw instead).
func (st *engineState) updateFor(p prefix.Prefix) (bgp.Update, bool, error) {
	sc, err := st.eng.Commitment(p)
	if err != nil {
		return bgp.Update{}, false, nil // withdrawn (or not yet re-sealed)
	}
	mcBytes, err := sc.MC.SignedBytes()
	if err != nil {
		return bgp.Update{}, false, err
	}
	proofBytes, err := sc.Proof.MarshalBinary()
	if err != nil {
		return bgp.Update{}, false, err
	}
	sealBytes, err := sc.Seal.MarshalBinary()
	if err != nil {
		return bgp.Update{}, false, err
	}
	pv, err := st.eng.DiscloseToPromisee(p, 0) // exported route for any promisee
	if err != nil {
		return bgp.Update{}, false, err
	}
	// The route body itself is signed per-route (§3.2 announcement
	// signing): the sealed commitment authenticates the promise state,
	// not the path and next hop the update carries.
	body, err := pv.Export.Route.MarshalBinary()
	if err != nil {
		return bgp.Update{}, false, err
	}
	routeSig, err := st.signer.Sign(body)
	if err != nil {
		return bgp.Update{}, false, err
	}
	return bgp.Update{
		Announced: []route.Route{pv.Export.Route},
		Attachments: map[string][]byte{
			"pvr/sig":   routeSig,
			"pvr/mc":    mcBytes,
			"pvr/proof": proofBytes,
			"pvr/seal":  sealBytes,
			"pvr/key":   st.key,
		},
	}, true, nil
}

func serve(addr string, local bgp.Open, originate string, shards int, g gossipOpts, so streamOpts, shutdown <-chan struct{}) {
	var cl closers
	st, err := buildEngineState(local, originate, shards)
	if err != nil {
		fatal(err)
	}
	seals := st.eng.Seals()
	fmt.Printf("pvrd: engine sealed %d prefixes into %d shard seals\n", len(st.pfxs), len(seals))

	// Join the audit network: seed the auditor with our own shard seals so
	// peers can cross-check what we told other neighbors.
	auditor, ledger, err := newAuditor(local.ASN, st.reg, g)
	if err != nil {
		fatal(err)
	}
	if ledger != nil {
		cl.add(func() {
			if err := ledger.Close(); err != nil {
				fmt.Printf("pvrd: ledger close: %v\n", err)
			} else {
				fmt.Printf("pvrd: evidence ledger %s flushed\n", ledger.Path())
			}
		})
	}
	for _, s := range seals {
		if _, _, err := auditor.AddRecord(auditnet.Record{Epoch: s.Epoch, S: s.Statement()}); err != nil {
			fatal(err)
		}
	}
	if err := startGossip(auditor, g, &cl); err != nil {
		fatal(err)
	}

	sessions := newSessionSet()
	cl.add(func() {
		sessions.each(func(s *bgp.Session) { s.Close() })
	})

	bound, closer, err := netx.Listen(addr, func(c *netx.Conn) {
		fmt.Printf("pvrd: connection from %s\n", c.RemoteAddr())
		s := bgp.NewSession(c, local, bgp.SessionHooks{
			OnEstablished: func(peer bgp.Open) {
				fmt.Printf("pvrd: established with %s\n", peer.ASN)
			},
			OnClose: func(err error) {
				fmt.Printf("pvrd: session closed: %v\n", err)
			},
		})
		sessions.add(s)
		defer sessions.remove(s)
		go func() {
			// Once established, serve the sealed engine state: one update
			// per prefix, each carrying its commitment chain.
			for s.State() != bgp.StateEstablished {
				if s.State() == bgp.StateClosed {
					return
				}
				time.Sleep(10 * time.Millisecond)
			}
			for _, p := range st.pfxs {
				// Under streaming, a shard is transiently unsealed between
				// a mutation and the window's SealDirty; retry across a few
				// window intervals before concluding the prefix is gone.
				var u bgp.Update
				ok := false
				for attempt := 0; attempt < 30 && s.State() == bgp.StateEstablished; attempt++ {
					var err error
					u, ok, err = st.updateFor(p)
					if err != nil {
						fmt.Printf("pvrd: advertise %s: %v\n", p, err)
						break
					}
					if ok {
						break
					}
					time.Sleep(50 * time.Millisecond)
				}
				if !ok {
					continue // withdrawn from the table
				}
				if err := s.SendUpdate(u); err != nil {
					fmt.Printf("pvrd: send: %v\n", err)
					return
				}
			}
		}()
		_ = s.Run()
	})
	if err != nil {
		fatal(err)
	}
	cl.add(func() { closer.Close() })
	fmt.Printf("pvrd: listening on %s as %s\n", bound, local.ASN)

	if so.events > 0 {
		if err := startStream(st, auditor, sessions, so, &cl); err != nil {
			fatal(err)
		}
	}

	<-shutdown
	cl.run()
}

// startStream runs the update plane over synthetic churn: trace events
// become upstream announce/withdraw feed items, each window re-seals the
// dirty shards, publishes the fresh seals to the auditor, and
// re-advertises the changed prefixes to every live session.
//
// Demo-scale caveat: the daemon stays in epoch 1, so with gossip enabled
// every window adds ShardCount statements to each audit node's store —
// a long-running stream grows audit state linearly until the operator
// advances the epoch (restarts). Epoch rollover is the daemon's missing
// production feature, not the plane's.
func startStream(st *engineState, auditor *auditnet.Auditor, sessions *sessionSet, so streamOpts, cl *closers) error {
	if len(st.pfxs) == 0 {
		return fmt.Errorf("stream mode needs -originate prefixes")
	}
	// Re-advertisement runs on its own goroutine so a stalled peer's TCP
	// buffer can never wedge the plane loop (and with it the feeder and
	// shutdown); a full channel drops the window's batch with a log line —
	// the affected prefixes re-advertise on their next change.
	type windowBatch struct {
		window  uint64
		updates []bgp.Update
	}
	advertise := make(chan windowBatch, 4)
	senderDone := make(chan struct{})
	go func() {
		defer close(senderDone)
		for b := range advertise {
			for _, u := range b.updates {
				sessions.each(func(s *bgp.Session) {
					if s.State() == bgp.StateEstablished {
						_ = s.SendUpdate(u)
					}
				})
			}
		}
	}()
	plane, err := updplane.New(updplane.Config{
		Engine:    st.eng,
		Window:    so.window,
		QueueSize: so.queue,
		OnWindow: func(w updplane.WindowResult) {
			for _, s := range w.Seals {
				if _, _, err := auditor.AddRecord(auditnet.Record{Epoch: s.Epoch, S: s.Statement()}); err != nil {
					fmt.Printf("pvrd: window %d audit: %v\n", w.Window, err)
				}
			}
			var sent, withdrawn int
			batch := windowBatch{window: w.Window}
			for _, p := range w.Prefixes {
				u, ok, err := st.updateFor(p)
				if err != nil {
					fmt.Printf("pvrd: window %d %s: %v\n", w.Window, p, err)
					continue
				}
				if !ok {
					u = bgp.Update{Withdrawn: []prefix.Prefix{p}}
					withdrawn++
				} else {
					sent++
				}
				batch.updates = append(batch.updates, u)
			}
			select {
			case advertise <- batch:
			default:
				fmt.Printf("pvrd: window %d: peers slow, dropped re-advertisement of %d updates\n",
					w.Window, len(batch.updates))
			}
			fmt.Printf("pvrd: window %d: %d events, %d dirty prefixes, rebuilt %d/%d shards, re-advertised %d, withdrew %d (seal %s)\n",
				w.Window, w.Events, w.DirtyPrefixes, len(w.Rebuilt), w.TotalShards, sent, withdrawn,
				w.SealLatency.Round(time.Microsecond))
		},
	})
	if err != nil {
		close(advertise)
		return err
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	cl.add(func() {
		close(stop)
		<-done
		if err := plane.Close(); err != nil {
			fmt.Printf("pvrd: update plane: %v\n", err)
		}
		// Let the sender drain what it can; don't wait on it — a stalled
		// peer unblocks when the session closer (which runs after this
		// one) tears the connections down.
		close(advertise)
		select {
		case <-senderDone:
		case <-time.After(200 * time.Millisecond):
		}
		stats := plane.Stats()
		fmt.Printf("pvrd: update plane: %d events, %d windows, %d shards rebuilt, %d reused, seal p50 %s p99 %s\n",
			stats.EventsIn, stats.Windows, stats.RebuiltShards, stats.ReusedShards,
			stats.SealP50.Round(time.Microsecond), stats.SealP99.Round(time.Microsecond))
	})
	go func() {
		defer close(done)
		events, err := trace.Generate(trace.Config{
			Prefixes: len(st.pfxs), Events: so.events,
			MeanGap: so.window / 4, BurstLen: 4, WithdrawRatio: 0.2, Seed: 1,
		})
		if err != nil {
			fmt.Printf("pvrd: stream: %v\n", err)
			return
		}
		// Map the generator's universe back onto the originated prefixes.
		uni := trace.Universe(len(st.pfxs))
		idx := make(map[prefix.Prefix]int, len(uni))
		for i, p := range uni {
			idx[p] = i
		}
		rng := rand.New(rand.NewSource(1))
		fmt.Printf("pvrd: streaming %d churn events over %d prefixes (window %s)\n",
			len(events), len(st.pfxs), so.window)
		last := time.Duration(0)
		for _, ev := range events {
			if gap := ev.At - last; gap > 0 {
				select {
				case <-stop:
					return
				case <-time.After(gap):
				}
			}
			last = ev.At
			p := st.pfxs[idx[ev.Prefix]]
			if ev.Kind == trace.Withdraw {
				if err := plane.Submit(updplane.WithdrawEvent(st.upstream, p)); err != nil {
					return
				}
				continue
			}
			ann, err := st.upstreamAnnouncement(p, 1+rng.Intn(8))
			if err != nil {
				fmt.Printf("pvrd: stream announce: %v\n", err)
				return
			}
			if err := plane.Submit(updplane.AnnounceEvent(st.upstream, ann)); err != nil {
				return
			}
		}
		fmt.Println("pvrd: churn stream drained")
	}()
	return nil
}

func dial(addr string, local bgp.Open, g gossipOpts, shutdown <-chan struct{}) {
	var cl closers
	conn, err := netx.Dial(addr, 5*time.Second)
	if err != nil {
		fatal(err)
	}
	// The registry is TOFU-populated from the session; the auditor shares
	// it, so gossip statements from the pinned peer verify once the BGP
	// session has established.
	reg := sigs.NewRegistry()
	auditor, ledger, err := newAuditor(local.ASN, reg, g)
	if err != nil {
		fatal(err)
	}
	if ledger != nil {
		cl.add(func() {
			if err := ledger.Close(); err != nil {
				fmt.Printf("pvrd: ledger close: %v\n", err)
			}
		})
	}
	if err := startGossip(auditor, g, &cl); err != nil {
		fatal(err)
	}
	var (
		mu       sync.Mutex
		peerASN  aspath.ASN
		haveKey  bool
		verified int
	)
	closed := make(chan struct{})
	s := bgp.NewSession(conn, local, bgp.SessionHooks{
		OnEstablished: func(peer bgp.Open) {
			mu.Lock()
			peerASN = peer.ASN
			mu.Unlock()
			fmt.Printf("pvrd: established with %s (hold %ds)\n", peer.ASN, peer.HoldTime)
		},
		OnUpdate: func(u bgp.Update) {
			mu.Lock()
			defer mu.Unlock()
			for _, r := range u.Announced {
				if auditor.Convicted(peerASN) {
					fmt.Printf("pvrd: learned %s — REJECTED: %s convicted by audit\n", r, peerASN)
					continue
				}
				err := verifySealedRoute(reg, peerASN, r, u, &haveKey)
				if err != nil {
					fmt.Printf("pvrd: learned %s — REJECTED: %v\n", r, err)
					continue
				}
				verified++
				fmt.Printf("pvrd: learned %s — sealed commitment verified (%d so far)\n", r, verified)
			}
			for _, w := range u.Withdrawn {
				fmt.Printf("pvrd: withdrawn %s\n", w)
			}
		},
		OnClose: func(err error) {
			fmt.Printf("pvrd: session closed: %v\n", err)
			close(closed)
		},
	})
	go func() { _ = s.Run() }()
	select {
	case <-shutdown:
		s.Close()
		<-closed
	case <-closed:
	}
	cl.run()
}

// verifySealedRoute checks what an update's attachments actually
// establish, rooted in the peer's key: the route body's own signature
// (§3.2 — path and next hop are authenticated per route), the engine
// commitment chain via engine.SealedCommitment.Verify (seal signature,
// shard binding, Merkle inclusion), and that the commitment covers
// exactly the announced prefix as the session peer's statement.
//
// The key itself is pinned trust-on-first-use from the pvr/key
// attachment — a stand-in for the out-of-band PKI the paper assumes, so
// the chain proves consistency with the pinned key, not the peer's
// real-world identity.
func verifySealedRoute(reg *sigs.Registry, peer aspath.ASN, r route.Route, u bgp.Update, haveKey *bool) error {
	mcBytes, proofBytes, sealBytes := u.Attachments["pvr/mc"], u.Attachments["pvr/proof"], u.Attachments["pvr/seal"]
	if mcBytes == nil || proofBytes == nil || sealBytes == nil {
		return fmt.Errorf("missing engine attachments")
	}
	if !*haveKey {
		kb := u.Attachments["pvr/key"]
		if kb == nil {
			return fmt.Errorf("no key attachment")
		}
		k, err := sigs.UnmarshalPublicKey(kb)
		if err != nil {
			return err
		}
		reg.Register(peer, k)
		*haveKey = true
		fp := k.Fingerprint()
		fmt.Printf("pvrd: pinned %s's key (trust-on-first-use, fp %x…)\n", peer, fp[:6])
	}
	// Route-body signature: binds path and next hop.
	body, err := r.MarshalBinary()
	if err != nil {
		return err
	}
	if err := reg.Verify(peer, body, u.Attachments["pvr/sig"]); err != nil {
		return fmt.Errorf("route signature: %w", err)
	}
	// Commitment chain.
	var seal engine.Seal
	if err := seal.UnmarshalBinary(sealBytes); err != nil {
		return err
	}
	if seal.Prover != peer {
		return fmt.Errorf("seal from %s, session peer is %s", seal.Prover, peer)
	}
	mc, err := core.ParseMinCommitmentBytes(mcBytes)
	if err != nil {
		return err
	}
	if mc.Prefix != r.Prefix {
		return fmt.Errorf("commitment covers %s, route announces %s", mc.Prefix, r.Prefix)
	}
	var proof merkle.BatchProof
	if err := proof.UnmarshalBinary(proofBytes); err != nil {
		return err
	}
	// ParseMinCommitmentBytes round-trips, so mc.SignedBytes() == mcBytes
	// and the shared verifier covers prover/epoch agreement, shard-range
	// and prefix->shard binding, seal signature, and Merkle inclusion.
	sc := engine.SealedCommitment{MC: mc, Proof: &proof, Seal: &seal}
	return sc.Verify(reg)
}
