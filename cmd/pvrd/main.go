// Command pvrd is the PVR daemon: one pvr.Participant per process,
// configured from flags. It proves over the prefixes it originates
// (sealing per-prefix commitments into Merkle-batched shard seals),
// serves them to BGP peers with the commitment chain attached, verifies
// what peers advertise (pinning unknown keys trust-on-first-use), joins
// the audit gossip network, and persists equivocation evidence.
//
// Listener:
//
//	pvrd -listen 127.0.0.1:1790 -asn 64500 -originate 203.0.113.0/24,198.51.100.0/24 -shards 4
//
// Dialer:
//
//	pvrd -connect 127.0.0.1:1790 -asn 64501
//
// With -stream N the listener additionally runs N synthetic churn events
// through the streaming update plane: each -window only the dirty shards
// re-seal and the changed prefixes re-advertise to every live session.
// -gossip-listen / -gossip-peers / -gossip-every / -ledger join the audit
// network; routes from a convicted origin are rejected. With -store DIR
// the daemon persists its durable state (sealed window sequence,
// trust-on-first-use key pins, disclosure-nonce marks, and — absent
// -ledger — the evidence ledger) under DIR and recovers it on restart,
// resuming the window sequence past everything it ever published.
//
// With -disclose-listen the daemon additionally serves the α-gated
// disclosure query plane: remote providers, promisees (declared with
// -promisees), and third-party auditors fetch on-demand views of any
// sealed (prefix, epoch), each granted exactly what α entitles them to.
// The query subcommand is the matching client:
//
//	pvrd query -connect 127.0.0.1:1791 -prefix 203.0.113.0/24 -role observer
//
// An observer query verifies the sealed commitment chain, pinning the
// prover's key trust-on-first-use. Provider and promisee views are
// released only to authenticated principals: the serving daemon must both
// list the ASN in -promisees and already hold its key (pinned from a live
// BGP session, or shared out-of-band via the library's WithRegistry), so
// a fresh-keyed CLI query for those roles is denied by α — exactly the
// boundary the plane exists to enforce. See
// pvr.Participant.QueryDisclosure for the programmatic client.
//
// With -debug-listen the daemon serves its observability plane over HTTP:
// /metrics (Prometheus text exposition of every plane's families), /trace
// (the most recent lifecycle events as JSON; ?n= caps the count), and the
// standard /debug/pprof profiles.
//
// pvrd shuts down cleanly on SIGINT/SIGTERM: sessions close with CEASE,
// the update plane seals its final window, the ledger is flushed, and
// -store takes a final checkpoint — a clean stop never needs WAL replay
// on the next boot.
// The heavy lifting all lives in pvr.Participant — this file only maps
// flags onto functional options.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"pvr"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "query" {
		queryMain(os.Args[2:])
		return
	}
	listen := flag.String("listen", "", "serve BGP sessions on this address")
	connect := flag.String("connect", "", "comma-separated BGP peers to dial")
	asn := flag.Uint("asn", 64500, "local AS number")
	originate := flag.String("originate", "", "comma-separated prefixes to originate")
	shards := flag.Int("shards", 0, "engine shard count (0 = one per CPU)")
	hold := flag.Uint("hold", 9, "hold time seconds (0 disables)")
	stream := flag.Int("stream", 0, "run the update plane over this many synthetic churn events (0 = off)")
	window := flag.Duration("window", 250*time.Millisecond, "update-plane commitment window")
	queue := flag.Int("queue", 1024, "update-plane ingest queue bound")
	gossipListen := flag.String("gossip-listen", "", "serve audit anti-entropy exchanges on this address")
	gossipPeers := flag.String("gossip-peers", "", "comma-separated audit peers to reconcile with periodically")
	gossipEvery := flag.Duration("gossip-every", 2*time.Second, "anti-entropy round interval")
	ledger := flag.String("ledger", "", "persistent evidence ledger file (audit convictions survive restarts)")
	storeDir := flag.String("store", "", "durable state directory (WAL + snapshots; sealed windows, key pins, and nonce marks survive restarts)")
	discloseListen := flag.String("disclose-listen", "", "serve the α-gated disclosure query plane on this address")
	promisees := flag.String("promisees", "", "comma-separated ASNs entitled to promisee views under α")
	debugListen := flag.String("debug-listen", "", "serve /metrics, /trace, and /debug/pprof on this HTTP address")
	flag.Parse()

	if *listen == "" && *connect == "" && *gossipListen == "" && *discloseListen == "" {
		fmt.Fprintln(os.Stderr, "at least one of -listen, -connect, -gossip-listen, or -disclose-listen is required")
		os.Exit(2)
	}
	log.SetFlags(0)
	log.SetPrefix("pvrd: ")

	opts := []pvr.Option{
		pvr.WithASN(pvr.ASN(*asn)),
		pvr.WithTransport(pvr.TCP()),
		pvr.WithShards(*shards),
		pvr.WithHoldTime(uint16(*hold)),
		pvr.WithWindow(*window),
		pvr.WithQueueSize(*queue),
		pvr.WithChurn(*stream),
		pvr.WithGossipInterval(*gossipEvery),
		pvr.WithLogf(log.Printf),
	}
	if *listen != "" {
		opts = append(opts, pvr.WithListen(*listen))
	}
	if peers := splitList(*connect); len(peers) > 0 {
		opts = append(opts, pvr.WithPeers(peers...))
	}
	for _, s := range splitList(*originate) {
		p, err := pvr.ParsePrefix(s)
		if err != nil {
			fatal(err)
		}
		opts = append(opts, pvr.WithOriginate(p))
	}
	if *gossipListen != "" {
		opts = append(opts, pvr.WithGossipListen(*gossipListen))
	}
	if peers := splitList(*gossipPeers); len(peers) > 0 {
		opts = append(opts, pvr.WithGossipPeers(peers...))
	}
	if *ledger != "" {
		opts = append(opts, pvr.WithLedger(*ledger))
	}
	if *storeDir != "" {
		opts = append(opts, pvr.WithStore(*storeDir))
	}
	if *discloseListen != "" {
		opts = append(opts, pvr.WithDiscloseListen(*discloseListen))
	}
	for _, s := range splitList(*promisees) {
		// Strict parse: a mis-separated list must fail loudly, not
		// silently drop promisees from α.
		asn, err := strconv.ParseUint(s, 10, 32)
		if err != nil || asn == 0 {
			fatal(fmt.Errorf("bad -promisees entry %q", s))
		}
		opts = append(opts, pvr.WithPromisees(pvr.ASN(asn)))
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	p, err := pvr.Open(ctx, opts...)
	if err != nil {
		fatal(err)
	}
	log.Printf("up as %s (%d prefixes, %d shards)", p.ASN(), p.Stats().Prefixes, p.Stats().Shards)
	if *debugListen != "" {
		lis, err := net.Listen("tcp", *debugListen)
		if err != nil {
			p.Close()
			fatal(err)
		}
		srv := &http.Server{Handler: p.DebugHandler()}
		go func() {
			if err := srv.Serve(lis); err != nil && err != http.ErrServerClosed {
				log.Printf("debug server: %v", err)
			}
		}()
		defer srv.Close()
		log.Printf("debug endpoint on http://%s (/metrics, /trace, /debug/pprof)", lis.Addr())
	}
	if *connect != "" && *listen == "" {
		// Classic dial mode exits when its last BGP session ends, not
		// only on SIGINT; watch the session gauge and cancel.
		go func() {
			for ctx.Err() == nil {
				// The cumulative counter cannot miss a session that opens
				// and dies between polls.
				if st := p.Stats(); st.SessionsOpened > 0 && st.Sessions == 0 {
					log.Printf("all sessions closed, exiting")
					stop()
					return
				}
				time.Sleep(100 * time.Millisecond)
			}
		}()
	}
	if err := p.Run(ctx); err != nil {
		fatal(err)
	}
	st := p.Stats()
	log.Printf("shut down: window %d, %d prefixes sealed, %d routes verified, %d rejected, %d audit records, %d convictions",
		st.Window, st.Prefixes, st.RoutesVerified, st.RoutesRejected, st.AuditRecords, st.Convictions)
	log.Printf("update plane: %d events, %d windows, %d shards rebuilt, %d reused, seal p50 %s p99 %s",
		st.Plane.EventsIn, st.Plane.Windows, st.Plane.RebuiltShards, st.Plane.ReusedShards,
		st.Plane.SealP50.Round(time.Microsecond), st.Plane.SealP99.Round(time.Microsecond))
}

// queryMain is the disclosure query subcommand: one α-gated fetch against
// a daemon's -disclose-listen endpoint, verified end to end.
func queryMain(args []string) {
	fs := flag.NewFlagSet("pvrd query", flag.ExitOnError)
	connect := fs.String("connect", "", "disclosure query-plane address to dial (required)")
	asn := fs.Uint("asn", 65099, "querying AS number")
	pfxArg := fs.String("prefix", "", "prefix to query (required)")
	epoch := fs.Uint64("epoch", 1, "commitment epoch to query")
	roleArg := fs.String("role", "observer", "view to request under α: observer|promisee")
	timeout := fs.Duration("timeout", 10*time.Second, "query deadline")
	_ = fs.Parse(args)
	if *connect == "" || *pfxArg == "" {
		fmt.Fprintln(os.Stderr, "pvrd query: -connect and -prefix are required")
		os.Exit(2)
	}
	pfx, err := pvr.ParsePrefix(*pfxArg)
	if err != nil {
		fatal(err)
	}
	var role pvr.Role
	switch *roleArg {
	case "observer":
		role = pvr.RoleObserver
	case "promisee":
		role = pvr.RolePromisee
	default:
		// A provider-role query needs the original signed announcement to
		// check the opened bit against; that lives in the providing
		// daemon's process, not on a CLI. Use the library for that.
		fmt.Fprintf(os.Stderr, "pvrd query: unsupported -role %q (observer|promisee)\n", *roleArg)
		os.Exit(2)
	}
	log.SetFlags(0)
	log.SetPrefix("pvrd: ")
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	p, err := pvr.Open(ctx, pvr.WithASN(pvr.ASN(*asn)), pvr.WithHoldTime(0), pvr.WithLogf(log.Printf))
	if err != nil {
		fatal(err)
	}
	defer p.Close()
	d, err := p.QueryDisclosure(ctx, *connect, pvr.Query{Prefix: pfx, Epoch: *epoch, Role: role})
	if err != nil {
		fatal(err)
	}
	log.Printf("%s view of %s from %s verified (epoch %d, window %d, shard %d/%d, %d committed prefixes in shard)",
		d.Role, d.Prefix, d.Prover, d.Epoch, d.Window,
		d.Sealed.Seal.Shard, d.Sealed.Seal.Shards, d.Sealed.Seal.Count)
	if d.KeyPinned {
		log.Printf("pinned %s's key trust-on-first-use", d.Prover)
	}
	if d.Promisee != nil {
		if d.Promisee.Export.Empty {
			log.Printf("prover exported nothing for %s", d.Prefix)
		} else {
			log.Printf("prover exported %s (committed minimum kept)", d.Promisee.Export.Route)
		}
	}
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pvrd:", err)
	os.Exit(1)
}
