// Command pvrd is a small BGP speaker daemon demonstrating the substrate
// over real TCP: it runs the session FSM (OPEN exchange, keepalives, hold
// timer) and exchanges UPDATE messages whose attachments carry PVR engine
// state — per-prefix commitments sealed into Merkle-batched shard roots —
// instead of one signature per route.
//
// The listener owns a sharded ProverEngine: it ingests signed announcements
// for every originated prefix (from a synthetic upstream provider standing
// in for its provider sessions), seals the epoch, and serves each route
// with its sealed commitment (commitment bytes, inclusion proof, shard
// seal, and the speaker's public key) attached.
//
// Listener:
//
//	pvrd -listen 127.0.0.1:1790 -asn 64500 -originate 203.0.113.0/24,198.51.100.0/24 -shards 4
//
// Dialer:
//
//	pvrd -connect 127.0.0.1:1790 -asn 64501
//
// The dialer pins the listener's key trust-on-first-use (standing in for
// the paper's out-of-band PKI), then verifies every learned route: the
// route body's own signature, the shard-seal signature, the prefix→shard
// binding, and Merkle inclusion of the commitment under the sealed root.
//
// Both modes can additionally join the audit network (internal/auditnet):
// -gossip-listen serves anti-entropy exchanges, -gossip-peers dials the
// given peers every -gossip-every, and -ledger persists confirmed
// equivocation evidence across restarts. The listener seeds its auditor
// with its own shard seals; the dialer audits what it learns, and routes
// from a convicted peer are rejected. Stop with Ctrl-C.
package main

import (
	"flag"
	"fmt"
	"net/netip"
	"os"
	"os/signal"
	"strings"
	"sync"
	"time"

	"pvr/internal/aspath"
	"pvr/internal/auditnet"
	"pvr/internal/bgp"
	"pvr/internal/core"
	"pvr/internal/engine"
	"pvr/internal/merkle"
	"pvr/internal/netx"
	"pvr/internal/prefix"
	"pvr/internal/route"
	"pvr/internal/sigs"
)

// gossipOpts carries the audit-network flags shared by both modes.
type gossipOpts struct {
	listen string
	peers  []string
	every  time.Duration
	ledger string
}

func main() {
	listen := flag.String("listen", "", "listen address (server mode)")
	connect := flag.String("connect", "", "peer address (client mode)")
	asn := flag.Uint("asn", 64500, "local AS number")
	originate := flag.String("originate", "", "comma-separated prefixes to originate (server mode)")
	shards := flag.Int("shards", 0, "engine shard count (0 = one per CPU)")
	hold := flag.Uint("hold", 9, "hold time seconds (0 disables)")
	gossipListen := flag.String("gossip-listen", "", "serve audit anti-entropy exchanges on this address")
	gossipPeers := flag.String("gossip-peers", "", "comma-separated audit peers to reconcile with periodically")
	gossipEvery := flag.Duration("gossip-every", 2*time.Second, "anti-entropy round interval")
	ledgerPath := flag.String("ledger", "", "persistent evidence ledger file (audit convictions survive restarts)")
	flag.Parse()

	if (*listen == "") == (*connect == "") {
		fmt.Fprintln(os.Stderr, "exactly one of -listen or -connect is required")
		os.Exit(2)
	}
	local := bgp.Open{ASN: aspath.ASN(*asn), HoldTime: uint16(*hold), RouterID: uint32(*asn)}
	g := gossipOpts{listen: *gossipListen, every: *gossipEvery, ledger: *ledgerPath}
	for _, p := range strings.Split(*gossipPeers, ",") {
		if p = strings.TrimSpace(p); p != "" {
			g.peers = append(g.peers, p)
		}
	}

	if *listen != "" {
		serve(*listen, local, *originate, *shards, g)
		return
	}
	dial(*connect, local, g)
}

// newAuditor stands up the local audit node over the daemon's registry,
// replaying the evidence ledger when one is configured.
func newAuditor(local aspath.ASN, reg *sigs.Registry, g gossipOpts) (*auditnet.Auditor, error) {
	cfg := auditnet.Config{ASN: local, Registry: reg}
	if g.ledger != "" {
		led, recs, err := auditnet.OpenLedger(g.ledger)
		if err != nil {
			return nil, err
		}
		cfg.Ledger, cfg.Replay = led, recs
		if len(recs) > 0 {
			fmt.Printf("pvrd: replayed %d evidence records from %s\n", len(recs), g.ledger)
		}
	}
	a, err := auditnet.New(cfg)
	if err != nil {
		return nil, err
	}
	for _, c := range a.Convictions() {
		fmt.Printf("pvrd: audit: %s stands convicted (%s)\n", c.ASN, c.Detail)
	}
	return a, nil
}

// startGossip wires the auditor into the network: a listener answering
// anti-entropy exchanges and a ticker reconciling with each peer.
func startGossip(a *auditnet.Auditor, g gossipOpts) error {
	if g.listen != "" {
		bound, _, err := netx.Listen(g.listen, func(c *netx.Conn) {
			defer c.Close()
			for {
				if _, err := a.Respond(c); err != nil {
					return // peer hung up or protocol error; drop the conn
				}
			}
		})
		if err != nil {
			return err
		}
		fmt.Printf("pvrd: audit gossip listening on %s\n", bound)
	}
	if len(g.peers) > 0 {
		go func() {
			tick := time.NewTicker(g.every)
			defer tick.Stop()
			for range tick.C {
				for _, peer := range g.peers {
					st, err := reconcileOnce(a, peer)
					if err != nil {
						fmt.Printf("pvrd: audit %s: %v\n", peer, err)
						continue
					}
					if st.NewStatements > 0 || st.NewConflicts > 0 {
						fmt.Printf("pvrd: audit %s: +%d statements, +%d convictions (%d B)\n",
							peer, st.NewStatements, st.NewConflicts, st.Bytes())
					}
				}
			}
		}()
	}
	return nil
}

func reconcileOnce(a *auditnet.Auditor, peer string) (*auditnet.Stats, error) {
	conn, err := netx.Dial(peer, 3*time.Second)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	return a.Reconcile(conn)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pvrd:", err)
	os.Exit(1)
}

// sealedRoute is one originated prefix with its engine commitment chain,
// ready to attach to an UPDATE.
type sealedRoute struct {
	route    route.Route
	routeSig []byte // speaker's signature over the route body (§3.2)
	mc       []byte // commitment canonical bytes
	proof    []byte // Merkle inclusion proof
	seal     []byte // shard seal incl. signature
}

// buildEngineState stands up the PKI and engine, ingests one announcement
// per originated prefix from the synthetic upstream provider, seals the
// epoch, and extracts the per-prefix commitment chains.
func buildEngineState(local bgp.Open, originate string, shards int) (*sigs.Registry, sigs.PublicKey, []sealedRoute, []*engine.Seal, error) {
	signer, err := sigs.GenerateEd25519()
	if err != nil {
		return nil, nil, nil, nil, err
	}
	upstream := aspath.ASN(uint32(local.ASN) + 1000)
	upSigner, err := sigs.GenerateEd25519()
	if err != nil {
		return nil, nil, nil, nil, err
	}
	reg := sigs.NewRegistry()
	reg.Register(local.ASN, signer.Public())
	reg.Register(upstream, upSigner.Public())

	eng, err := engine.New(engine.Config{
		ASN: local.ASN, Signer: signer, Registry: reg, Shards: shards,
	})
	if err != nil {
		return nil, nil, nil, nil, err
	}
	const epoch = 1
	eng.BeginEpoch(epoch)

	var pfxs []prefix.Prefix
	for _, s := range strings.Split(originate, ",") {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		p, err := prefix.Parse(s)
		if err != nil {
			return nil, nil, nil, nil, err
		}
		pfxs = append(pfxs, p)
	}
	for _, p := range pfxs {
		r := route.Route{
			Prefix:  p,
			Path:    aspath.New(upstream),
			NextHop: netip.MustParseAddr("192.0.2.1"),
		}
		ann, err := core.NewAnnouncement(upSigner, upstream, local.ASN, epoch, r)
		if err != nil {
			return nil, nil, nil, nil, err
		}
		if _, err := eng.AcceptAnnouncement(ann); err != nil {
			return nil, nil, nil, nil, err
		}
	}
	var seals []*engine.Seal
	if len(pfxs) > 0 {
		if seals, err = eng.SealEpoch(); err != nil {
			return nil, nil, nil, nil, err
		}
	}

	var routes []sealedRoute
	for _, p := range pfxs {
		sc, err := eng.Commitment(p)
		if err != nil {
			return nil, nil, nil, nil, err
		}
		mcBytes, err := sc.MC.SignedBytes()
		if err != nil {
			return nil, nil, nil, nil, err
		}
		proofBytes, err := sc.Proof.MarshalBinary()
		if err != nil {
			return nil, nil, nil, nil, err
		}
		sealBytes, err := sc.Seal.MarshalBinary()
		if err != nil {
			return nil, nil, nil, nil, err
		}
		pv, err := eng.DiscloseToPromisee(p, 0) // exported route for any promisee
		if err != nil {
			return nil, nil, nil, nil, err
		}
		// The route body itself is signed per-route (§3.2 announcement
		// signing): the sealed commitment authenticates the promise state,
		// not the path and next hop the update carries.
		body, err := pv.Export.Route.MarshalBinary()
		if err != nil {
			return nil, nil, nil, nil, err
		}
		routeSig, err := signer.Sign(body)
		if err != nil {
			return nil, nil, nil, nil, err
		}
		routes = append(routes, sealedRoute{
			route:    pv.Export.Route,
			routeSig: routeSig,
			mc:       mcBytes,
			proof:    proofBytes,
			seal:     sealBytes,
		})
	}
	return reg, signer.Public(), routes, seals, nil
}

func serve(addr string, local bgp.Open, originate string, shards int, g gossipOpts) {
	reg, pub, routes, seals, err := buildEngineState(local, originate, shards)
	if err != nil {
		fatal(err)
	}
	key, err := pub.Marshal()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("pvrd: engine sealed %d prefixes into %d shard seals\n", len(routes), len(seals))

	// Join the audit network: seed the auditor with our own shard seals so
	// peers can cross-check what we told other neighbors.
	auditor, err := newAuditor(local.ASN, reg, g)
	if err != nil {
		fatal(err)
	}
	for _, s := range seals {
		if _, _, err := auditor.AddRecord(auditnet.Record{Epoch: s.Epoch, S: s.Statement()}); err != nil {
			fatal(err)
		}
	}
	if err := startGossip(auditor, g); err != nil {
		fatal(err)
	}

	bound, closer, err := netx.Listen(addr, func(c *netx.Conn) {
		fmt.Printf("pvrd: connection from %s\n", c.RemoteAddr())
		s := bgp.NewSession(c, local, bgp.SessionHooks{
			OnEstablished: func(peer bgp.Open) {
				fmt.Printf("pvrd: established with %s\n", peer.ASN)
			},
			OnClose: func(err error) {
				fmt.Printf("pvrd: session closed: %v\n", err)
			},
		})
		go func() {
			// Once established, serve the sealed engine state: one update
			// per prefix, each carrying its commitment chain.
			for s.State() != bgp.StateEstablished {
				if s.State() == bgp.StateClosed {
					return
				}
				time.Sleep(10 * time.Millisecond)
			}
			for _, sr := range routes {
				u := bgp.Update{
					Announced: []route.Route{sr.route},
					Attachments: map[string][]byte{
						"pvr/sig":   sr.routeSig,
						"pvr/mc":    sr.mc,
						"pvr/proof": sr.proof,
						"pvr/seal":  sr.seal,
						"pvr/key":   key,
					},
				}
				if err := s.SendUpdate(u); err != nil {
					fmt.Printf("pvrd: send: %v\n", err)
					return
				}
			}
		}()
		_ = s.Run()
	})
	if err != nil {
		fatal(err)
	}
	defer closer.Close()
	fmt.Printf("pvrd: listening on %s as %s\n", bound, local.ASN)
	waitInterrupt()
}

func dial(addr string, local bgp.Open, g gossipOpts) {
	conn, err := netx.Dial(addr, 5*time.Second)
	if err != nil {
		fatal(err)
	}
	// The registry is TOFU-populated from the session; the auditor shares
	// it, so gossip statements from the pinned peer verify once the BGP
	// session has established.
	reg := sigs.NewRegistry()
	auditor, err := newAuditor(local.ASN, reg, g)
	if err != nil {
		fatal(err)
	}
	if err := startGossip(auditor, g); err != nil {
		fatal(err)
	}
	var (
		mu       sync.Mutex
		peerASN  aspath.ASN
		haveKey  bool
		verified int
	)
	s := bgp.NewSession(conn, local, bgp.SessionHooks{
		OnEstablished: func(peer bgp.Open) {
			mu.Lock()
			peerASN = peer.ASN
			mu.Unlock()
			fmt.Printf("pvrd: established with %s (hold %ds)\n", peer.ASN, peer.HoldTime)
		},
		OnUpdate: func(u bgp.Update) {
			mu.Lock()
			defer mu.Unlock()
			for _, r := range u.Announced {
				if auditor.Convicted(peerASN) {
					fmt.Printf("pvrd: learned %s — REJECTED: %s convicted by audit\n", r, peerASN)
					continue
				}
				err := verifySealedRoute(reg, peerASN, r, u, &haveKey)
				if err != nil {
					fmt.Printf("pvrd: learned %s — REJECTED: %v\n", r, err)
					continue
				}
				verified++
				fmt.Printf("pvrd: learned %s — sealed commitment verified (%d so far)\n", r, verified)
			}
			for _, w := range u.Withdrawn {
				fmt.Printf("pvrd: withdrawn %s\n", w)
			}
		},
		OnClose: func(err error) {
			fmt.Printf("pvrd: session closed: %v\n", err)
			os.Exit(0)
		},
	})
	go func() { _ = s.Run() }()
	waitInterrupt()
	s.Close()
}

// verifySealedRoute checks what an update's attachments actually
// establish, rooted in the peer's key: the route body's own signature
// (§3.2 — path and next hop are authenticated per route), the engine
// commitment chain via engine.SealedCommitment.Verify (seal signature,
// shard binding, Merkle inclusion), and that the commitment covers
// exactly the announced prefix as the session peer's statement.
//
// The key itself is pinned trust-on-first-use from the pvr/key
// attachment — a stand-in for the out-of-band PKI the paper assumes, so
// the chain proves consistency with the pinned key, not the peer's
// real-world identity.
func verifySealedRoute(reg *sigs.Registry, peer aspath.ASN, r route.Route, u bgp.Update, haveKey *bool) error {
	mcBytes, proofBytes, sealBytes := u.Attachments["pvr/mc"], u.Attachments["pvr/proof"], u.Attachments["pvr/seal"]
	if mcBytes == nil || proofBytes == nil || sealBytes == nil {
		return fmt.Errorf("missing engine attachments")
	}
	if !*haveKey {
		kb := u.Attachments["pvr/key"]
		if kb == nil {
			return fmt.Errorf("no key attachment")
		}
		k, err := sigs.UnmarshalPublicKey(kb)
		if err != nil {
			return err
		}
		reg.Register(peer, k)
		*haveKey = true
		fp := k.Fingerprint()
		fmt.Printf("pvrd: pinned %s's key (trust-on-first-use, fp %x…)\n", peer, fp[:6])
	}
	// Route-body signature: binds path and next hop.
	body, err := r.MarshalBinary()
	if err != nil {
		return err
	}
	if err := reg.Verify(peer, body, u.Attachments["pvr/sig"]); err != nil {
		return fmt.Errorf("route signature: %w", err)
	}
	// Commitment chain.
	var seal engine.Seal
	if err := seal.UnmarshalBinary(sealBytes); err != nil {
		return err
	}
	if seal.Prover != peer {
		return fmt.Errorf("seal from %s, session peer is %s", seal.Prover, peer)
	}
	mc, err := core.ParseMinCommitmentBytes(mcBytes)
	if err != nil {
		return err
	}
	if mc.Prefix != r.Prefix {
		return fmt.Errorf("commitment covers %s, route announces %s", mc.Prefix, r.Prefix)
	}
	var proof merkle.BatchProof
	if err := proof.UnmarshalBinary(proofBytes); err != nil {
		return err
	}
	// ParseMinCommitmentBytes round-trips, so mc.SignedBytes() == mcBytes
	// and the shared verifier covers prover/epoch agreement, shard-range
	// and prefix->shard binding, seal signature, and Merkle inclusion.
	sc := engine.SealedCommitment{MC: mc, Proof: &proof, Seal: &seal}
	return sc.Verify(reg)
}

func waitInterrupt() {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt)
	<-ch
	fmt.Println("pvrd: shutting down")
}
