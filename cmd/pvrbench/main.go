// Command pvrbench regenerates the paper's quantitative claims as tables,
// one experiment per flag value (see EXPERIMENTS.md for the mapping to
// sections of the paper):
//
//	pvrbench -e all          # everything
//	pvrbench -e fig1         # E1: §3.3 minimum protocol vs provider count
//	pvrbench -e fig2         # E2: §3.5–3.7 graph commitment
//	pvrbench -e smc          # E3: SMC strawman vs PVR
//	pvrbench -e zkp          # E4: ZKP strawman scaling
//	pvrbench -e crypto       # E5: §3.8 primitive costs
//	pvrbench -e batch        # E6: §3.8 batch signing
//	pvrbench -e properties   # E7: §2.3 property matrix under faults
//	pvrbench -e e2e          # E8: plain vs PVR BGP convergence
//	pvrbench -e ring         # E9: §3.2 ring signatures
//	pvrbench -e engine       # E10: sharded multi-prefix engine vs prover loop
//	pvrbench -e gossip       # E11: anti-entropy audit gossip (auditnet)
//	pvrbench -e stream       # E12: streaming update plane (updplane)
//	pvrbench -e query        # E13: disclosure query plane (discplane)
//	pvrbench -e trace        # E16: distributed tracing across the fleet (netsim)
//	pvrbench -e priv         # E17: privacy plane — anonymous queries + ZK openings
//	pvrbench -e store        # E18: durable store — group-commit WAL + crash matrix
//
// With -json FILE, the engine experiment (or, when selected directly, the
// gossip, stream, query, trace, or priv experiment) additionally writes its
// rows
// as JSON under a {"meta": ..., "rows": ...} envelope carrying run
// provenance (go version, GOMAXPROCS, VCS commit) — the BENCH_*.json files
// consumed by the perf trajectory. -prefixes and -nodes shrink the
// E10/E11/E12/E16 sweeps to a single size, for CI smoke runs.
package main

import (
	"flag"
	"fmt"
	"os"
)

func main() {
	exp := flag.String("e", "all", "experiment: all|fig1|fig2|smc|zkp|crypto|batch|properties|e2e|ring|engine|gossip|stream|query|trace|priv|store")
	seed := flag.Int64("seed", 1, "random seed for workloads")
	flag.StringVar(&jsonOut, "json", "", "write the engine (or gossip, when selected) rows to this JSON file")
	flag.IntVar(&benchPrefixes, "prefixes", 0, "override the E10 prefix-table sweep with one size")
	flag.IntVar(&gossipNodes, "nodes", 0, "override the E11/E16 network-size sweeps with one size")
	flag.IntVar(&privRing, "ring", 0, "override the E17 ring-size sweep with one size")
	flag.IntVar(&storeAppenders, "appenders", 0, "override the E18 appender sweep with one count")
	flag.Parse()
	jsonExp = *exp

	runners := map[string]func(int64) error{
		"fig1":       runFig1,
		"fig2":       runFig2,
		"smc":        runSMC,
		"zkp":        runZKP,
		"crypto":     runCrypto,
		"batch":      runBatch,
		"properties": runProperties,
		"e2e":        runE2E,
		"ring":       runRing,
		"engine":     runEngine,
		"gossip":     runGossip,
		"stream":     runStream,
		"query":      runQuery,
		"trace":      runTrace,
		"priv":       runPriv,
		"store":      runStore,
	}
	order := []string{"fig1", "fig2", "smc", "zkp", "crypto", "batch", "properties", "e2e", "ring", "engine", "gossip", "stream", "query", "trace", "priv", "store"}

	var selected []string
	if *exp == "all" {
		selected = order
	} else {
		if _, ok := runners[*exp]; !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
			os.Exit(2)
		}
		selected = []string{*exp}
	}
	for _, name := range selected {
		if err := runners[name](*seed); err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}
}
