package main

import (
	"fmt"
	"os"
	"time"

	"pvr/internal/netsim"
)

// E18 — the durable state subsystem: group-commit WAL, snapshots, and
// crash-restart recovery under an adversarial fault matrix. The run
// first drives the three fault scenarios (crash mid-window, stale
// window reuse, query replay against recovered nonce state) and aborts
// on any failing row — durability is a correctness property before it
// is a performance one. It then measures group-commit throughput
// against a one-fsync-per-record baseline across appender counts, and
// the open-time recovery wall time against WAL size. Performance phases
// run on a real directory (fsyncs hit the filesystem); benchgate reads
// speedup and recovery_ms as regression metrics.

// storeAppenders, when nonzero, collapses the E18 appender sweep to one
// count (set by -appenders; benchgate re-runs at the baseline's own
// concurrency).
var storeAppenders int

type storeRow struct {
	Appenders       int     `json:"appenders"`
	AppendsPerSec   float64 `json:"appends_per_sec"`
	BaselinePerSec  float64 `json:"baseline_appends_per_sec"`
	Speedup         float64 `json:"speedup"`
	CommitP50Us     float64 `json:"commit_p50_us"`
	CommitP99Us     float64 `json:"commit_p99_us"`
	RecoveryRecords int     `json:"recovery_records"`
	RecoveryMs      float64 `json:"recovery_ms"`
	ScenariosPassed int     `json:"scenarios_passed"`
	ScenariosTotal  int     `json:"scenarios_total"`
}

func runStore(seed int64) error {
	header("E18", "durable store: group-commit WAL, recovery, and the crash fault matrix")
	dir, err := os.MkdirTemp("", "pvrbench-store-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	cfg := netsim.StoreConfig{Dir: dir}
	if storeAppenders > 0 {
		// The recovery curve keeps its full sweep: it is cheap (async
		// appends), and benchgate compares at the baseline's largest size.
		cfg.Appenders = []int{storeAppenders}
	}
	res, err := netsim.RunStore(cfg)
	if err != nil {
		return err
	}

	fmt.Printf("%-26s %-6s %s\n", "scenario", "pass", "detail")
	for _, s := range res.Scenarios {
		pass := "ok"
		if !s.Pass {
			pass = "FAIL"
		}
		fmt.Printf("%-26s %-6s %s\n", s.Name, pass, s.Detail)
	}
	if res.ScenariosPassed != len(res.Scenarios) {
		return fmt.Errorf("store: %d/%d fault scenarios passed", res.ScenariosPassed, len(res.Scenarios))
	}

	fmt.Printf("\n%10s %14s %14s %9s %12s %12s\n",
		"appenders", "appends/s", "baseline/s", "speedup", "commit p50", "commit p99")
	for _, p := range res.Perf {
		fmt.Printf("%10d %14.0f %14.0f %8.1fx %12s %12s\n",
			p.Appenders, p.AppendsPerSec, p.BaselineAppendsPerSec, p.Speedup,
			p.CommitP50.Round(time.Microsecond), p.CommitP99.Round(time.Microsecond))
	}
	fmt.Printf("\n%10s %14s\n", "records", "recovery")
	for _, r := range res.Recovery {
		fmt.Printf("%10d %14s\n", r.Records, r.Elapsed.Round(time.Microsecond))
	}
	fmt.Println("  (baseline = sequential appends, one fsync per record, same backend)")

	if jsonOut != "" && jsonExp == "store" {
		n := len(res.Perf)
		if len(res.Recovery) > n {
			n = len(res.Recovery)
		}
		rows := make([]storeRow, n)
		for i := range rows {
			rows[i].ScenariosPassed = res.ScenariosPassed
			rows[i].ScenariosTotal = len(res.Scenarios)
			if i < len(res.Perf) {
				p := res.Perf[i]
				rows[i].Appenders = p.Appenders
				rows[i].AppendsPerSec = p.AppendsPerSec
				rows[i].BaselinePerSec = p.BaselineAppendsPerSec
				rows[i].Speedup = p.Speedup
				rows[i].CommitP50Us = float64(p.CommitP50) / 1e3
				rows[i].CommitP99Us = float64(p.CommitP99) / 1e3
			}
			if i < len(res.Recovery) {
				r := res.Recovery[i]
				rows[i].RecoveryRecords = r.Records
				rows[i].RecoveryMs = float64(r.Elapsed) / 1e6
			}
		}
		if err := writeJSONRows(rows); err != nil {
			return err
		}
	}
	return nil
}
