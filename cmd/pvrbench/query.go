package main

import (
	"fmt"
	"time"

	"pvr/internal/netsim"
)

// E13 — the disclosure query plane: on-demand α-gated verification over
// the wire (§2.2, §3.5–3.7). One prover serves its sealed table through
// the DISCLOSE/VIEW/DENY protocol while concurrent clients issue a mixed
// workload: entitled provider/promisee/observer queries (which must be
// granted and verify) and unentitled ones (which must be denied). The
// table reports query throughput and end-to-end latency quantiles; a run
// with any wrong grant, wrong denial, or verification failure aborts.

type queryRow struct {
	Prefixes  int     `json:"prefixes"`
	Providers int     `json:"providers"`
	Clients   int     `json:"clients"`
	Queries   int     `json:"queries"`
	Verified  int     `json:"verified"`
	Denied    int     `json:"denied"`
	QPS       float64 `json:"qps"`
	P50Us     float64 `json:"p50_us"`
	P99Us     float64 `json:"p99_us"`
	// Server-side answer latency from the plane's obs histogram and the
	// response-cache counters: the columns E15 reads to split wire cost
	// from serve cost.
	SrvP50Us  float64 `json:"srv_p50_us"`
	SrvP99Us  float64 `json:"srv_p99_us"`
	CacheHits uint64  `json:"cache_hits"`
	CacheMiss uint64  `json:"cache_misses"`
}

func runQuery(seed int64) error {
	header("E13 (§2.2)", "disclosure query plane: α-gated on-demand verification over the wire")
	sweep := []struct{ prefixes, clients int }{
		{512, 4}, {2048, 8}, {2048, 16},
	}
	if benchPrefixes > 0 {
		sweep = []struct{ prefixes, clients int }{{benchPrefixes, 4}}
	}
	const providers = 3
	fmt.Printf("%10s %10s %9s %9s %10s %10s %12s %12s %12s %9s\n",
		"prefixes", "clients", "queries", "denied", "qps", "verified", "p50", "p99", "srv p99", "cache hit")
	var rows []queryRow
	for _, sz := range sweep {
		res, err := netsim.RunQuery(netsim.QueryConfig{
			Prefixes: sz.prefixes, Providers: providers,
			Clients: sz.clients, QueriesPerClient: 200,
			Seed: seed,
		})
		if err != nil {
			return err
		}
		if res.WrongDenials != 0 || res.WrongGrants != 0 || res.VerifyFailures != 0 {
			return fmt.Errorf("query: α correctness violated at %d prefixes: wrongDenials=%d wrongGrants=%d verifyFailures=%d",
				sz.prefixes, res.WrongDenials, res.WrongGrants, res.VerifyFailures)
		}
		hitRatio := 0.0
		if lookups := res.CacheHits + res.CacheMisses; lookups > 0 {
			hitRatio = float64(res.CacheHits) / float64(lookups)
		}
		fmt.Printf("%10d %10d %9d %9d %10.0f %10d %12s %12s %12s %8.1f%%\n",
			res.Prefixes, res.Clients, res.Queries, res.Denied, res.QPS, res.Verified,
			res.P50.Round(time.Microsecond), res.P99.Round(time.Microsecond),
			res.ServerP99.Round(time.Microsecond), 100*hitRatio)
		rows = append(rows, queryRow{
			Prefixes: res.Prefixes, Providers: res.Providers, Clients: res.Clients,
			Queries: res.Queries, Verified: res.Verified, Denied: res.Denied,
			QPS:   res.QPS,
			P50Us: float64(res.P50) / 1e3, P99Us: float64(res.P99) / 1e3,
			SrvP50Us: float64(res.ServerP50) / 1e3, SrvP99Us: float64(res.ServerP99) / 1e3,
			CacheHits: res.CacheHits, CacheMiss: res.CacheMisses,
		})
	}
	fmt.Println("  (every unentitled query denied, every granted view verified; latency includes sign + round trip + verify)")
	if jsonOut != "" && jsonExp == "query" {
		if err := writeJSONRows(rows); err != nil {
			return err
		}
	}
	return nil
}
