package main

import (
	"crypto/rand"
	"crypto/rsa"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	mrand "math/rand"
	"net/netip"
	"os"
	"runtime"
	"runtime/debug"
	"time"

	"pvr/internal/aspath"
	"pvr/internal/core"
	"pvr/internal/engine"
	"pvr/internal/merkle"
	"pvr/internal/netsim"
	"pvr/internal/obs"
	"pvr/internal/prefix"
	"pvr/internal/rfg"
	"pvr/internal/ringsig"
	"pvr/internal/route"
	"pvr/internal/sigs"
	"pvr/internal/smc"
	"pvr/internal/topology"
	"pvr/internal/trace"
	"pvr/internal/zkp"
)

func header(id, title string) {
	fmt.Printf("== %s — %s ==\n", id, title)
}

// timeIt runs fn n times and returns the mean duration.
func timeIt(n int, fn func() error) (time.Duration, error) {
	start := time.Now()
	for i := 0; i < n; i++ {
		if err := fn(); err != nil {
			return 0, err
		}
	}
	return time.Since(start) / time.Duration(n), nil
}

// --- shared mini-PKI ---

type pki struct {
	reg     *sigs.Registry
	signers map[aspath.ASN]sigs.Signer
	pfx     prefix.Prefix
}

func newPKI(n int) (*pki, error) {
	p := &pki{
		reg:     sigs.NewRegistry(),
		signers: map[aspath.ASN]sigs.Signer{},
		pfx:     prefix.MustParse("203.0.113.0/24"),
	}
	for asn := aspath.ASN(100); asn < aspath.ASN(100+n); asn++ {
		s, err := sigs.GenerateEd25519()
		if err != nil {
			return nil, err
		}
		p.signers[asn] = s
		p.reg.Register(asn, s.Public())
	}
	return p, nil
}

func (p *pki) announce(from aspath.ASN, epoch uint64, length int) (core.Announcement, error) {
	asns := make([]aspath.ASN, length)
	asns[0] = from
	for i := 1; i < length; i++ {
		asns[i] = aspath.ASN(65000 + i)
	}
	r := route.Route{
		Prefix:  p.pfx,
		Path:    aspath.New(asns...),
		NextHop: netip.AddrFrom4([4]byte{10, 0, 0, 1}),
	}
	return core.NewAnnouncement(p.signers[from], from, 100, epoch, r)
}

// minEpoch runs one full §3.3 epoch for k providers, returning disclosure
// sizes for the table.
func (p *pki) minEpoch(k, maxLen int, epoch uint64) (provBytes, promBytes int, err error) {
	prover, err := core.NewProver(100, p.signers[100], p.reg, maxLen)
	if err != nil {
		return 0, 0, err
	}
	prover.BeginEpoch(epoch, p.pfx)
	anns := make([]core.Announcement, k)
	for i := 0; i < k; i++ {
		anns[i], err = p.announce(aspath.ASN(101+i), epoch, 1+(i%maxLen))
		if err != nil {
			return 0, 0, err
		}
		if _, err := prover.AcceptAnnouncement(anns[i]); err != nil {
			return 0, 0, err
		}
	}
	mc, err := prover.CommitMin()
	if err != nil {
		return 0, 0, err
	}
	for i := 0; i < k; i++ {
		v, err := prover.DiscloseToProvider(aspath.ASN(101 + i))
		if err != nil {
			return 0, 0, err
		}
		if err := core.VerifyProviderView(p.reg, v, anns[i]); err != nil {
			return 0, 0, err
		}
		ob, _ := v.Opening.MarshalBinary()
		provBytes = len(ob)
	}
	pv, err := prover.DiscloseToPromisee(199)
	if err != nil {
		return 0, 0, err
	}
	if err := core.VerifyPromiseeView(p.reg, pv); err != nil {
		return 0, 0, err
	}
	for _, op := range pv.Openings {
		ob, _ := op.MarshalBinary()
		promBytes += len(ob)
	}
	promBytes += len(mc.Commitments) * 32
	return provBytes, promBytes, nil
}

// E1 — Fig. 1: full minimum-operator protocol vs provider count.
func runFig1(seed int64) error {
	header("E1 (Fig. 1)", "minimum-operator protocol, one epoch, all parties verify")
	pk, err := newPKI(100)
	if err != nil {
		return err
	}
	fmt.Printf("%6s %12s %16s %16s\n", "k", "epoch time", "Ni view bytes", "B view bytes")
	epoch := uint64(1)
	for _, k := range []int{2, 5, 10, 20, 50} {
		var pb, bb int
		d, err := timeIt(20, func() error {
			epoch++
			var err error
			pb, bb, err = pk.minEpoch(k, 32, epoch)
			return err
		})
		if err != nil {
			return err
		}
		fmt.Printf("%6d %12s %16d %16d\n", k, d.Round(time.Microsecond), pb, bb)
	}
	return nil
}

// E2 — Fig. 2: graph commitment and selective disclosure.
func runFig2(seed int64) error {
	header("E2 (Fig. 2)", "route-flow graph commit + disclose + verify")
	pk, err := newPKI(100)
	if err != nil {
		return err
	}
	fmt.Printf("%6s %10s %12s %14s %14s\n", "k", "vertices", "commit time", "disclose time", "proof bytes")
	for _, k := range []int{3, 5, 10, 20} {
		g, ins, outVar, err := rfg.Fig2(k)
		if err != nil {
			return err
		}
		access := rfg.NewAccess()
		access.AllowAll(199, outVar.Label())
		a1, err := pk.announce(101, 1, 4)
		if err != nil {
			return err
		}
		a2, err := pk.announce(102, 1, 2)
		if err != nil {
			return err
		}
		inputs := map[rfg.VarID][]route.Route{ins[0]: {a1.Route}, ins[1]: {a2.Route}}

		var gc *core.GraphCommitment
		var gp *core.GraphProver
		epoch := uint64(0)
		commitD, err := timeIt(10, func() error {
			epoch++
			gp = core.NewGraphProver(100, pk.signers[100], g, access)
			var err error
			gc, err = gp.Commit(epoch, inputs)
			return err
		})
		if err != nil {
			return err
		}
		var proofBytes int
		discD, err := timeIt(10, func() error {
			d, err := gp.Disclose(199, outVar.Label())
			if err != nil {
				return err
			}
			if _, err := core.VerifyVertexDisclosure(pk.reg, gc, d); err != nil {
				return err
			}
			pb, _ := d.Proof.MarshalBinary()
			proofBytes = len(pb)
			return nil
		})
		if err != nil {
			return err
		}
		fmt.Printf("%6d %10d %12s %14s %14d\n",
			k, len(g.Vars())+len(g.Ops()), commitD.Round(time.Microsecond),
			discD.Round(time.Microsecond), proofBytes)
	}
	return nil
}

// E3 — SMC strawman vs PVR on the same minimum task.
func runSMC(seed int64) error {
	header("E3 (§3.1)", "SMC strawman vs PVR (same minimum task)")
	pk, err := newPKI(100)
	if err != nil {
		return err
	}
	fmt.Printf("%6s %14s %16s %18s %12s\n", "k", "PVR epoch", "live SMC", "FairplayMP model", "PVR speedup")
	epoch := uint64(1000)
	for _, k := range []int{2, 5, 10} {
		epoch++
		pvrD, err := timeIt(10, func() error {
			epoch++
			_, _, err := pk.minEpoch(k, 32, epoch)
			return err
		})
		if err != nil {
			return err
		}
		parties := make([]*smc.Party, k)
		for i := range parties {
			parties[i], err = smc.NewParty(i, 1+i%smc.Domain, 1024)
			if err != nil {
				return err
			}
		}
		smcD, err := timeIt(3, func() error {
			_, _, _, err := smc.SecureMin(parties)
			return err
		})
		if err != nil {
			return err
		}
		model := smc.FairplayModelSeconds(k, 1)
		fmt.Printf("%6d %14s %16s %17.1fs %11.0fx\n",
			k, pvrD.Round(time.Microsecond), smcD.Round(time.Microsecond),
			model, model*float64(time.Second)/float64(pvrD))
	}
	fmt.Println("  (paper's cited point: FairplayMP ≈ 15 s at 5 players; PVR is msec-scale)")
	return nil
}

// E4 — ZKP strawman scaling in policy size.
func runZKP(seed int64) error {
	header("E4 (§3.1)", "ZKP strawman: monotone-vector proof vs vector length")
	fmt.Printf("%6s %12s %12s %12s %14s\n", "K", "prove", "verify", "proof bytes", "PVR openings")
	for _, k := range []int{8, 16, 32, 64} {
		bits := make([]bool, k)
		for i := k / 2; i < k; i++ {
			bits[i] = true
		}
		cs := make([]zkp.Commitment, k)
		os := make([]zkp.Opening, k)
		for i, b := range bits {
			c, o, err := zkp.Commit(b)
			if err != nil {
				return err
			}
			cs[i], os[i] = c, o
		}
		ctx := []byte("pvrbench")
		var mp *zkp.MonotoneProof
		proveD, err := timeIt(3, func() error {
			var err error
			mp, err = zkp.ProveMonotone(cs, os, k/2+1, ctx)
			return err
		})
		if err != nil {
			return err
		}
		verifyD, err := timeIt(3, func() error {
			return zkp.VerifyMonotone(cs, mp, ctx)
		})
		if err != nil {
			return err
		}
		// PVR reveals K openings (~72 bytes each) instead.
		fmt.Printf("%6d %12s %12s %12d %14d\n",
			k, proveD.Round(time.Millisecond), verifyD.Round(time.Millisecond),
			mp.Size(), k*72)
	}
	return nil
}

// E5 — primitive costs (§3.8).
func runCrypto(seed int64) error {
	header("E5 (§3.8)", "primitive costs (paper: RSA-1024 sign ≈ 2 ms on 2011 hardware)")
	msg := make([]byte, 1024)
	fmt.Printf("%-24s %12s\n", "primitive", "time/op")
	hashD, err := timeIt(10000, func() error { sha256.Sum256(msg); return nil })
	if err != nil {
		return err
	}
	fmt.Printf("%-24s %12s\n", "SHA-256 (1 KiB)", hashD)
	for _, spec := range []struct {
		name string
		gen  func() (sigs.Signer, error)
	}{
		{"RSA-1024 sign", func() (sigs.Signer, error) { return sigs.GenerateRSA(1024) }},
		{"RSA-2048 sign", func() (sigs.Signer, error) { return sigs.GenerateRSA(2048) }},
		{"Ed25519 sign", sigs.GenerateEd25519},
	} {
		s, err := spec.gen()
		if err != nil {
			return err
		}
		d, err := timeIt(50, func() error { _, err := s.Sign(msg); return err })
		if err != nil {
			return err
		}
		fmt.Printf("%-24s %12s\n", spec.name, d.Round(time.Microsecond))
		sig, err := s.Sign(msg)
		if err != nil {
			return err
		}
		v, err := timeIt(200, func() error { return s.Public().Verify(msg, sig) })
		if err != nil {
			return err
		}
		fmt.Printf("%-24s %12s\n", spec.name[:len(spec.name)-5]+" verify", v.Round(time.Microsecond))
	}
	return nil
}

// E6 — batch signing amortization (§3.8).
func runBatch(seed int64) error {
	header("E6 (§3.8)", "batch signing: per-update cost vs batch size")
	s, err := sigs.GenerateRSA(1024)
	if err != nil {
		return err
	}
	fmt.Printf("%10s %16s %16s\n", "batch", "per-update", "vs batch=1")
	var base time.Duration
	for _, batch := range []int{1, 4, 16, 64, 256, 1024} {
		msgs := make([][]byte, batch)
		for i := range msgs {
			msgs[i] = []byte(fmt.Sprintf("update-%d 203.0.113.0/24", i))
		}
		reps := 5
		total, err := timeIt(reps, func() error {
			mt, err := merkle.NewBatch(msgs)
			if err != nil {
				return err
			}
			root := mt.Root()
			if _, err := s.Sign(root[:]); err != nil {
				return err
			}
			for j := range msgs {
				if _, err := mt.Prove(j); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return err
		}
		perUpdate := total / time.Duration(batch)
		if batch == 1 {
			base = perUpdate
		}
		fmt.Printf("%10d %16s %15.1fx\n", batch, perUpdate.Round(time.Microsecond),
			float64(base)/float64(perUpdate))
	}
	return nil
}

// E7 — the §2.3 property matrix under injected faults.
func runProperties(seed int64) error {
	header("E7 (§2.3)", "property matrix: detection/evidence/accuracy under faults")
	fmt.Printf("%-14s %10s %20s %10s %14s\n", "fault", "detected", "detected by", "guilty", "false accus.")
	for _, f := range []netsim.Fault{netsim.FaultNone, netsim.FaultSuppress, netsim.FaultWrongExport, netsim.FaultEquivocate} {
		cfg := netsim.Fig1Config{K: 5, MaxLen: 16, Fault: f, Seed: seed}
		if f == netsim.FaultWrongExport {
			cfg.Providers = []int{7, 2, 9, 4, 11}
		}
		res, err := netsim.RunFig1(cfg)
		if err != nil {
			return err
		}
		fmt.Printf("%-14s %10v %-28s %10d %14d\n",
			f, res.Detected, fmt.Sprintf("%v", res.DetectedBy), res.GuiltyVerdicts, res.FalseAccusations)
	}
	fmt.Println("  (confidentiality: honest-run audit in netsim tests — B's bits ≡ export)")
	return nil
}

// E8 — plain vs PVR BGP convergence on a tiered topology.
func runE2E(seed int64) error {
	header("E8", "plain vs PVR BGP propagation on synthetic tiered topologies")
	fmt.Printf("%8s %8s %8s %10s %10s %10s %12s\n",
		"ASes", "mode", "rounds", "messages", "KB", "signs", "crypto time")
	for _, size := range []struct{ t1, t2, stub int }{{3, 6, 12}, {4, 12, 40}, {5, 20, 100}} {
		g, err := topology.Tiered(size.t1, size.t2, size.stub, mrand.New(mrand.NewSource(seed)))
		if err != nil {
			return err
		}
		origin := g.Nodes()[len(g.Nodes())-1]
		for _, mode := range []struct {
			name   string
			pvr    bool
			batch  int
			engine bool
		}{{"plain", false, 0, false}, {"pvr", true, 0, false}, {"pvr+b16", true, 16, false}, {"pvr+eng", true, 16, true}} {
			res, err := netsim.RunConvergence(netsim.ConvergenceConfig{
				Graph: g, Origin: origin, Prefixes: 10,
				PVR: mode.pvr, BatchSize: mode.batch, Engine: mode.engine, Seed: seed,
			})
			if err != nil {
				return err
			}
			fmt.Printf("%8d %8s %8d %10d %10d %10d %12s\n",
				g.Len(), mode.name, res.Rounds, res.Messages, res.Bytes/1024,
				res.SignOps, res.CryptoTime.Round(time.Microsecond))
		}
	}
	return nil
}

// E10 — the sharded multi-prefix engine vs a loop of single-prefix
// provers on the same announcement table: the production-shaped workload.
// One full epoch = accept every announcement, commit every prefix, and
// verify every promisee disclosure.

type engineRow struct {
	Prefixes   int     `json:"prefixes"`
	Providers  int     `json:"providers"`
	SerialMs   float64 `json:"serial_ms"`
	EngineMs   float64 `json:"engine_ms"`
	Speedup    float64 `json:"speedup"`
	SerialSigs int     `json:"serial_commit_sigs"`
	Seals      int     `json:"engine_seals"`
	// AllocsPerOp is heap allocations per prefix across the engine's full
	// epoch (accept + seal + verify) — the benchgate regression metric.
	AllocsPerOp int64 `json:"allocs_per_op"`
	// SealP50Ms / SealP99Ms are per-shard seal latency quantiles read from
	// the engine's obs histogram (pvr_engine_shard_seal_seconds) —
	// benchgate's second regression metric.
	SealP50Ms float64 `json:"seal_p50_ms"`
	SealP99Ms float64 `json:"seal_p99_ms"`
	// CPUs records the machine the row was measured on: speedups on a
	// 1-CPU host come from batching alone, not parallelism.
	CPUs int `json:"cpus"`
}

// jsonOut, when set by -json, receives the selected experiment's rows as a
// JSON array; jsonExp records which experiment -e selected (engine owns
// the file under "all", gossip only when selected directly).
var (
	jsonOut string
	jsonExp string
	// benchPrefixes / gossipNodes, when nonzero, collapse the E10/E11
	// sweeps to a single size (CI smoke runs).
	benchPrefixes int
	gossipNodes   int
)

// benchMeta stamps every BENCH_*.json with the run's provenance, so a
// regression diff can tell "the code got slower" apart from "the machine
// or toolchain changed".
type benchMeta struct {
	Experiment string `json:"experiment"`
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	// Commit is the VCS revision baked into the binary ("" when built
	// outside a checkout or without VCS stamping), with "-dirty"
	// appended when the working tree had local modifications.
	Commit string `json:"commit,omitempty"`
}

func runMeta() benchMeta {
	m := benchMeta{
		Experiment: jsonExp,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		var rev string
		dirty := false
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
			case "vcs.modified":
				dirty = s.Value == "true"
			}
		}
		if rev != "" && dirty {
			rev += "-dirty"
		}
		m.Commit = rev
	}
	return m
}

func writeJSONRows(rows any) error {
	b, err := json.MarshalIndent(struct {
		Meta benchMeta `json:"meta"`
		Rows any       `json:"rows"`
	}{runMeta(), rows}, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(jsonOut, append(b, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("  (wrote %s)\n", jsonOut)
	return nil
}

func runEngine(seed int64) error {
	header("E10", "sharded engine vs single-prefix prover loop (full epoch: accept+commit+verify)")
	const k = 2
	pk, err := newPKI(k + 2)
	if err != nil {
		return err
	}
	prover, promisee := aspath.ASN(100), aspath.ASN(100+k+1)
	providers := make([]aspath.ASN, k)
	for i := range providers {
		providers[i] = aspath.ASN(101 + i)
	}
	rng := mrand.New(mrand.NewSource(seed))
	fmt.Printf("%10s %12s %12s %10s %14s %10s %11s %10s %5s\n",
		"prefixes", "serial", "engine", "speedup", "commit sigs", "seals", "allocs/op", "seal p99", "cpus")

	sweep := []int{100, 500, 1000}
	if benchPrefixes > 0 {
		sweep = []int{benchPrefixes}
	}
	var rows []engineRow
	for _, nPfx := range sweep {
		const maxLen = 16
		epoch := uint64(nPfx) // distinct epochs keep commitments apart
		pfxs := trace.Universe(nPfx)
		anns := make([]core.Announcement, 0, nPfx*k)
		for i, pfx := range pfxs {
			for _, ni := range providers {
				length := 1 + (i+rng.Intn(maxLen))%maxLen
				a, err := engineAnnounce(pk, ni, prover, epoch, pfx, length)
				if err != nil {
					return err
				}
				anns = append(anns, a)
			}
		}

		// Serial baseline: one core.Prover per prefix, one commitment
		// signature each, promisee views verified one by one.
		t0 := time.Now()
		serialProvers := make(map[prefix.Prefix]*core.Prover, nPfx)
		for _, a := range anns {
			p := serialProvers[a.Route.Prefix]
			if p == nil {
				if p, err = core.NewProver(prover, pk.signers[prover], pk.reg, maxLen); err != nil {
					return err
				}
				p.BeginEpoch(epoch, a.Route.Prefix)
				serialProvers[a.Route.Prefix] = p
			}
			if _, err := p.AcceptAnnouncement(a); err != nil {
				return err
			}
		}
		serialSigs := 0
		for _, pfx := range pfxs {
			p := serialProvers[pfx]
			if _, err := p.CommitMin(); err != nil {
				return err
			}
			serialSigs++
			v, err := p.DiscloseToPromisee(promisee)
			if err != nil {
				return err
			}
			if err := core.VerifyPromiseeView(pk.reg, v); err != nil {
				return err
			}
		}
		serialD := time.Since(t0)

		// Engine: batch-verified ingest (one receipt-batch signature),
		// sealed-export commitments, batched shard seals, pipelined verify.
		var msBefore runtime.MemStats
		runtime.ReadMemStats(&msBefore)
		t0 = time.Now()
		engObs := obs.NewRegistry()
		eng, err := engine.New(engine.Config{
			ASN: prover, Signer: pk.signers[prover], Registry: pk.reg, MaxLen: maxLen,
			Promisee: promisee, Obs: engObs,
		})
		if err != nil {
			return err
		}
		eng.BeginEpoch(epoch)
		writers := runtime.GOMAXPROCS(0)
		if _, err := eng.AcceptAll(anns, writers); err != nil {
			return err
		}
		seals, err := eng.SealEpoch()
		if err != nil {
			return err
		}
		verifyEngine := func() error {
			pl := engine.NewPipeline(pk.reg, writers)
			defer pl.Close()
			for _, pfx := range pfxs {
				v, err := eng.DiscloseToPromisee(pfx, promisee)
				if err != nil {
					return err
				}
				pl.SubmitPromisee(v, promisee)
			}
			for _, r := range pl.Drain() {
				if r.Err != nil {
					return fmt.Errorf("engine verify %s: %w", r.Prefix, r.Err)
				}
			}
			return nil
		}
		if err := verifyEngine(); err != nil {
			return err
		}
		engineD := time.Since(t0)
		var msAfter runtime.MemStats
		runtime.ReadMemStats(&msAfter)
		allocsPerOp := int64(msAfter.Mallocs-msBefore.Mallocs) / int64(nPfx)

		speedup := float64(serialD) / float64(engineD)
		sealP50, _ := engObs.Quantile("pvr_engine_shard_seal_seconds", 0.50)
		sealP99, _ := engObs.Quantile("pvr_engine_shard_seal_seconds", 0.99)
		fmt.Printf("%10d %12s %12s %9.1fx %14d %10d %11d %10s %5d\n",
			nPfx, serialD.Round(time.Millisecond), engineD.Round(time.Millisecond),
			speedup, serialSigs, len(seals), allocsPerOp,
			time.Duration(sealP99*float64(time.Second)).Round(time.Microsecond), runtime.NumCPU())
		rows = append(rows, engineRow{
			Prefixes: nPfx, Providers: k,
			SerialMs: float64(serialD) / 1e6, EngineMs: float64(engineD) / 1e6,
			Speedup: speedup, SerialSigs: serialSigs, Seals: len(seals),
			AllocsPerOp: allocsPerOp,
			SealP50Ms:   sealP50 * 1e3, SealP99Ms: sealP99 * 1e3,
			CPUs: runtime.NumCPU(),
		})
	}

	// Writer-scaling view through the netsim driver.
	wsPfx := 500
	if benchPrefixes > 0 {
		wsPfx = benchPrefixes
	}
	fmt.Printf("\n%10s %12s %12s %12s\n", "writers", "accept", "seal", "verify")
	for _, writers := range []int{1, 2, runtime.GOMAXPROCS(0)} {
		res, err := netsim.RunEngineEpoch(netsim.EngineRunConfig{
			Prefixes: wsPfx, Providers: k, Writers: writers, Seed: seed,
		})
		if err != nil {
			return err
		}
		fmt.Printf("%10d %12s %12s %12s\n", writers,
			res.AcceptTime.Round(time.Millisecond), res.SealTime.Round(time.Millisecond),
			res.VerifyTime.Round(time.Millisecond))
	}

	if jsonOut != "" && jsonExp != "gossip" {
		if err := writeJSONRows(rows); err != nil {
			return err
		}
	}
	return nil
}

// E11 — the audit network: anti-entropy gossip dissemination of engine
// seals, equivocation detection latency, and reconciliation cost vs Δ.

type gossipRow struct {
	Nodes           int    `json:"nodes"`
	Fanout          int    `json:"fanout"`
	Epoch           uint64 `json:"epoch"`
	Delta           int    `json:"delta"`
	StoreBefore     int    `json:"store_before"`
	Rounds          int    `json:"rounds"`
	Bytes           int64  `json:"bytes"`
	FirstRoundBytes int64  `json:"first_round_bytes"`
	FirstDetection  int    `json:"first_detection"`
	FullDetection   int    `json:"full_detection"`
	DetectionBound  int    `json:"detection_bound"`
}

func runGossip(seed int64) error {
	header("E11 (§3.2/§3.6)", "anti-entropy audit gossip: detection latency + reconciliation bytes vs Δ")
	sizes := []int{10, 20, 40}
	if gossipNodes > 0 {
		sizes = []int{gossipNodes}
	}
	const epochs = 4
	fmt.Printf("%6s %7s %14s %7s %10s %12s %12s %10s\n",
		"nodes", "fanout", "detect(f/all)", "bound", "rounds", "epoch1 B", "epoch4 B", "store")
	var rows []gossipRow
	for _, n := range sizes {
		for _, fanout := range []int{1, 2, 3} {
			if fanout > n-1 {
				continue
			}
			res, err := netsim.RunGossip(netsim.GossipConfig{
				Nodes: n, Fanout: fanout, Epochs: epochs, Equivocate: true, Seed: seed,
			})
			if err != nil {
				return err
			}
			totalRounds := 0
			for _, es := range res.EpochStats {
				totalRounds += es.Rounds
			}
			first := res.EpochStats[0]
			last := res.EpochStats[len(res.EpochStats)-1]
			fmt.Printf("%6d %7d %9d/%-4d %7d %10d %12d %12d %10d\n",
				n, fanout, res.FirstDetection, res.FullDetection,
				netsim.DetectionBound(n), totalRounds, first.Bytes, last.Bytes, res.StoreFinal)
			for _, es := range res.EpochStats {
				rows = append(rows, gossipRow{
					Nodes: n, Fanout: fanout, Epoch: es.Epoch, Delta: es.Delta,
					StoreBefore: es.StoreBefore, Rounds: es.Rounds, Bytes: es.Bytes,
					FirstRoundBytes: es.FirstRoundBytes,
					FirstDetection:  res.FirstDetection, FullDetection: res.FullDetection,
					DetectionBound: netsim.DetectionBound(n),
				})
			}
		}
	}
	fmt.Println("  (per-epoch JSON rows show bytes tracking delta, not store_before)")
	if jsonOut != "" && jsonExp == "gossip" {
		if err := writeJSONRows(rows); err != nil {
			return err
		}
	}
	return nil
}

func engineAnnounce(pk *pki, from, to aspath.ASN, epoch uint64, pfx prefix.Prefix, length int) (core.Announcement, error) {
	asns := make([]aspath.ASN, length)
	asns[0] = from
	for i := 1; i < length; i++ {
		asns[i] = aspath.ASN(65000 + i)
	}
	r := route.Route{
		Prefix:  pfx,
		Path:    aspath.New(asns...),
		NextHop: netip.AddrFrom4([4]byte{10, 0, 0, 1}),
	}
	return core.NewAnnouncement(pk.signers[from], from, to, epoch, r)
}

// E9 — ring signatures (§3.2 link-state variant).
func runRing(seed int64) error {
	header("E9 (§3.2)", "ring signatures: \"a route exists\" without identifying the signer")
	fmt.Printf("%8s %12s %12s %12s\n", "ring", "sign", "verify", "sig bytes")
	keys := make([]*rsa.PrivateKey, 16)
	for i := range keys {
		k, err := rsa.GenerateKey(rand.Reader, 1024)
		if err != nil {
			return err
		}
		keys[i] = k
	}
	msg := []byte("a route exists")
	for _, n := range []int{2, 4, 8, 16} {
		pubs := make([]*rsa.PublicKey, n)
		for i := 0; i < n; i++ {
			pubs[i] = &keys[i].PublicKey
		}
		ring, err := ringsig.NewRing(pubs)
		if err != nil {
			return err
		}
		var sig *ringsig.Signature
		signD, err := timeIt(10, func() error {
			var err error
			sig, err = ring.Sign(msg, keys[0])
			return err
		})
		if err != nil {
			return err
		}
		verifyD, err := timeIt(10, func() error { return ring.Verify(msg, sig) })
		if err != nil {
			return err
		}
		fmt.Printf("%8d %12s %12s %12d\n",
			n, signD.Round(time.Microsecond), verifyD.Round(time.Microsecond), ring.SignatureSize())
	}
	return nil
}
