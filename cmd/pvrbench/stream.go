package main

import (
	"fmt"
	"sort"
	"time"

	"pvr/internal/netsim"
)

// E12 — the streaming update plane: incremental dirty-shard re-sealing
// under live BGP churn vs the full-reseal baseline (§3.8: amortize
// signatures over batches of *updates*, not static table re-seals).

type streamRow struct {
	Prefixes     int     `json:"prefixes"`
	Shards       int     `json:"shards"`
	ChurnPct     float64 `json:"churn_pct"`
	WindowEvents int     `json:"window_events"`
	Windows      int     `json:"windows"`
	UpdatesPerSc float64 `json:"updates_per_sec"`
	SealP50Ms    float64 `json:"seal_p50_ms"`
	SealP99Ms    float64 `json:"seal_p99_ms"`
	DirtyMs      float64 `json:"dirty_reseal_ms"`
	FullMs       float64 `json:"full_reseal_ms"`
	Speedup      float64 `json:"speedup"`
	RebuiltPerWn float64 `json:"rebuilt_shards_per_window"`
}

func runStream(seed int64) error {
	header("E12 (§3.8)", "streaming update plane: dirty-shard re-seal vs full re-seal under churn")
	nPfx := 10000
	if benchPrefixes > 0 {
		nPfx = benchPrefixes
	}
	const (
		providers = 2
		shards    = 8
		windows   = 5
	)
	fmt.Printf("%10s %8s %10s %12s %12s %12s %12s %10s %12s\n",
		"prefixes", "churn%", "upd/s", "seal p50", "seal p99", "dirty", "full", "speedup", "rebuilt/win")
	var rows []streamRow
	for _, churnPct := range []float64{0.1, 1, 5} {
		windowEvents := int(float64(nPfx) * churnPct / 100)
		if windowEvents < 1 {
			windowEvents = 1
		}
		res, err := netsim.RunChurn(netsim.ChurnConfig{
			Prefixes: nPfx, Providers: providers,
			Events: windows * windowEvents, WindowEvents: windowEvents,
			Shards: shards, Seed: seed, MeasureFull: true,
		})
		if err != nil {
			return err
		}
		if !res.DirtyMatchedPrediction || !res.CleanRootsStable {
			return fmt.Errorf("stream: dirty-shard invariants violated at %.1f%% churn", churnPct)
		}
		var p50, p99 time.Duration
		lats := make([]time.Duration, 0, len(res.Windows)-1)
		for _, w := range res.Windows[1:] {
			lats = append(lats, w.ApplyLatency+w.SealLatency)
		}
		if n := len(lats); n > 0 {
			sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
			p50, p99 = lats[n/2], lats[(n*99)/100]
		}
		rebuiltPerWin := float64(res.RebuiltShardSeals) / float64(len(res.Windows)-1)
		fmt.Printf("%10d %8.1f %10.0f %12s %12s %12s %12s %9.1fx %12.1f\n",
			nPfx, churnPct, res.UpdatesPerSec,
			p50.Round(time.Microsecond), p99.Round(time.Microsecond),
			res.MeanDirtySeal.Round(time.Microsecond), res.MeanFullReseal.Round(time.Microsecond),
			res.Speedup, rebuiltPerWin)
		rows = append(rows, streamRow{
			Prefixes: nPfx, Shards: shards, ChurnPct: churnPct,
			WindowEvents: windowEvents, Windows: len(res.Windows) - 1,
			UpdatesPerSc: res.UpdatesPerSec,
			SealP50Ms:    float64(p50) / 1e6, SealP99Ms: float64(p99) / 1e6,
			DirtyMs: float64(res.MeanDirtySeal) / 1e6,
			FullMs:  float64(res.MeanFullReseal) / 1e6,
			Speedup: res.Speedup, RebuiltPerWn: rebuiltPerWin,
		})
	}
	fmt.Println("  (full = re-ingest current table + SealEpoch; dirty = apply churn + SealDirty)")
	if jsonOut != "" && jsonExp == "stream" {
		if err := writeJSONRows(rows); err != nil {
			return err
		}
	}
	return nil
}
