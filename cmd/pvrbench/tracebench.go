package main

// E16 — distributed tracing: equivocations injected across the fleet
// must come back as fully stitched announce→seal→gossip→conviction
// chains, with every detection inside the ⌈log₂N⌉+2 anti-entropy bound.
// Unlike the other experiments this one is pass/fail: a chain that does
// not stitch, or a detection outside the bound, is an error, because the
// tracing plane's whole claim is that no conviction is unexplained.

import (
	"fmt"
	"time"

	"pvr/internal/netsim"
)

type traceRow struct {
	Nodes   int `json:"nodes"`
	Fanout  int `json:"fanout"`
	Provers int `json:"provers"`
	// Bound is the detection bound ⌈log₂N⌉+2; Rounds how many
	// anti-entropy rounds the run actually took; MaxDetectRound the
	// slowest prover's conviction round.
	Bound          int `json:"bound"`
	Rounds         int `json:"rounds"`
	MaxDetectRound int `json:"max_detect_round"`
	// Stitched counts chains observed by ≥2 participants with the full
	// kind set (must equal Provers); FleetTraces / FleetStitched are the
	// collector's own rollup across every auditor + prover ring.
	Stitched      int `json:"stitched"`
	FleetTraces   int `json:"fleet_traces"`
	FleetStitched int `json:"fleet_stitched"`
	// FleetConvictions sums pvr_audit_convictions_total across the
	// fleet — the metric plane the event plane must agree with.
	FleetConvictions float64 `json:"fleet_convictions"`
	WallMs           float64 `json:"wall_ms"`
}

func runTrace(seed int64) error {
	header("E16", "distributed tracing: stitched equivocation chains vs fleet size (netsim)")
	sizes := []int{50, 64, 96}
	if gossipNodes > 0 {
		sizes = []int{gossipNodes}
	}
	fmt.Printf("%8s %8s %8s %8s %8s %12s %10s %12s %10s\n",
		"nodes", "provers", "bound", "rounds", "maxdet", "stitched", "traces", "convictions", "wall")
	rows := make([]traceRow, 0, len(sizes))
	for _, n := range sizes {
		start := time.Now()
		res, err := netsim.RunTrace(netsim.TraceConfig{Nodes: n, Fanout: 3, Seed: seed})
		if err != nil {
			return err
		}
		stitched, maxDet := 0, 0
		for _, ch := range res.Chains {
			if ch.Stitched {
				stitched++
			}
			if ch.DetectRound > maxDet {
				maxDet = ch.DetectRound
			}
		}
		row := traceRow{
			Nodes:            res.Nodes,
			Fanout:           res.Fanout,
			Provers:          res.Provers,
			Bound:            res.Bound,
			Rounds:           res.Rounds,
			MaxDetectRound:   maxDet,
			Stitched:         stitched,
			FleetTraces:      res.Fleet.Traces,
			FleetStitched:    res.Fleet.Stitched,
			FleetConvictions: res.FleetConvictions,
			WallMs:           float64(time.Since(start).Microseconds()) / 1e3,
		}
		rows = append(rows, row)
		fmt.Printf("%8d %8d %8d %8d %8d %7d/%-4d %10d %12.0f %9.1fms\n",
			row.Nodes, row.Provers, row.Bound, row.Rounds, row.MaxDetectRound,
			row.Stitched, row.Provers, row.FleetTraces, row.FleetConvictions, row.WallMs)
		if !res.AllStitched {
			return fmt.Errorf("E16: %d/%d chains stitched at %d nodes — a conviction went unexplained",
				stitched, res.Provers, n)
		}
		if !res.AllWithinBound {
			return fmt.Errorf("E16: detection round %d exceeded bound %d at %d nodes", maxDet, res.Bound, n)
		}
	}
	if jsonOut != "" && jsonExp == "trace" {
		return writeJSONRows(rows)
	}
	return nil
}
