package main

import (
	"fmt"
	"time"

	"pvr/internal/netsim"
)

// E17 — the privacy plane: anonymous ring-signed provider queries and
// zero-knowledge auditor openings over the wire (§3.2–3.3). One prover
// seals with ZK bindings and serves DISCLOSE-ANON and auditor queries;
// every ring member fetches its bit anonymously, a server-side observer
// test checks responses are byte-identical across signers, adversarial
// queries (outsider rings, tampered signatures, replays, undeclared
// positions) must all be denied, and a third party verifies "the promise
// holds" against the gossiped seal with no bit opened. The table sweeps
// the ring size k — the provider's anonymity-set size — and reports wire
// and proof sizes plus sign/verify latency quantiles; a run with any
// wrong grant, distinguishable view, or attribution aborts.

// privRing, when nonzero, collapses the E17 ring-size sweep to one size
// (set by -ring; benchgate uses it to re-run at the baseline's own k).
var privRing int

type privRow struct {
	Prefixes int `json:"prefixes"`
	RingK    int `json:"ring_k"`
	Queries  int `json:"queries"`
	Verified int `json:"verified"`
	Denied   int `json:"denied"`
	Proofs   int `json:"proofs_verified"`
	// Wire and proof sizes: the ring signature on an anonymous query, and
	// the ZK vector proof + Pedersen commitments an auditor downloads.
	RingSigBytes    int `json:"ringsig_bytes"`
	ProofSizeBytes  int `json:"proof_size_bytes"`
	CommitmentBytes int `json:"commitments_bytes"`
	// Latency quantiles from the privacy plane's histograms — ring-sign /
	// ring-verify on the anonymous path, proof gen (server) and proof
	// verify (auditor) on the ZK path. benchgate reads proof_size_bytes
	// and ring_verify_p50_us as regression metrics.
	SignP50Us       float64 `json:"sign_p50_us"`
	SignP99Us       float64 `json:"sign_p99_us"`
	RingVerifyP50Us float64 `json:"ring_verify_p50_us"`
	RingVerifyP99Us float64 `json:"ring_verify_p99_us"`
	ProofGenP50Us   float64 `json:"proof_gen_p50_us"`
	ProofGenP99Us   float64 `json:"proof_gen_p99_us"`
	ProofVerP50Us   float64 `json:"proof_verify_p50_us"`
	ProofVerP99Us   float64 `json:"proof_verify_p99_us"`
}

func runPriv(seed int64) error {
	header("E17 (§3.2–3.3)", "privacy plane: anonymous ring-signed queries and ZK auditor openings")
	sweep := []struct{ prefixes, ringK int }{
		{16, 2}, {16, 4}, {16, 8},
	}
	if benchPrefixes > 0 || privRing > 0 {
		pfx, k := 6, 3
		if benchPrefixes > 0 {
			pfx = benchPrefixes
		}
		if privRing > 0 {
			k = privRing
		}
		sweep = []struct{ prefixes, ringK int }{{pfx, k}}
	}
	fmt.Printf("%10s %8s %9s %9s %9s %8s %12s %12s %12s %12s\n",
		"prefixes", "ring k", "queries", "verified", "denied", "proofs", "sig bytes", "proof bytes", "ring vfy p50", "zk vfy p50")
	var rows []privRow
	for _, sz := range sweep {
		res, err := netsim.RunPriv(netsim.PrivConfig{
			Prefixes: sz.prefixes, RingK: sz.ringK, Seed: seed,
		})
		if err != nil {
			return err
		}
		if res.WrongGrants != 0 || res.WrongDenials != 0 || res.VerifyFailures != 0 {
			return fmt.Errorf("priv: correctness violated at k=%d: wrongGrants=%d wrongDenials=%d verifyFailures=%d",
				sz.ringK, res.WrongGrants, res.WrongDenials, res.VerifyFailures)
		}
		if res.DistinguishableViews != 0 || res.AttributedServes != 0 {
			return fmt.Errorf("priv: anonymity violated at k=%d: distinguishable=%d attributed=%d",
				sz.ringK, res.DistinguishableViews, res.AttributedServes)
		}
		fmt.Printf("%10d %8d %9d %9d %9d %8d %12d %12d %12s %12s\n",
			res.Prefixes, res.RingK, res.AnonQueries, res.AnonVerified, res.Denied,
			res.ProofsVerified, res.RingSigBytes, res.ProofBytes,
			res.RingVerifyP50.Round(time.Microsecond), res.ProofVerP50.Round(time.Microsecond))
		rows = append(rows, privRow{
			Prefixes: res.Prefixes, RingK: res.RingK,
			Queries: res.AnonQueries, Verified: res.AnonVerified, Denied: res.Denied,
			Proofs:          res.ProofsVerified,
			RingSigBytes:    res.RingSigBytes,
			ProofSizeBytes:  res.ProofBytes,
			CommitmentBytes: res.CommitmentsBytes,
			SignP50Us:       float64(res.SignP50) / 1e3,
			SignP99Us:       float64(res.SignP99) / 1e3,
			RingVerifyP50Us: float64(res.RingVerifyP50) / 1e3,
			RingVerifyP99Us: float64(res.RingVerifyP99) / 1e3,
			ProofGenP50Us:   float64(res.ProofGenP50) / 1e3,
			ProofGenP99Us:   float64(res.ProofGenP99) / 1e3,
			ProofVerP50Us:   float64(res.ProofVerP50) / 1e3,
			ProofVerP99Us:   float64(res.ProofVerP99) / 1e3,
		})
	}
	fmt.Println("  (every adversarial query denied, responses byte-identical across signers, no serve attributed)")
	if jsonOut != "" && jsonExp == "priv" {
		if err := writeJSONRows(rows); err != nil {
			return err
		}
	}
	return nil
}
