// Command pvrsim runs PVR simulations from the command line.
//
//	pvrsim fig1 -k 5 -fault suppress        # the paper's Fig. 1 scenario
//	pvrsim converge -t1 4 -t2 12 -stub 40   # plain vs PVR BGP propagation
//
// fig1 builds the star of the paper's Figure 1 (prover A, providers
// N_1…N_k, promisee B), runs one epoch of the §3.3 minimum-operator
// protocol with the chosen Byzantine fault, and reports who detected what
// and how the third-party judge ruled.
package main

import (
	"flag"
	"fmt"
	mrand "math/rand"
	"os"
	"time"

	"pvr/internal/netsim"
	"pvr/internal/topology"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "fig1":
		runFig1(os.Args[2:])
	case "converge":
		runConverge(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: pvrsim fig1|converge [flags]")
	os.Exit(2)
}

func runFig1(args []string) {
	fs := flag.NewFlagSet("fig1", flag.ExitOnError)
	k := fs.Int("k", 5, "number of providers N_1..N_k")
	maxLen := fs.Int("maxlen", 16, "committed bit-vector length K")
	faultName := fs.String("fault", "none", "fault: none|suppress|wrong-export|equivocate")
	seed := fs.Int64("seed", 1, "seed for provider route lengths")
	_ = fs.Parse(args)

	faults := map[string]netsim.Fault{
		"none":         netsim.FaultNone,
		"suppress":     netsim.FaultSuppress,
		"wrong-export": netsim.FaultWrongExport,
		"equivocate":   netsim.FaultEquivocate,
	}
	fault, ok := faults[*faultName]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown fault %q\n", *faultName)
		os.Exit(2)
	}
	cfg := netsim.Fig1Config{K: *k, MaxLen: *maxLen, Fault: fault, Seed: *seed}
	if fault == netsim.FaultWrongExport {
		// The fault exports the longest input; guarantee it differs from
		// the shortest so the misbehaviour is real.
		lengths := make([]int, *k)
		for i := range lengths {
			lengths[i] = 2 + (i*3)%(*maxLen-1)
		}
		lengths[0] = 1
		cfg.Providers = lengths
	}
	res, err := netsim.RunFig1(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("scenario : Fig. 1 star, k=%d providers, K=%d, fault=%s\n", *k, *maxLen, fault)
	if res.Exported != nil {
		fmt.Printf("exported : %s\n", res.Exported)
	} else {
		fmt.Printf("exported : (nothing)\n")
	}
	fmt.Printf("detected : %v", res.Detected)
	if res.Detected {
		fmt.Printf(" by %v", res.DetectedBy)
	}
	fmt.Println()
	fmt.Printf("verdicts : %d guilty, %d false accusations\n", res.GuiltyVerdicts, res.FalseAccusations)
	fmt.Printf("elapsed  : %s\n", res.Elapsed.Round(time.Microsecond))
	if fault == netsim.FaultNone && (res.Detected || res.FalseAccusations > 0) {
		fmt.Fprintln(os.Stderr, "ACCURACY VIOLATION: honest prover flagged")
		os.Exit(1)
	}
	if fault != netsim.FaultNone && !res.Detected {
		fmt.Fprintln(os.Stderr, "DETECTION FAILURE: fault escaped")
		os.Exit(1)
	}
}

func runConverge(args []string) {
	fs := flag.NewFlagSet("converge", flag.ExitOnError)
	t1 := fs.Int("t1", 3, "tier-1 count")
	t2 := fs.Int("t2", 6, "tier-2 count")
	stub := fs.Int("stub", 12, "stub count")
	prefixes := fs.Int("prefixes", 10, "prefixes originated")
	churn := fs.Int("churn", 0, "churn events after convergence")
	batch := fs.Int("batch", 0, "PVR signing batch size (0 = per update)")
	seed := fs.Int64("seed", 1, "topology/trace seed")
	_ = fs.Parse(args)

	g, err := topology.Tiered(*t1, *t2, *stub, mrand.New(mrand.NewSource(*seed)))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	origin := g.Nodes()[len(g.Nodes())-1]
	fmt.Printf("topology : %d ASes, %d links; origin %s, %d prefixes\n",
		g.Len(), g.EdgeCount(), origin, *prefixes)
	for _, mode := range []struct {
		name string
		pvr  bool
	}{{"plain BGP", false}, {"PVR-enabled", true}} {
		res, err := netsim.RunConvergence(netsim.ConvergenceConfig{
			Graph: g, Origin: origin, Prefixes: *prefixes, Churn: *churn,
			Seed: *seed, PVR: mode.pvr, BatchSize: *batch,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("%-12s: %d rounds, %d msgs, %d KB, %d signs, %d verifies, crypto %s, routing %s\n",
			mode.name, res.Rounds, res.Messages, res.Bytes/1024, res.SignOps, res.VerifyOps,
			res.CryptoTime.Round(time.Microsecond), res.RoutingTime.Round(time.Microsecond))
	}
}
