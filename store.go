package pvr

import (
	"time"

	"pvr/internal/store"
)

// StoreBackend is the durable store's filesystem surface: a flat
// namespace of named, appendable, fsyncable files. WithStore roots one
// on a directory; NewMemStore gives an in-memory backend with
// power-loss semantics for simulations; NewStoreFault wraps either with
// a fault injector. One backend carries both the participant's state
// store (under "state/") and, absent WithLedger, its evidence ledger
// (under "ledger/").
type StoreBackend = store.Backend

// MemStore is an in-memory StoreBackend with power-loss semantics:
// bytes become durable only at Sync, and Crash discards everything
// after the last fsync — what a kill -9 plus page-cache loss does to a
// real disk. Reopening a participant on the same MemStore models a
// process restart.
type MemStore = store.Mem

// NewMemStore returns an empty in-memory store backend.
var NewMemStore = store.NewMem

// StoreFault is a fault-injecting StoreBackend wrapper: torn writes,
// short writes, fsync failures, and kills at arbitrary byte offsets.
// Arm a fault, Bind it over a backend, and pass the result to
// WithStoreBackend; after a simulated crash, Bind again to model the
// restart.
type StoreFault = store.Fault

// NewStoreFault returns a fault injector with no faults armed.
var NewStoreFault = store.NewFault

// StoreConfig tunes the durable store's group commit and snapshot
// cadence. The zero value means defaults.
type StoreConfig struct {
	// FlushEvery is the group-commit window: an append becomes durable at
	// most this long after it is enqueued, and every record that arrives
	// while the flush leader waits rides the same fsync. Zero flushes
	// immediately (concurrent appenders still batch behind the in-flight
	// fsync).
	FlushEvery time.Duration
	// MaxBatch flushes early once this many records are pending
	// (default 64).
	MaxBatch int
	// SegmentBytes rolls the active WAL segment past this size
	// (default 4 MiB).
	SegmentBytes int64
	// SnapshotEvery is how many appended records arm the next state
	// snapshot (taken at the following seal window; default 256).
	SnapshotEvery int
}

// StoreStats reports what the durable store recovered at Open; zero
// (Enabled false) when the participant runs without one.
type StoreStats struct {
	// Enabled is true when WithStore or WithStoreBackend was given.
	Enabled bool
	// RecoveredEpoch and RecoveredWindow are the sealed position the
	// store carried across the restart (zero on a first boot); the
	// engine resumed from them, so the first post-restart seal
	// published at RecoveredWindow+1.
	RecoveredEpoch, RecoveredWindow uint64
	// RecoveredPins counts trust-on-first-use key pins re-registered
	// from the store.
	RecoveredPins int
	// RecoveredRecords counts WAL records replayed after the snapshot —
	// zero after a clean shutdown, which checkpoints on Close.
	RecoveredRecords int
	// NonceFloor is the recovered disclosure-nonce high-water mark; the
	// disclosure plane denies query nonces at or below it.
	NonceFloor uint64
	// RecoveryTime is the open-time snapshot load + WAL replay wall time.
	RecoveryTime time.Duration
}

// WithStore persists the participant's state — sealed window sequence,
// trust-on-first-use key pins, disclosure-nonce high-water marks, and
// (absent WithLedger) the evidence ledger — under dir, a directory of
// write-ahead-log segments and snapshots. On reopen the participant
// recovers the latest snapshot, replays the WAL behind it, and resumes
// the sealed window sequence, so a restart never reuses a window number
// it already published (which peers would convict as equivocation).
func WithStore(dir string) Option {
	return func(c *participantConfig) error {
		if dir == "" {
			return errConfigf("option", "store directory must be non-empty")
		}
		c.storeDir = dir
		return nil
	}
}

// WithStoreBackend is WithStore on an arbitrary backend — a MemStore
// for deterministic simulations, a StoreFault for crash testing — in
// place of a directory.
func WithStoreBackend(b StoreBackend) Option {
	return func(c *participantConfig) error {
		if b == nil {
			return errConfigf("option", "StoreBackend must be non-nil")
		}
		c.storeBackend = b
		return nil
	}
}

// WithStoreFault interposes f between the durable store and its backend
// (directory or WithStoreBackend): armed faults — torn writes, fsync
// failures, kills at a byte offset — hit the participant's real write
// path. After a simulated crash, reopening the participant on the same
// store rebinds the injector, which models the process restart.
// Requires WithStore or WithStoreBackend.
func WithStoreFault(f *StoreFault) Option {
	return func(c *participantConfig) error {
		if f == nil {
			return errConfigf("option", "StoreFault must be non-nil")
		}
		c.storeFault = f
		return nil
	}
}

// WithStoreConfig tunes the durable store (see StoreConfig); zero
// fields keep their defaults. It applies to the state store and, when
// the ledger shares the store, to the ledger's WAL too.
func WithStoreConfig(sc StoreConfig) Option {
	return func(c *participantConfig) error {
		if sc.FlushEvery < 0 {
			return errConfigf("option", "StoreConfig.FlushEvery must be non-negative, got %s", sc.FlushEvery)
		}
		if sc.MaxBatch < 0 || sc.SegmentBytes < 0 || sc.SnapshotEvery < 0 {
			return errConfigf("option", "StoreConfig sizes must be non-negative")
		}
		c.storeCfg = sc
		return nil
	}
}
